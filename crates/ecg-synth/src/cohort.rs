//! Cohort generation: seeded populations of scripted patients.
//!
//! A [`CohortGenerator`] turns one `(cohort_seed, session_index)` pair
//! into a [`PatientProfile`] — age band, rhythm burden, noise profile,
//! baseline heart rate, lead count, uplink mode — drawn from the
//! configurable distributions in [`CohortConfig`]. Each profile then
//! expands into one [`Script`] per *modeled
//! hour*: the cohort runs duty-cycled, synthesizing
//! [`CohortConfig::segment_s`] seconds of signal to represent each
//! hour, which is what makes 200 sessions × multi-day modeled time
//! tractable while still exercising every adversity class.
//!
//! Everything is a pure function of the seed: `profile(i)` and
//! `session_scripts(&profile)` consume fresh RNG streams keyed on
//! `(cohort_seed, i)` and `(profile.seed, hour)`, so regenerating any
//! one session never depends on how many others were generated first.

use crate::noise::NoiseConfig;
use crate::rhythm::Rhythm;
use crate::scenario::{Adversity, Script};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Patient age band; fixes the baseline-heart-rate range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgeBand {
    /// 18–35 years.
    Young,
    /// 36–55 years.
    MidLife,
    /// 56–70 years.
    Older,
    /// 71+ years.
    Elderly,
}

impl AgeBand {
    /// All bands, in distribution order.
    pub const ALL: [AgeBand; 4] = [
        AgeBand::Young,
        AgeBand::MidLife,
        AgeBand::Older,
        AgeBand::Elderly,
    ];

    /// Resting-heart-rate range (bpm) for the band.
    pub fn hr_range(self) -> (f64, f64) {
        match self {
            AgeBand::Young => (58.0, 82.0),
            AgeBand::MidLife => (60.0, 84.0),
            AgeBand::Older => (58.0, 80.0),
            AgeBand::Elderly => (54.0, 76.0),
        }
    }
}

/// The dominant arrhythmia burden of a patient — the cohort stratum
/// every report metric is grouped by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RhythmBurden {
    /// Sinus rhythm throughout.
    Quiet,
    /// Sinus with frequent PVC/APC ectopy.
    Ectopy,
    /// Paroxysmal AF: distinct episodes with sinus in between.
    ParoxysmalAf,
    /// Persistent AF: fibrillating essentially the whole session.
    PersistentAf,
    /// Atrial flutter with fixed conduction (regular RR — the AF
    /// detector's classic blind spot; scored as a non-AF stratum).
    Flutter,
    /// Ventricular bigeminy.
    Bigeminy,
    /// Brady–tachy (sick-sinus) alternation.
    BradyTachy,
}

impl RhythmBurden {
    /// All burdens, in the order [`CohortConfig::burden_weights`] uses.
    pub const ALL: [RhythmBurden; 7] = [
        RhythmBurden::Quiet,
        RhythmBurden::Ectopy,
        RhythmBurden::ParoxysmalAf,
        RhythmBurden::PersistentAf,
        RhythmBurden::Flutter,
        RhythmBurden::Bigeminy,
        RhythmBurden::BradyTachy,
    ];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RhythmBurden::Quiet => "quiet",
            RhythmBurden::Ectopy => "ectopy",
            RhythmBurden::ParoxysmalAf => "paroxysmal-af",
            RhythmBurden::PersistentAf => "persistent-af",
            RhythmBurden::Flutter => "flutter",
            RhythmBurden::Bigeminy => "bigeminy",
            RhythmBurden::BradyTachy => "brady-tachy",
        }
    }
}

/// The patient's ambient noise environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseProfile {
    /// Mostly at rest; high SNR.
    Clean,
    /// Standard ambulatory mix.
    Ambulatory,
    /// Active patient: low SNR plus scripted motion-artifact bursts.
    Motion,
    /// Mains-dominated pickup (vehicle / non-contact scenario).
    MainsDominated,
}

impl NoiseProfile {
    /// All profiles, in the order [`CohortConfig::noise_weights`] uses.
    pub const ALL: [NoiseProfile; 4] = [
        NoiseProfile::Clean,
        NoiseProfile::Ambulatory,
        NoiseProfile::Motion,
        NoiseProfile::MainsDominated,
    ];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NoiseProfile::Clean => "clean",
            NoiseProfile::Ambulatory => "ambulatory",
            NoiseProfile::Motion => "motion",
            NoiseProfile::MainsDominated => "mains",
        }
    }
}

/// One sampled patient session: everything the runner needs to build
/// the node and its scripts. Deterministic per
/// `(cohort_seed, session_index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PatientProfile {
    /// Index of this session within the cohort.
    pub session_index: usize,
    /// Base seed for this session's scripts (derived from the cohort
    /// seed and the index).
    pub seed: u64,
    /// Age band.
    pub age_band: AgeBand,
    /// Rhythm burden (the report stratum).
    pub burden: RhythmBurden,
    /// Ambient noise environment.
    pub noise: NoiseProfile,
    /// Baseline (resting sinus) heart rate in bpm.
    pub baseline_hr_bpm: f64,
    /// Number of ECG leads worn (1 or 3).
    pub n_leads: usize,
    /// True if the node uplinks compressed-sensing windows instead of
    /// processed events (always single-lead when set).
    pub cs_uplink: bool,
}

/// Distributions and shape of a cohort. All weights are relative (they
/// need not sum to 1); non-positive weight vectors fall back to
/// uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortConfig {
    /// Master seed: the whole cohort is a pure function of it.
    pub cohort_seed: u64,
    /// Number of patient sessions.
    pub sessions: usize,
    /// Modeled session length in hours (one script segment per hour).
    pub modeled_hours: u32,
    /// Synthesized seconds representing each modeled hour (≥ 30).
    pub segment_s: f64,
    /// Weights over [`AgeBand::ALL`].
    pub age_weights: [f64; 4],
    /// Weights over [`RhythmBurden::ALL`].
    pub burden_weights: [f64; 7],
    /// Weights over [`NoiseProfile::ALL`].
    pub noise_weights: [f64; 4],
    /// Fraction of (non-CS) patients wearing 3 leads instead of 1.
    pub three_lead_fraction: f64,
    /// Fraction of patients streaming compressed-sensing windows.
    pub cs_fraction: f64,
    /// Per-segment probability of a node reboot mid-segment.
    pub reboot_rate: f64,
    /// Per-segment probability of an electrode-dropout interval.
    pub dropout_rate: f64,
    /// Per-segment probability of a degraded channel regime.
    pub regime_shift_rate: f64,
}

impl Default for CohortConfig {
    fn default() -> Self {
        CohortConfig {
            cohort_seed: 0xC0_40_57,
            sessions: 200,
            modeled_hours: 48,
            segment_s: 75.0,
            age_weights: [0.22, 0.28, 0.30, 0.20],
            burden_weights: [0.30, 0.15, 0.20, 0.10, 0.08, 0.09, 0.08],
            noise_weights: [0.15, 0.55, 0.20, 0.10],
            three_lead_fraction: 0.45,
            cs_fraction: 0.06,
            reboot_rate: 0.015,
            dropout_rate: 0.05,
            regime_shift_rate: 0.12,
        }
    }
}

impl CohortConfig {
    /// The full acceptance cohort: 200 sessions × 48 modeled hours.
    pub fn full() -> Self {
        CohortConfig::default()
    }

    /// The CI smoke cohort: 24 sessions × 2 modeled hours.
    pub fn smoke() -> Self {
        CohortConfig {
            sessions: 24,
            modeled_hours: 2,
            segment_s: 60.0,
            ..CohortConfig::default()
        }
    }
}

/// Draws patient profiles and per-hour scripts from a [`CohortConfig`].
#[derive(Debug, Clone)]
pub struct CohortGenerator {
    cfg: CohortConfig,
}

impl CohortGenerator {
    /// New generator; out-of-range config fields are clamped to their
    /// documented minimums rather than rejected.
    pub fn new(mut cfg: CohortConfig) -> Self {
        cfg.sessions = cfg.sessions.max(1);
        cfg.modeled_hours = cfg.modeled_hours.max(1);
        cfg.segment_s = cfg.segment_s.max(30.0);
        cfg.three_lead_fraction = cfg.three_lead_fraction.clamp(0.0, 1.0);
        cfg.cs_fraction = cfg.cs_fraction.clamp(0.0, 1.0);
        cfg.reboot_rate = cfg.reboot_rate.clamp(0.0, 1.0);
        cfg.dropout_rate = cfg.dropout_rate.clamp(0.0, 1.0);
        cfg.regime_shift_rate = cfg.regime_shift_rate.clamp(0.0, 1.0);
        CohortGenerator { cfg }
    }

    /// The (clamped) configuration.
    pub fn config(&self) -> &CohortConfig {
        &self.cfg
    }

    /// Samples the profile for `session_index`. Pure in
    /// `(cohort_seed, session_index)`.
    pub fn profile(&self, session_index: usize) -> PatientProfile {
        let mut rng = StdRng::seed_from_u64(mix(
            self.cfg.cohort_seed,
            session_index as u64,
            0x50_52_4F_46, // "PROF"
        ));
        let age_band = AgeBand::ALL[pick(&self.cfg.age_weights, &mut rng)];
        let burden = RhythmBurden::ALL[pick(&self.cfg.burden_weights, &mut rng)];
        let noise = NoiseProfile::ALL[pick(&self.cfg.noise_weights, &mut rng)];
        let (lo, hi) = age_band.hr_range();
        let baseline_hr_bpm = lo + (hi - lo) * rng.gen::<f64>();
        let cs_uplink = rng.gen::<f64>() < self.cfg.cs_fraction;
        let n_leads = if cs_uplink {
            1 // the CS uplink path is single-lead by construction
        } else if rng.gen::<f64>() < self.cfg.three_lead_fraction {
            3
        } else {
            1
        };
        PatientProfile {
            session_index,
            seed: mix(self.cfg.cohort_seed, session_index as u64, 0x5E_55),
            age_band,
            burden,
            noise,
            baseline_hr_bpm,
            n_leads,
            cs_uplink,
        }
    }

    /// The script for one modeled hour of `profile`'s session. Pure in
    /// `(profile.seed, hour)`.
    pub fn segment_script(&self, profile: &PatientProfile, hour: u32) -> Script {
        let mut rng = StdRng::seed_from_u64(mix(profile.seed, hour as u64, 0x48_52)); // "HR"
        let seg = self.cfg.segment_s;
        let record_seed = mix(profile.seed, hour as u64, 0x52_45_43); // "REC"
        let name = format!("p{:03}-h{:02}", profile.session_index, hour);
        let mut script = Script::new(&name, record_seed)
            .leads(profile.n_leads)
            .noise(segment_noise(profile.noise, &mut rng));
        script = add_burden_phases(script, profile, seg, &mut rng);
        script = add_adversities(script, profile, &self.cfg, seg, &mut rng);
        script
    }

    /// All per-hour scripts of one session, in modeled-time order.
    pub fn session_scripts(&self, profile: &PatientProfile) -> Vec<Script> {
        (0..self.cfg.modeled_hours)
            .map(|h| self.segment_script(profile, h))
            .collect()
    }
}

/// Per-segment noise recipe for a profile (SNR jittered per hour).
fn segment_noise(profile: NoiseProfile, rng: &mut StdRng) -> NoiseConfig {
    match profile {
        NoiseProfile::Clean => NoiseConfig::ambulatory(26.0 + 6.0 * rng.gen::<f64>()),
        NoiseProfile::Ambulatory => NoiseConfig::ambulatory(16.0 + 6.0 * rng.gen::<f64>()),
        NoiseProfile::Motion => NoiseConfig::ambulatory(12.0 + 4.0 * rng.gen::<f64>()),
        NoiseProfile::MainsDominated => NoiseConfig::mains_dominated(14.0 + 6.0 * rng.gen::<f64>()),
    }
}

/// Lays the segment's rhythm phases for the patient's burden.
fn add_burden_phases(
    script: Script,
    profile: &PatientProfile,
    seg: f64,
    rng: &mut StdRng,
) -> Script {
    let hr = profile.baseline_hr_bpm * (0.92 + 0.12 * rng.gen::<f64>());
    match profile.burden {
        RhythmBurden::Quiet => script.phase(Rhythm::NormalSinus { mean_hr_bpm: hr }, seg),
        RhythmBurden::Ectopy => script.phase(
            Rhythm::SinusWithEctopy {
                mean_hr_bpm: hr,
                pvc_rate: 0.04 + 0.08 * rng.gen::<f64>(),
                apc_rate: 0.02 + 0.04 * rng.gen::<f64>(),
            },
            seg,
        ),
        RhythmBurden::ParoxysmalAf => {
            // Roughly 45% of hours carry one episode, long enough
            // (≥ 45 s when the segment allows) for windowed detection.
            if rng.gen_bool(0.45) {
                let pre = seg * (0.10 + 0.15 * rng.gen::<f64>());
                let want = (seg * (0.40 + 0.20 * rng.gen::<f64>())).max(45.0f64.min(0.6 * seg));
                let af = want.min(seg - pre);
                let post = (seg - pre - af).max(0.0);
                let af_hr = (profile.baseline_hr_bpm * 1.45).clamp(95.0, 165.0);
                script
                    .phase(Rhythm::NormalSinus { mean_hr_bpm: hr }, pre)
                    .phase(Rhythm::AtrialFibrillation { mean_hr_bpm: af_hr }, af)
                    .phase(Rhythm::NormalSinus { mean_hr_bpm: hr }, post)
            } else {
                script.phase(Rhythm::NormalSinus { mean_hr_bpm: hr }, seg)
            }
        }
        RhythmBurden::PersistentAf => {
            let af_hr = (profile.baseline_hr_bpm * 1.35).clamp(90.0, 160.0);
            script.phase(Rhythm::AtrialFibrillation { mean_hr_bpm: af_hr }, seg)
        }
        RhythmBurden::Flutter => {
            let atrial = 270.0 + 60.0 * rng.gen::<f64>();
            let block = if rng.gen_bool(0.6) { 2 } else { 4 };
            script.phase(
                Rhythm::AtrialFlutter {
                    atrial_rate_bpm: atrial,
                    conduction_block: block,
                },
                seg,
            )
        }
        RhythmBurden::Bigeminy => {
            if rng.gen_bool(0.7) {
                script.phase(Rhythm::Bigeminy { mean_hr_bpm: hr }, seg)
            } else {
                script.phase(Rhythm::NormalSinus { mean_hr_bpm: hr }, seg)
            }
        }
        RhythmBurden::BradyTachy => script.phase(
            Rhythm::BradyTachy {
                brady_hr_bpm: (profile.baseline_hr_bpm * 0.62).max(35.0),
                tachy_hr_bpm: (profile.baseline_hr_bpm * 1.8).min(150.0),
                alternation_s: seg / 4.0,
            },
            seg,
        ),
    }
}

/// Rolls the segment's adversities from the cohort rates.
fn add_adversities(
    mut script: Script,
    profile: &PatientProfile,
    cfg: &CohortConfig,
    seg: f64,
    rng: &mut StdRng,
) -> Script {
    if profile.noise == NoiseProfile::Motion {
        let bursts = if rng.gen_bool(0.5) { 2 } else { 1 };
        for _ in 0..bursts {
            let start = rng.gen::<f64>() * (seg - 12.0).max(1.0);
            let dur = 4.0 + 8.0 * rng.gen::<f64>();
            let snr = 4.0 * rng.gen::<f64>();
            script = script.adversity(start, dur, Adversity::MotionBurst { snr_db: snr });
        }
    }
    if rng.gen_bool(cfg.dropout_rate) {
        let lead = if profile.n_leads > 1 {
            1 + (rng.gen::<f64>() * (profile.n_leads - 1) as f64) as usize
        } else {
            0
        };
        let start = rng.gen::<f64>() * (seg - 10.0).max(1.0);
        let dur = 3.0 + 7.0 * rng.gen::<f64>();
        script = script.adversity(start, dur, Adversity::ElectrodeDropout { lead });
    }
    if rng.gen_bool(cfg.reboot_rate) {
        let at = seg * (0.3 + 0.4 * rng.gen::<f64>());
        script = script.at(at, Adversity::NodeReboot);
    }
    if rng.gen_bool(cfg.regime_shift_rate) {
        let start = rng.gen::<f64>() * (seg - 25.0).max(1.0);
        let dur = 15.0 + 15.0 * rng.gen::<f64>();
        script = script.adversity(
            start,
            dur,
            Adversity::ChannelRegime {
                drop_rate: 0.02 + 0.08 * rng.gen::<f64>(),
                corrupt_rate: 0.002 + 0.006 * rng.gen::<f64>(),
            },
        );
    }
    script
}

/// Weighted index draw; non-positive weight vectors become uniform.
fn pick(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return (rng.gen::<f64>() * weights.len() as f64) as usize % weights.len();
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
    }
    weights.len() - 1
}

/// SplitMix64-style mixer: decorrelates derived seeds so that
/// `(cohort_seed, index, salt)` streams never overlap.
fn mix(a: u64, b: u64, salt: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_deterministic_per_seed_and_index() {
        let g = CohortGenerator::new(CohortConfig::smoke());
        for i in 0..24 {
            assert_eq!(g.profile(i), g.profile(i), "session {i}");
        }
        let other = CohortGenerator::new(CohortConfig {
            cohort_seed: 1,
            ..CohortConfig::smoke()
        });
        let differs = (0..24).any(|i| g.profile(i) != other.profile(i));
        assert!(differs, "different cohort seeds must differ");
    }

    #[test]
    fn profiles_are_independent_of_each_other() {
        // profile(i) must not depend on which other profiles were drawn.
        let g = CohortGenerator::new(CohortConfig::full());
        let direct = g.profile(150);
        for i in 0..10 {
            let _ = g.profile(i);
        }
        assert_eq!(g.profile(150), direct);
    }

    #[test]
    fn cohort_covers_every_stratum() {
        let g = CohortGenerator::new(CohortConfig::full());
        let profiles: Vec<_> = (0..200).map(|i| g.profile(i)).collect();
        for burden in RhythmBurden::ALL {
            assert!(
                profiles.iter().any(|p| p.burden == burden),
                "missing burden {burden:?}"
            );
        }
        for noise in NoiseProfile::ALL {
            assert!(
                profiles.iter().any(|p| p.noise == noise),
                "missing noise {noise:?}"
            );
        }
        assert!(profiles.iter().any(|p| p.cs_uplink));
        assert!(profiles.iter().any(|p| p.n_leads == 3));
    }

    #[test]
    fn cs_patients_are_single_lead() {
        let g = CohortGenerator::new(CohortConfig::full());
        for i in 0..200 {
            let p = g.profile(i);
            if p.cs_uplink {
                assert_eq!(p.n_leads, 1, "session {i}");
            }
            assert!(p.baseline_hr_bpm > 40.0 && p.baseline_hr_bpm < 100.0);
        }
    }

    #[test]
    fn scripts_cover_modeled_hours_and_are_deterministic() {
        let g = CohortGenerator::new(CohortConfig::smoke());
        let p = g.profile(3);
        let scripts = g.session_scripts(&p);
        assert_eq!(scripts.len(), 2);
        for s in &scripts {
            assert!((s.duration_s() - g.config().segment_s).abs() < 1e-9);
            assert_eq!(s.n_leads(), p.n_leads.min(3));
        }
        assert_eq!(scripts, g.session_scripts(&p));
        // Hours differ from each other (fresh seed per hour).
        assert_ne!(scripts[0].seed(), scripts[1].seed());
    }

    #[test]
    fn paroxysmal_af_sessions_contain_scorable_episodes() {
        let g = CohortGenerator::new(CohortConfig::full());
        let p = (0..200)
            .map(|i| g.profile(i))
            .find(|p| p.burden == RhythmBurden::ParoxysmalAf)
            .expect("stratum populated");
        let scripts = g.session_scripts(&p);
        let af_hours = scripts
            .iter()
            .filter(|s| {
                s.phases()
                    .iter()
                    .any(|ph| matches!(ph.rhythm, Rhythm::AtrialFibrillation { .. }))
            })
            .count();
        assert!(af_hours > 5, "af hours {af_hours} of {}", scripts.len());
    }

    #[test]
    fn degenerate_config_is_clamped_not_rejected() {
        let g = CohortGenerator::new(CohortConfig {
            sessions: 0,
            modeled_hours: 0,
            segment_s: 0.0,
            age_weights: [0.0; 4],
            burden_weights: [-1.0; 7],
            noise_weights: [0.0; 4],
            cs_fraction: 7.0,
            ..CohortConfig::default()
        });
        assert_eq!(g.config().sessions, 1);
        assert_eq!(g.config().modeled_hours, 1);
        assert!(g.config().segment_s >= 30.0);
        // Uniform fallback still yields a valid profile.
        let p = g.profile(0);
        assert!(p.n_leads == 1 || p.n_leads == 3);
    }
}
