//! Synthetic photoplethysmogram (PPG) time-locked to the ECG.
//!
//! Section IV-C of the paper estimates blood pressure from the pulse
//! arrival time (PAT) between the ECG R peak and the arrival of the
//! pressure pulse at a PPG finger probe. The generator places one pulse
//! per beat at `t_R + PTT(t)`, where the pulse-transit time profile is
//! programmable — constant for denoising experiments, ramping for BP
//! tracking experiments — and exposes the exact per-beat PTT as ground
//! truth.

use crate::record::Record;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pulse-transit time profile over the record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PttProfile {
    /// Fixed transit time (seconds).
    Constant(f64),
    /// Linear ramp from `start_s` to `end_s` across the record —
    /// models a blood-pressure trend (higher BP → stiffer artery →
    /// shorter PTT).
    Ramp {
        /// PTT at record start, seconds.
        start_s: f64,
        /// PTT at record end, seconds.
        end_s: f64,
    },
}

impl PttProfile {
    /// PTT at normalized record position `frac ∈ [0,1]`.
    pub fn at(&self, frac: f64) -> f64 {
        match *self {
            PttProfile::Constant(v) => v,
            PttProfile::Ramp { start_s, end_s } => {
                start_s + (end_s - start_s) * frac.clamp(0.0, 1.0)
            }
        }
    }
}

/// PPG generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpgConfig {
    /// Transit-time profile.
    pub ptt: PttProfile,
    /// Systolic peak amplitude (arbitrary units).
    pub amplitude: f64,
    /// Relative dicrotic (reflected) wave amplitude.
    pub dicrotic_ratio: f64,
    /// Additive white noise SNR in dB (None = clean).
    pub noise_snr_db: Option<f64>,
}

impl Default for PpgConfig {
    fn default() -> Self {
        PpgConfig {
            ptt: PttProfile::Constant(0.22),
            amplitude: 1.0,
            dicrotic_ratio: 0.35,
            noise_snr_db: None,
        }
    }
}

/// A generated PPG channel with ground truth.
#[derive(Debug, Clone)]
pub struct PpgSignal {
    /// Samples (arbitrary units), same rate as the source record.
    pub samples: Vec<f64>,
    /// Sampling rate (Hz).
    pub fs: u32,
    /// Ground-truth pulse-foot times (seconds), one per beat that fits.
    pub foot_times_s: Vec<f64>,
    /// Ground-truth PTT used for each pulse (seconds).
    pub ptt_s: Vec<f64>,
}

impl PpgSignal {
    /// Generates a PPG aligned to `record`'s beats.
    pub fn generate(record: &Record, cfg: &PpgConfig, seed: u64) -> PpgSignal {
        let fs = record.fs();
        let fs_f = fs as f64;
        let n = record.n_samples();
        let duration = record.duration_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = vec![0.0f64; n];
        let mut foot_times = Vec::new();
        let mut ptts = Vec::new();
        for beat in record.beats() {
            let t_r = beat.r_sample as f64 / fs_f;
            let ptt = cfg.ptt.at(t_r / duration);
            let foot = t_r + ptt;
            if foot + 0.6 >= duration {
                continue;
            }
            foot_times.push(foot);
            ptts.push(ptt);
            // Systolic upstroke: half-Gaussian rising from the foot,
            // peak at foot + rise time.
            let rise = 0.12;
            let sys_sigma = 0.055;
            let dic_delay = 0.38;
            let dic_sigma = 0.09;
            let lo = (foot * fs_f) as usize;
            let hi = ((foot + 0.8) * fs_f).min(n as f64 - 1.0) as usize;
            for (i, s) in samples.iter_mut().enumerate().take(hi + 1).skip(lo) {
                let t = i as f64 / fs_f - foot;
                let d1 = (t - rise) / sys_sigma;
                let d2 = (t - dic_delay) / dic_sigma;
                *s += cfg.amplitude
                    * ((-0.5 * d1 * d1).exp() + cfg.dicrotic_ratio * (-0.5 * d2 * d2).exp());
            }
        }
        if let Some(snr) = cfg.noise_snr_db {
            let p_sig = samples.iter().map(|&v| v * v).sum::<f64>() / n.max(1) as f64;
            let p_noise = p_sig / 10f64.powf(snr / 10.0);
            let g = p_noise.sqrt();
            for s in &mut samples {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
                *s += g * z;
            }
        }
        PpgSignal {
            samples,
            fs,
            foot_times_s: foot_times,
            ptt_s: ptts,
        }
    }

    /// Number of pulses with ground truth.
    pub fn n_pulses(&self) -> usize {
        self.foot_times_s.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::RecordBuilder;

    fn record() -> Record {
        RecordBuilder::new(30).duration_s(30.0).build()
    }

    #[test]
    fn one_pulse_per_interior_beat() {
        let rec = record();
        let ppg = PpgSignal::generate(&rec, &PpgConfig::default(), 1);
        // All beats except possibly the last few near the record end.
        assert!(ppg.n_pulses() >= rec.beats().len() - 2);
        assert_eq!(ppg.foot_times_s.len(), ppg.ptt_s.len());
    }

    #[test]
    fn pulse_rises_after_foot() {
        let rec = record();
        let ppg = PpgSignal::generate(&rec, &PpgConfig::default(), 1);
        let fs = ppg.fs as f64;
        for &foot in ppg.foot_times_s.iter().take(5) {
            let i_foot = (foot * fs) as usize;
            let i_peak = ((foot + 0.12) * fs) as usize;
            assert!(
                ppg.samples[i_peak] > ppg.samples[i_foot] + 0.3,
                "pulse should rise sharply after the foot"
            );
        }
    }

    #[test]
    fn ramp_profile_tracks_position() {
        let p = PttProfile::Ramp {
            start_s: 0.25,
            end_s: 0.15,
        };
        assert_eq!(p.at(0.0), 0.25);
        assert_eq!(p.at(1.0), 0.15);
        assert!((p.at(0.5) - 0.20).abs() < 1e-12);
        let rec = record();
        let ppg = PpgSignal::generate(
            &rec,
            &PpgConfig {
                ptt: p,
                ..PpgConfig::default()
            },
            2,
        );
        // PTT ground truth must decrease over the record.
        let first = ppg.ptt_s.first().copied().unwrap();
        let last = ppg.ptt_s.last().copied().unwrap();
        assert!(first > last, "{first} -> {last}");
    }

    #[test]
    fn noise_flag_adds_noise() {
        let rec = record();
        let clean = PpgSignal::generate(&rec, &PpgConfig::default(), 3);
        let noisy = PpgSignal::generate(
            &rec,
            &PpgConfig {
                noise_snr_db: Some(5.0),
                ..PpgConfig::default()
            },
            3,
        );
        let diff: f64 = clean
            .samples
            .iter()
            .zip(&noisy.samples)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1.0);
    }

    #[test]
    fn dicrotic_notch_present() {
        let rec = record();
        let ppg = PpgSignal::generate(&rec, &PpgConfig::default(), 4);
        let fs = ppg.fs as f64;
        // Between systolic peak and dicrotic peak there is a local dip.
        let foot = ppg.foot_times_s[0];
        let sys = ((foot + 0.12) * fs) as usize;
        let dic = ((foot + 0.38) * fs) as usize;
        let min_between = (sys..dic)
            .map(|i| ppg.samples[i])
            .fold(f64::INFINITY, f64::min);
        assert!(min_between < ppg.samples[sys]);
        assert!(min_between < ppg.samples[dic] + 0.2);
    }
}
