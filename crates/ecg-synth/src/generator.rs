//! Record generation: rhythm → waves → leads → noise → ADC.

use crate::model::{
    AdcModel, BeatMorphology, BeatType, LeadProjection, Wave, WaveKind, ONSET_SIGMAS,
};
use crate::noise::{fibrillatory_wave, flutter_wave, NoiseConfig};
use crate::record::{Annotation, Beat, FiducialKind, Record, RhythmSpan};
use crate::rhythm::{Rhythm, RhythmLabel, ScheduledBeat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reference RR (seconds) at which nominal QT holds; Bazett stretch is
/// `sqrt(RR / RR_REF)`.
const RR_REF_S: f64 = 0.8;

/// Builder for annotated synthetic records.
///
/// # Example
///
/// ```
/// use wbsn_ecg_synth::{RecordBuilder, Rhythm};
/// use wbsn_ecg_synth::noise::NoiseConfig;
///
/// let rec = RecordBuilder::new(7)
///     .duration_s(20.0)
///     .n_leads(3)
///     .rhythm(Rhythm::SinusWithEctopy { mean_hr_bpm: 75.0, pvc_rate: 0.08, apc_rate: 0.04 })
///     .noise(NoiseConfig::ambulatory(18.0))
///     .build();
/// assert_eq!(rec.n_leads(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RecordBuilder {
    seed: u64,
    fs: u32,
    duration_s: f64,
    rhythm: Rhythm,
    noise: NoiseConfig,
    leads: Vec<LeadProjection>,
    adc: AdcModel,
    morph_variability: f64,
    fwave_amplitude_mv: f64,
}

impl RecordBuilder {
    /// New builder with sensible defaults: 250 Hz, 30 s, single lead,
    /// clean normal sinus rhythm at 70 bpm.
    pub fn new(seed: u64) -> Self {
        RecordBuilder {
            seed,
            fs: 250,
            duration_s: 30.0,
            rhythm: Rhythm::NormalSinus { mean_hr_bpm: 70.0 },
            noise: NoiseConfig::clean(),
            leads: vec![LeadProjection::identity()],
            adc: AdcModel::default(),
            morph_variability: 0.1,
            fwave_amplitude_mv: 0.06,
        }
    }

    /// Sampling rate in Hz (default 250).
    pub fn fs(mut self, fs: u32) -> Self {
        self.fs = fs.max(50);
        self
    }

    /// Record length in seconds (default 30).
    pub fn duration_s(mut self, d: f64) -> Self {
        self.duration_s = d.max(1.0);
        self
    }

    /// Rhythm process (default normal sinus at 70 bpm).
    pub fn rhythm(mut self, r: Rhythm) -> Self {
        self.rhythm = r;
        self
    }

    /// Noise recipe (default clean).
    pub fn noise(mut self, n: NoiseConfig) -> Self {
        self.noise = n;
        self
    }

    /// Use the standard 3-lead projection set (or 1 lead for `n <= 1`).
    pub fn n_leads(mut self, n: usize) -> Self {
        self.leads = if n <= 1 {
            vec![LeadProjection::identity()]
        } else {
            let mut set = LeadProjection::standard_3lead();
            set.truncate(n.min(3));
            set
        };
        self
    }

    /// Custom lead projections.
    pub fn lead_projections(mut self, leads: Vec<LeadProjection>) -> Self {
        if !leads.is_empty() {
            self.leads = leads;
        }
        self
    }

    /// ADC model (default 200 counts/mV, 12 bit).
    pub fn adc(mut self, adc: AdcModel) -> Self {
        self.adc = adc;
        self
    }

    /// Relative per-record morphology perturbation (default 0.1;
    /// 0 disables).
    pub fn morph_variability(mut self, v: f64) -> Self {
        self.morph_variability = v.clamp(0.0, 0.5);
        self
    }

    /// Fibrillatory-wave amplitude during AF spans in mV (default 0.06).
    pub fn fwave_amplitude_mv(mut self, a: f64) -> Self {
        self.fwave_amplitude_mv = a.max(0.0);
        self
    }

    /// Generates the record.
    pub fn build(self) -> Record {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = (self.duration_s * self.fs as f64).round() as usize;
        let schedule = self.rhythm.schedule(self.duration_s, &mut rng);

        // Per-record morphology instances, perturbed once per record.
        let mut morphs: Vec<(BeatType, BeatMorphology)> = BeatType::ALL
            .iter()
            .map(|&t| (t, BeatMorphology::for_type(t)))
            .collect();
        if self.morph_variability > 0.0 {
            let amp_gain = 1.0 + self.morph_variability * symmetric(&mut rng);
            let width_gain = 1.0 + 0.5 * self.morph_variability * symmetric(&mut rng);
            for (_, m) in &mut morphs {
                m.scale_amplitudes(amp_gain);
                m.scale_widths(width_gain);
            }
        }
        let morph_of = |t: BeatType| -> &BeatMorphology {
            &morphs
                .iter()
                .find(|(mt, _)| *mt == t)
                .expect("all types present")
                .1
        };

        // Render clean leads and collect annotations.
        let mut clean_mv: Vec<Vec<f64>> = vec![vec![0.0; n]; self.leads.len()];
        let mut annotations: Vec<Annotation> = Vec::new();
        let mut beats: Vec<Beat> = Vec::new();
        for sb in schedule.iter() {
            let morph = morph_of(sb.beat_type);
            let qt_stretch = (sb.rr_prev_s / RR_REF_S).max(0.25).sqrt();
            // Render each wave on each lead.
            for (kind, wave) in morph.iter() {
                let mut w = *wave;
                if kind == WaveKind::T {
                    w.offset_s *= qt_stretch;
                }
                for (li, proj) in self.leads.iter().enumerate() {
                    let gain = proj.gain(kind);
                    if gain == 0.0 {
                        continue;
                    }
                    render_wave(&mut clean_mv[li], self.fs, sb.r_time_s, &w, gain);
                }
            }
            // Ground-truth annotations (lead-independent timing).
            let r_sample = (sb.r_time_s * self.fs as f64).round() as usize;
            if r_sample >= n {
                continue;
            }
            beats.push(Beat {
                r_sample,
                beat_type: sb.beat_type,
                rr_prev_s: sb.rr_prev_s,
                label: sb.label,
            });
            let beat_index = beats.len() - 1;
            annotations.extend(beat_annotations(
                morph, sb, qt_stretch, self.fs, n, beat_index,
            ));
        }

        // Fibrillatory waves during AF spans (atrial activity projects
        // on each lead like the P wave would).
        let rhythm_spans = spans_from_beats(&beats, &schedule, self.fs, n);
        let has_af = rhythm_spans.iter().any(|s| s.label == RhythmLabel::Af);
        if has_af && self.fwave_amplitude_mv > 0.0 {
            let fw = fibrillatory_wave(n, self.fs as f64, self.fwave_amplitude_mv, &mut rng);
            for (li, proj) in self.leads.iter().enumerate() {
                let gain = proj.gain(WaveKind::P).abs().max(0.3);
                for span in rhythm_spans.iter().filter(|s| s.label == RhythmLabel::Af) {
                    for i in span.start_sample..span.end_sample.min(n) {
                        clean_mv[li][i] += gain * fw[i];
                    }
                }
            }
        }

        // Flutter (sawtooth F) waves during flutter spans. The wave is
        // deterministic — no RNG draw — so records without flutter
        // spans are bit-identical to records built before this branch
        // existed.
        let has_flutter = rhythm_spans.iter().any(|s| s.label == RhythmLabel::Flutter);
        if has_flutter && self.fwave_amplitude_mv > 0.0 {
            let fl = flutter_wave(n, self.fs as f64, 1.4 * self.fwave_amplitude_mv, 5.0);
            for (li, proj) in self.leads.iter().enumerate() {
                let gain = proj.gain(WaveKind::P).abs().max(0.3);
                for span in rhythm_spans
                    .iter()
                    .filter(|s| s.label == RhythmLabel::Flutter)
                {
                    for i in span.start_sample..span.end_sample.min(n) {
                        clean_mv[li][i] += gain * fl[i];
                    }
                }
            }
        }

        // Noise + digitization (independent noise per lead).
        let mut leads_counts: Vec<Vec<i32>> = Vec::with_capacity(self.leads.len());
        for clean in &clean_mv {
            let p_sig = clean.iter().map(|&v| v * v).sum::<f64>() / n.max(1) as f64;
            let noise = self.noise.generate(n, self.fs as f64, p_sig, &mut rng);
            leads_counts.push(
                clean
                    .iter()
                    .zip(&noise)
                    .map(|(&s, &e)| self.adc.quantize(s + e))
                    .collect(),
            );
        }

        annotations.sort_by_key(|a| a.sample);
        Record {
            fs: self.fs,
            adc: self.adc,
            leads: leads_counts,
            clean_mv,
            annotations,
            beats,
            rhythm_spans,
            seed: self.seed,
        }
    }
}

/// Adds one Gaussian wave (±4σ support) to a millivolt buffer.
fn render_wave(buf: &mut [f64], fs: u32, r_time_s: f64, wave: &Wave, gain: f64) {
    let fs_f = fs as f64;
    let center_s = r_time_s + wave.offset_s;
    let lo = (((center_s - 4.0 * wave.sigma_s) * fs_f).floor()).max(0.0) as usize;
    let hi = ((((center_s + 4.0 * wave.sigma_s) * fs_f).ceil()) as usize).min(buf.len());
    for (i, b) in buf.iter_mut().enumerate().take(hi).skip(lo) {
        let t = i as f64 / fs_f;
        let d = (t - center_s) / wave.sigma_s;
        *b += gain * wave.amplitude_mv * (-0.5 * d * d).exp();
    }
}

/// Exact fiducial annotations for one scheduled beat.
fn beat_annotations(
    morph: &BeatMorphology,
    sb: &ScheduledBeat,
    qt_stretch: f64,
    fs: u32,
    n_samples: usize,
    beat_index: usize,
) -> Vec<Annotation> {
    let fs_f = fs as f64;
    let mut anns = Vec::new();
    let mut push = |time_s: f64, kind: FiducialKind| {
        let s = (time_s * fs_f).round();
        if s >= 0.0 && (s as usize) < n_samples {
            anns.push(Annotation {
                sample: s as usize,
                kind,
                beat_index,
            });
        }
    };
    // P wave.
    if let Some(p) = morph.wave(WaveKind::P) {
        let c = sb.r_time_s + p.offset_s;
        push(c - ONSET_SIGMAS * p.sigma_s, FiducialKind::POn);
        push(c, FiducialKind::PPeak);
        push(c + ONSET_SIGMAS * p.sigma_s, FiducialKind::POff);
    }
    // QRS: onset = earliest wave start among Q,R,S; offset = latest end.
    let qrs: Vec<&Wave> = [WaveKind::Q, WaveKind::R, WaveKind::S]
        .iter()
        .filter_map(|&k| morph.wave(k))
        .collect();
    let qrs_on = qrs
        .iter()
        .map(|w| sb.r_time_s + w.offset_s - ONSET_SIGMAS * w.sigma_s)
        .fold(f64::INFINITY, f64::min);
    let qrs_off = qrs
        .iter()
        .map(|w| sb.r_time_s + w.offset_s + ONSET_SIGMAS * w.sigma_s)
        .fold(f64::NEG_INFINITY, f64::max);
    push(qrs_on, FiducialKind::QrsOn);
    push(sb.r_time_s, FiducialKind::RPeak);
    push(qrs_off, FiducialKind::QrsOff);
    // T wave (QT-stretched).
    if let Some(t) = morph.wave(WaveKind::T) {
        let c = sb.r_time_s + t.offset_s * qt_stretch;
        push(c - ONSET_SIGMAS * t.sigma_s, FiducialKind::TOn);
        push(c, FiducialKind::TPeak);
        push(c + ONSET_SIGMAS * t.sigma_s, FiducialKind::TOff);
    }
    anns
}

/// Builds rhythm spans from the beat sequence: boundaries halfway
/// between beats with differing labels.
fn spans_from_beats(
    beats: &[Beat],
    schedule: &[ScheduledBeat],
    fs: u32,
    n_samples: usize,
) -> Vec<RhythmSpan> {
    let _ = schedule;
    if beats.is_empty() {
        return vec![RhythmSpan {
            start_sample: 0,
            end_sample: n_samples,
            label: RhythmLabel::Sinus,
        }];
    }
    let _ = fs;
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut label = beats[0].label;
    for w in beats.windows(2) {
        if w[1].label != label {
            let boundary = (w[0].r_sample + w[1].r_sample) / 2;
            spans.push(RhythmSpan {
                start_sample: start,
                end_sample: boundary,
                label,
            });
            start = boundary;
            label = w[1].label;
        }
    }
    spans.push(RhythmSpan {
        start_sample: start,
        end_sample: n_samples,
        label,
    });
    spans
}

fn symmetric(rng: &mut StdRng) -> f64 {
    2.0 * rng.gen::<f64>() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_peak_annotations_sit_on_local_maxima() {
        let rec = RecordBuilder::new(11).duration_s(20.0).build();
        let lead = rec.lead(0);
        for beat in rec.beats() {
            let r = beat.r_sample;
            if r < 3 || r + 3 >= lead.len() {
                continue;
            }
            let local_max = (r.saturating_sub(3)..=r + 3)
                .map(|i| lead[i])
                .max()
                .unwrap();
            assert!(
                lead[r] >= local_max - 2,
                "R at {r}: {} vs neighborhood max {local_max}",
                lead[r]
            );
        }
    }

    #[test]
    fn annotations_are_sorted_and_in_range() {
        let rec = RecordBuilder::new(12)
            .duration_s(15.0)
            .rhythm(Rhythm::SinusWithEctopy {
                mean_hr_bpm: 80.0,
                pvc_rate: 0.1,
                apc_rate: 0.05,
            })
            .build();
        let anns = rec.annotations();
        assert!(!anns.is_empty());
        assert!(anns.windows(2).all(|w| w[0].sample <= w[1].sample));
        assert!(anns.iter().all(|a| a.sample < rec.n_samples()));
    }

    #[test]
    fn fiducials_are_ordered_within_a_beat() {
        let rec = RecordBuilder::new(13).duration_s(20.0).build();
        for (bi, _) in rec.beats().iter().enumerate() {
            let beat_anns: Vec<_> = rec
                .annotations()
                .iter()
                .filter(|a| a.beat_index == bi)
                .collect();
            if beat_anns.len() < 9 {
                continue; // clipped at record edges
            }
            for pair in beat_anns.windows(2) {
                assert!(
                    pair[0].sample <= pair[1].sample,
                    "beat {bi}: {:?} after {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn pvc_beats_lack_p_annotations() {
        let rec = RecordBuilder::new(14)
            .duration_s(60.0)
            .rhythm(Rhythm::SinusWithEctopy {
                mean_hr_bpm: 75.0,
                pvc_rate: 0.15,
                apc_rate: 0.0,
            })
            .build();
        let mut saw_pvc = false;
        for (bi, beat) in rec.beats().iter().enumerate() {
            if beat.beat_type == BeatType::Pvc {
                saw_pvc = true;
                let has_p = rec
                    .annotations()
                    .iter()
                    .any(|a| a.beat_index == bi && a.kind == FiducialKind::PPeak);
                assert!(!has_p, "PVC beat {bi} has a P annotation");
            }
        }
        assert!(saw_pvc, "expected at least one PVC");
    }

    #[test]
    fn three_leads_share_timing_but_differ_in_shape() {
        let rec = RecordBuilder::new(15).duration_s(10.0).n_leads(3).build();
        assert_eq!(rec.n_leads(), 3);
        // Lead 3 R waves are inverted: at R samples, lead0 positive,
        // lead2 negative.
        for beat in rec.beats() {
            let r = beat.r_sample;
            assert!(rec.lead(0)[r] > 0);
            assert!(rec.lead(2)[r] < 0, "lead 3 should invert R at {r}");
        }
    }

    #[test]
    fn noise_raises_residual_vs_clean() {
        let clean = RecordBuilder::new(16).duration_s(10.0).build();
        let noisy = RecordBuilder::new(16)
            .duration_s(10.0)
            .noise(NoiseConfig::ambulatory(5.0))
            .build();
        // Same seed => same underlying clean signal.
        let diff: i64 = clean
            .lead(0)
            .iter()
            .zip(noisy.lead(0))
            .map(|(&a, &b)| ((a - b) as i64).abs())
            .sum();
        assert!(diff > 1000, "noise should perturb the digitized signal");
        // Clean mV traces must be identical.
        for (a, b) in clean.clean_lead_mv(0).iter().zip(noisy.clean_lead_mv(0)) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn af_record_has_af_spans_and_no_p() {
        let rec = RecordBuilder::new(17)
            .duration_s(30.0)
            .rhythm(Rhythm::AtrialFibrillation { mean_hr_bpm: 95.0 })
            .build();
        assert!(rec.af_fraction() > 0.9, "af fraction {}", rec.af_fraction());
        assert!(rec
            .annotations()
            .iter()
            .all(|a| a.kind != FiducialKind::PPeak));
    }

    #[test]
    fn determinism_same_seed_same_record() {
        let a = RecordBuilder::new(99).duration_s(10.0).n_leads(3).build();
        let b = RecordBuilder::new(99).duration_s(10.0).n_leads(3).build();
        assert_eq!(a.lead(0), b.lead(0));
        assert_eq!(a.lead(2), b.lead(2));
        assert_eq!(a.annotations().len(), b.annotations().len());
    }

    #[test]
    fn episodic_af_has_both_span_kinds() {
        let rec = RecordBuilder::new(20)
            .duration_s(120.0)
            .rhythm(Rhythm::EpisodicAf {
                sinus_hr_bpm: 70.0,
                af_hr_bpm: 95.0,
                episode_len_s: 20.0,
                gap_len_s: 20.0,
            })
            .build();
        let f = rec.af_fraction();
        assert!(f > 0.15 && f < 0.85, "af fraction {f}");
    }

    #[test]
    fn rhythm_lookup_matches_spans() {
        let rec = RecordBuilder::new(21)
            .duration_s(60.0)
            .rhythm(Rhythm::EpisodicAf {
                sinus_hr_bpm: 70.0,
                af_hr_bpm: 100.0,
                episode_len_s: 15.0,
                gap_len_s: 15.0,
            })
            .build();
        for span in rec.rhythm_spans() {
            let mid = (span.start_sample + span.end_sample) / 2;
            if mid < rec.n_samples() {
                assert_eq!(rec.rhythm_at(mid), span.label);
            }
        }
    }
}
