//! # wbsn-ecg-synth
//!
//! Synthetic cardiac bio-signal generation with exact ground truth.
//!
//! The DAC'14 evaluation runs over annotated ECG databases and signals
//! acquired by the SmartCardia front-end — neither of which can ship
//! with an open-source reproduction. This crate substitutes them with a
//! parametric generator in the spirit of the ECGSYN dynamical model
//! (McSharry et al., 2003): each heartbeat is a train of Gaussian wave
//! events (P, Q, R, S, T) placed on a beat-to-beat RR process, with
//!
//! * per-beat morphologies (normal, PVC, APC) and per-lead projections,
//! * rhythm processes (normal sinus rhythm with LF/HF heart-rate
//!   variability, atrial fibrillation with irregular RR / absent P /
//!   fibrillatory baseline, bigeminy, episodic AF),
//! * calibrated noise sources (baseline wander, powerline, EMG,
//!   electrode motion) mixed at a target SNR,
//! * a 12-bit ADC front-end model, and
//! * **exact annotations**: every fiducial point (onset, peak, offset
//!   of each wave) is emitted by construction, which makes
//!   delineation/classification scoring strict rather than optimistic.
//!
//! A time-locked PPG channel with programmable pulse-transit time
//! supports the multi-modal experiments (Section IV-C of the paper).
//!
//! On top of single records, the [`scenario`] module provides a
//! composable session DSL (rhythm phases plus timed adversities:
//! motion bursts, electrode dropout, node reboots, channel regime
//! shifts), and the [`cohort`] module samples whole populations of
//! scripted patients deterministically from one cohort seed.
//!
//! ## Example
//!
//! ```
//! use wbsn_ecg_synth::{RecordBuilder, Rhythm};
//!
//! let record = RecordBuilder::new(42)
//!     .duration_s(10.0)
//!     .rhythm(Rhythm::NormalSinus { mean_hr_bpm: 70.0 })
//!     .build();
//! assert_eq!(record.fs(), 250);
//! assert!(record.beats().len() >= 10);
//! ```

// Every public item carries documentation; rustdoc runs with
// `-D warnings` in CI, so a gap fails the build.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohort;
pub mod generator;
pub mod model;
pub mod noise;
pub mod ppg;
pub mod record;
pub mod rhythm;
pub mod scenario;
pub mod suite;

pub use cohort::{
    AgeBand, CohortConfig, CohortGenerator, NoiseProfile, PatientProfile, RhythmBurden,
};
pub use generator::RecordBuilder;
pub use model::{AdcModel, BeatMorphology, BeatType, WaveKind};
pub use ppg::{PpgConfig, PpgSignal};
pub use record::{Annotation, Beat, FiducialKind, Record, RhythmSpan};
pub use rhythm::{Rhythm, RhythmLabel, RhythmPhase};
pub use scenario::{Adversity, Script, TimedAdversity};
