//! Annotated multi-lead records — the unit of evaluation.

use crate::model::{AdcModel, BeatType};
use crate::rhythm::RhythmLabel;

/// The nine fiducial points a delineator must locate (Figure 2 of the
/// paper shows them on a normal sinus beat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FiducialKind {
    /// P-wave onset.
    POn,
    /// P-wave peak.
    PPeak,
    /// P-wave offset.
    POff,
    /// QRS complex onset.
    QrsOn,
    /// R peak.
    RPeak,
    /// QRS complex offset.
    QrsOff,
    /// T-wave onset.
    TOn,
    /// T-wave peak.
    TPeak,
    /// T-wave offset.
    TOff,
}

impl FiducialKind {
    /// All fiducial kinds in temporal order within a beat.
    pub const ALL: [FiducialKind; 9] = [
        FiducialKind::POn,
        FiducialKind::PPeak,
        FiducialKind::POff,
        FiducialKind::QrsOn,
        FiducialKind::RPeak,
        FiducialKind::QrsOff,
        FiducialKind::TOn,
        FiducialKind::TPeak,
        FiducialKind::TOff,
    ];
}

/// A ground-truth (or detected) fiducial point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    /// Sample index in the record.
    pub sample: usize,
    /// Which fiducial point this is.
    pub kind: FiducialKind,
    /// Index of the beat this annotation belongs to.
    pub beat_index: usize,
}

/// Ground-truth description of one beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beat {
    /// R-peak sample index.
    pub r_sample: usize,
    /// Clinical class.
    pub beat_type: BeatType,
    /// RR interval preceding this beat, seconds.
    pub rr_prev_s: f64,
    /// Rhythm regime at this beat.
    pub label: RhythmLabel,
}

/// A contiguous span of samples sharing a rhythm label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RhythmSpan {
    /// First sample of the span (inclusive).
    pub start_sample: usize,
    /// Last sample of the span (exclusive).
    pub end_sample: usize,
    /// Rhythm regime.
    pub label: RhythmLabel,
}

/// A generated multi-lead record with exact ground truth.
#[derive(Debug, Clone)]
pub struct Record {
    pub(crate) fs: u32,
    pub(crate) adc: AdcModel,
    /// Digitized (noisy) lead signals in ADC counts.
    pub(crate) leads: Vec<Vec<i32>>,
    /// Clean (noise-free) lead signals in millivolts.
    pub(crate) clean_mv: Vec<Vec<f64>>,
    pub(crate) annotations: Vec<Annotation>,
    pub(crate) beats: Vec<Beat>,
    pub(crate) rhythm_spans: Vec<RhythmSpan>,
    pub(crate) seed: u64,
}

impl Record {
    /// Sampling rate in Hz.
    pub fn fs(&self) -> u32 {
        self.fs
    }

    /// ADC model used for digitization.
    pub fn adc(&self) -> &AdcModel {
        &self.adc
    }

    /// Seed this record was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of leads.
    pub fn n_leads(&self) -> usize {
        self.leads.len()
    }

    /// Number of samples per lead.
    pub fn n_samples(&self) -> usize {
        self.leads.first().map_or(0, Vec::len)
    }

    /// Record duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.n_samples() as f64 / self.fs as f64
    }

    /// Digitized samples of lead `l` (ADC counts, noise included).
    ///
    /// # Panics
    ///
    /// Panics when `l` is out of range.
    pub fn lead(&self, l: usize) -> &[i32] {
        &self.leads[l]
    }

    /// All digitized leads.
    pub fn leads(&self) -> &[Vec<i32>] {
        &self.leads
    }

    /// The record as interleaved frames — `out[i * n_leads + l]` is
    /// lead `l` of sample instant `i` — the exact layout the
    /// `wbsn-core` monitor/fleet block-ingestion paths consume.
    pub fn interleaved_frames(&self) -> Vec<i32> {
        let n = self.n_samples();
        let n_leads = self.leads.len();
        let mut out = vec![0i32; n * n_leads];
        for (l, lead) in self.leads.iter().enumerate() {
            for (i, &s) in lead.iter().enumerate() {
                out[i * n_leads + l] = s;
            }
        }
        out
    }

    /// Clean (noise-free) millivolt trace of lead `l`.
    ///
    /// # Panics
    ///
    /// Panics when `l` is out of range.
    pub fn clean_lead_mv(&self, l: usize) -> &[f64] {
        &self.clean_mv[l]
    }

    /// Ground-truth fiducial annotations, sorted by sample.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// Annotations of one kind, in temporal order.
    pub fn annotations_of(&self, kind: FiducialKind) -> Vec<Annotation> {
        self.annotations
            .iter()
            .copied()
            .filter(|a| a.kind == kind)
            .collect()
    }

    /// Ground-truth beats, in temporal order.
    pub fn beats(&self) -> &[Beat] {
        &self.beats
    }

    /// Rhythm spans covering the record.
    pub fn rhythm_spans(&self) -> &[RhythmSpan] {
        &self.rhythm_spans
    }

    /// Rhythm label at a sample (Sinus outside all spans).
    pub fn rhythm_at(&self, sample: usize) -> RhythmLabel {
        for s in &self.rhythm_spans {
            if sample >= s.start_sample && sample < s.end_sample {
                return s.label;
            }
        }
        RhythmLabel::Sinus
    }

    /// Fraction of samples labelled AF.
    pub fn af_fraction(&self) -> f64 {
        let n = self.n_samples();
        if n == 0 {
            return 0.0;
        }
        let af: usize = self
            .rhythm_spans
            .iter()
            .filter(|s| s.label == RhythmLabel::Af)
            .map(|s| s.end_sample.min(n) - s.start_sample.min(n))
            .sum();
        af as f64 / n as f64
    }
}
