//! Seeded record suites — the synthetic stand-ins for the evaluation
//! databases (MIT-BIH Arrhythmia, QT, AF) used by the original paper.
//!
//! Every suite is a pure function of `(n, base_seed)`, so experiments
//! are exactly reproducible and node/base-station pairs can regenerate
//! identical data.

use crate::generator::RecordBuilder;
use crate::noise::NoiseConfig;
use crate::record::Record;
use crate::rhythm::Rhythm;
use crate::scenario::Script;

/// Normal-sinus-rhythm records with varying heart rate and ambulatory
/// noise between 15 and 30 dB SNR. Stand-in for "clean" holter data.
pub fn nsr_suite(n: usize, base_seed: u64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(i as u64);
            let hr = 55.0 + (i as f64 * 7.3) % 45.0;
            let snr = 15.0 + (i as f64 * 5.1) % 15.0;
            RecordBuilder::new(seed)
                .duration_s(30.0)
                .n_leads(3)
                .rhythm(Rhythm::NormalSinus { mean_hr_bpm: hr })
                .noise(NoiseConfig::ambulatory(snr))
                .build()
        })
        .collect()
}

/// Records with PVC/APC ectopy — the classifier training/eval corpus
/// (MIT-BIH-arrhythmia stand-in).
pub fn ectopy_suite(n: usize, base_seed: u64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(0x1000 + i as u64);
            let hr = 60.0 + (i as f64 * 9.7) % 40.0;
            let snr = 18.0 + (i as f64 * 4.3) % 12.0;
            RecordBuilder::new(seed)
                .duration_s(60.0)
                .n_leads(3)
                .rhythm(Rhythm::SinusWithEctopy {
                    mean_hr_bpm: hr,
                    pvc_rate: 0.10,
                    apc_rate: 0.06,
                })
                .noise(NoiseConfig::ambulatory(snr))
                .build()
        })
        .collect()
}

/// Mixed AF / NSR record set for detector scoring (AFDB stand-in):
/// the first `n_af` records are sustained AF, the rest sinus.
pub fn af_mixed_suite(n_af: usize, n_nsr: usize, base_seed: u64) -> Vec<Record> {
    let mut out = Vec::with_capacity(n_af + n_nsr);
    for i in 0..n_af {
        let seed = base_seed.wrapping_add(0x2000 + i as u64);
        let hr = 85.0 + (i as f64 * 6.1) % 40.0;
        let snr = 15.0 + (i as f64 * 3.7) % 15.0;
        out.push(
            RecordBuilder::new(seed)
                .duration_s(60.0)
                .n_leads(3)
                .rhythm(Rhythm::AtrialFibrillation { mean_hr_bpm: hr })
                .noise(NoiseConfig::ambulatory(snr))
                .build(),
        );
    }
    for i in 0..n_nsr {
        let seed = base_seed.wrapping_add(0x3000 + i as u64);
        let hr = 55.0 + (i as f64 * 8.3) % 45.0;
        let snr = 15.0 + (i as f64 * 4.9) % 15.0;
        out.push(
            RecordBuilder::new(seed)
                .duration_s(60.0)
                .n_leads(3)
                .rhythm(Rhythm::NormalSinus { mean_hr_bpm: hr })
                .noise(NoiseConfig::ambulatory(snr))
                .build(),
        );
    }
    out
}

/// Long records with episodic AF for windowed episode detection.
pub fn episodic_af_suite(n: usize, base_seed: u64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(0x4000 + i as u64);
            RecordBuilder::new(seed)
                .duration_s(300.0)
                .n_leads(1)
                .rhythm(Rhythm::EpisodicAf {
                    sinus_hr_bpm: 68.0 + (i as f64 * 5.0) % 20.0,
                    af_hr_bpm: 92.0 + (i as f64 * 7.0) % 30.0,
                    episode_len_s: 40.0,
                    gap_len_s: 50.0,
                })
                .noise(NoiseConfig::ambulatory(20.0))
                .build()
        })
        .collect()
}

/// Phase lengths of [`governor_scenario`], seconds:
/// (quiet night, AF episode, recovery).
pub const GOVERNOR_SCENARIO_PHASES_S: (f64, f64, f64) = (240.0, 120.0, 240.0);

/// The power governor's acceptance trace: a quiet night (sinus at
/// 52 bpm), a sustained AF episode (115 bpm ventricular response), and
/// recovery (sinus at 68 bpm), as one continuous 3-lead record with
/// exact regime boundaries ([`GOVERNOR_SCENARIO_PHASES_S`]).
///
/// Both `examples/power_governor.rs` and `tests/governor_scenario.rs`
/// in the workspace root consume *this* function, so the demo output
/// and the pinned lifetime ordering can never drift apart.
///
/// The trace is now defined once as a scenario-DSL script
/// ([`governor_scenario_script`]); this function simply compiles it.
/// A script with no signal adversities renders bit-identically to the
/// old direct [`RecordBuilder`] chain, so every number pinned against
/// this record is unchanged.
pub fn governor_scenario() -> Record {
    governor_scenario_script().record()
}

/// The power governor's acceptance trace as a named scenario-DSL
/// [`Script`] — the shared definition consumed by both the legacy
/// single-trace acceptance path ([`governor_scenario`]) and the cohort
/// engine.
pub fn governor_scenario_script() -> Script {
    let (quiet_s, af_s, recovery_s) = GOVERNOR_SCENARIO_PHASES_S;
    Script::new("governor-three-act", 0xD1A6)
        .leads(3)
        .noise(NoiseConfig::ambulatory(22.0))
        .phase(Rhythm::NormalSinus { mean_hr_bpm: 52.0 }, quiet_s)
        .phase(Rhythm::AtrialFibrillation { mean_hr_bpm: 115.0 }, af_s)
        .phase(Rhythm::NormalSinus { mean_hr_bpm: 68.0 }, recovery_s)
}

/// Records for the compressed-sensing SNR-vs-CR sweep (Figure 5):
/// 3-lead, mildly noisy so that reconstruction quality is dominated by
/// the compression itself.
pub fn cs_eval_suite(n: usize, base_seed: u64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(0x5000 + i as u64);
            let hr = 60.0 + (i as f64 * 11.3) % 40.0;
            RecordBuilder::new(seed)
                .duration_s(20.0)
                .n_leads(3)
                .rhythm(Rhythm::NormalSinus { mean_hr_bpm: hr })
                .noise(NoiseConfig::ambulatory(40.0))
                .build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhythm::RhythmLabel;

    #[test]
    fn suites_are_deterministic() {
        let a = nsr_suite(2, 7);
        let b = nsr_suite(2, 7);
        assert_eq!(a[0].lead(0), b[0].lead(0));
        assert_eq!(a[1].lead(2), b[1].lead(2));
    }

    #[test]
    fn suites_vary_across_records() {
        let s = nsr_suite(3, 7);
        assert_ne!(s[0].lead(0), s[1].lead(0));
    }

    #[test]
    fn af_mixed_has_correct_labels() {
        let s = af_mixed_suite(2, 2, 3);
        assert_eq!(s.len(), 4);
        assert!(s[0].af_fraction() > 0.9);
        assert!(s[1].af_fraction() > 0.9);
        assert!(s[2].af_fraction() < 0.05);
        assert!(s[3].af_fraction() < 0.05);
    }

    #[test]
    fn ectopy_suite_contains_ectopic_beats() {
        let s = ectopy_suite(1, 5);
        let ectopic = s[0]
            .beats()
            .iter()
            .filter(|b| b.label == RhythmLabel::Sinus && b.beat_type != crate::BeatType::Normal)
            .count();
        assert!(ectopic > 3, "ectopic beats: {ectopic}");
    }

    #[test]
    fn governor_scenario_script_is_bit_identical_to_legacy_builder() {
        // The DSL migration must not move a single sample: rebuild the
        // trace with the original direct RecordBuilder chain and compare
        // every lead bit-for-bit.
        let (quiet_s, af_s, recovery_s) = GOVERNOR_SCENARIO_PHASES_S;
        let legacy = RecordBuilder::new(0xD1A6)
            .duration_s(quiet_s + af_s + recovery_s)
            .n_leads(3)
            .rhythm(Rhythm::Phased(vec![
                crate::rhythm::RhythmPhase::new(Rhythm::NormalSinus { mean_hr_bpm: 52.0 }, quiet_s),
                crate::rhythm::RhythmPhase::new(
                    Rhythm::AtrialFibrillation { mean_hr_bpm: 115.0 },
                    af_s,
                ),
                crate::rhythm::RhythmPhase::new(
                    Rhythm::NormalSinus { mean_hr_bpm: 68.0 },
                    recovery_s,
                ),
            ]))
            .noise(NoiseConfig::ambulatory(22.0))
            .build();
        let scripted = governor_scenario();
        for l in 0..3 {
            assert_eq!(scripted.lead(l), legacy.lead(l), "lead {l}");
        }
        assert_eq!(scripted.beats(), legacy.beats());
        assert_eq!(scripted.rhythm_spans(), legacy.rhythm_spans());
        assert_eq!(governor_scenario_script().name(), "governor-three-act");
    }

    #[test]
    fn episodic_suite_mixes_rhythms() {
        let s = episodic_af_suite(1, 9);
        let f = s[0].af_fraction();
        assert!(f > 0.1 && f < 0.9, "af fraction {f}");
    }
}
