//! ECG noise sources and SNR-controlled mixing.
//!
//! The paper stresses that "the noise level of the signal and the
//! required filtering algorithms vary based on the application"
//! (Section II): common-mode mains pickup for non-contact automotive
//! sensors, muscular and motion artifacts for ambulatory stroke
//! patients. Each source here mirrors the standard PhysioNet noise
//! stressors (baseline wander, muscle artifact, electrode motion) plus
//! powerline interference, and is mixed at a caller-chosen SNR so
//! experiments can sweep noise severity.

use rand::rngs::StdRng;
use rand::Rng;

/// Kinds of additive noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Slow baseline wander (respiration/electrode drift, < 0.5 Hz).
    BaselineWander,
    /// Powerline interference (50 Hz + third harmonic).
    Powerline,
    /// Broadband muscle (EMG) noise.
    Emg,
    /// Sparse electrode-motion transients.
    ElectrodeMotion,
}

/// A noise recipe: which sources are active and the overall target SNR.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Active sources with relative power weights (need not sum to 1).
    pub sources: Vec<(NoiseKind, f64)>,
    /// Target SNR in dB of clean signal vs total added noise; `None`
    /// disables noise entirely.
    pub snr_db: Option<f64>,
}

impl NoiseConfig {
    /// No noise at all.
    pub fn clean() -> Self {
        NoiseConfig {
            sources: Vec::new(),
            snr_db: None,
        }
    }

    /// The default ambulatory mix: wander + EMG + mains + motion.
    pub fn ambulatory(snr_db: f64) -> Self {
        NoiseConfig {
            sources: vec![
                (NoiseKind::BaselineWander, 1.0),
                (NoiseKind::Emg, 0.6),
                (NoiseKind::Powerline, 0.3),
                (NoiseKind::ElectrodeMotion, 0.5),
            ],
            snr_db: Some(snr_db),
        }
    }

    /// Mains-dominated mix (vehicle/non-contact scenario).
    pub fn mains_dominated(snr_db: f64) -> Self {
        NoiseConfig {
            sources: vec![
                (NoiseKind::Powerline, 1.0),
                (NoiseKind::BaselineWander, 0.2),
            ],
            snr_db: Some(snr_db),
        }
    }

    /// Generates the mixed noise trace (mV) for `n` samples at `fs_hz`,
    /// scaled so that `10·log10(P_signal/P_noise) == snr_db` relative
    /// to `signal_power_mv2`.
    pub fn generate(
        &self,
        n: usize,
        fs_hz: f64,
        signal_power_mv2: f64,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let Some(snr) = self.snr_db else {
            return vec![0.0; n];
        };
        if self.sources.is_empty() || n == 0 {
            return vec![0.0; n];
        }
        let mut mixed = vec![0.0; n];
        for &(kind, weight) in &self.sources {
            let trace = match kind {
                NoiseKind::BaselineWander => baseline_wander(n, fs_hz, rng),
                NoiseKind::Powerline => powerline(n, fs_hz, rng),
                NoiseKind::Emg => emg(n, fs_hz, rng),
                NoiseKind::ElectrodeMotion => electrode_motion(n, fs_hz, rng),
            };
            let p = power(&trace);
            if p <= 0.0 {
                continue;
            }
            // Normalize each source to unit power, then weight.
            let g = (weight / p).sqrt();
            for (m, t) in mixed.iter_mut().zip(&trace) {
                *m += g * t;
            }
        }
        let p_mixed = power(&mixed);
        if p_mixed <= 0.0 {
            return mixed;
        }
        let target_power = signal_power_mv2 / 10f64.powf(snr / 10.0);
        let g = (target_power / p_mixed).sqrt();
        for m in &mut mixed {
            *m *= g;
        }
        mixed
    }
}

fn power(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64
    }
}

/// Sum of three slow sinusoids with random frequencies/phases.
fn baseline_wander(n: usize, fs_hz: f64, rng: &mut StdRng) -> Vec<f64> {
    let comps: Vec<(f64, f64, f64)> = (0..3)
        .map(|_| {
            (
                0.05 + rng.gen::<f64>() * 0.35,            // freq
                rng.gen::<f64>() * core::f64::consts::TAU, // phase
                0.5 + rng.gen::<f64>(),                    // rel amp
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let t = i as f64 / fs_hz;
            comps
                .iter()
                .map(|&(f, p, a)| a * (core::f64::consts::TAU * f * t + p).sin())
                .sum()
        })
        .collect()
}

/// 50 Hz mains with a weak third harmonic and slow amplitude drift.
fn powerline(n: usize, fs_hz: f64, rng: &mut StdRng) -> Vec<f64> {
    let phase: f64 = rng.gen::<f64>() * core::f64::consts::TAU;
    let drift_f = 0.1 + rng.gen::<f64>() * 0.2;
    (0..n)
        .map(|i| {
            let t = i as f64 / fs_hz;
            let env = 1.0 + 0.3 * (core::f64::consts::TAU * drift_f * t).sin();
            env * ((core::f64::consts::TAU * 50.0 * t + phase).sin()
                + 0.2 * (core::f64::consts::TAU * 150.0 * t + 3.0 * phase).sin())
        })
        .collect()
}

/// Broadband EMG: white Gaussian noise high-passed by first difference
/// then lightly smoothed (concentrates energy in the 20–100 Hz band).
fn emg(n: usize, fs_hz: f64, rng: &mut StdRng) -> Vec<f64> {
    let _ = fs_hz;
    let white: Vec<f64> = (0..n + 2).map(|_| gauss(rng)).collect();
    (0..n)
        .map(|i| {
            let d1 = white[i + 1] - white[i];
            let d2 = white[i + 2] - white[i + 1];
            0.5 * (d1 + d2)
        })
        .collect()
}

/// Sparse smooth transients at Poisson times (electrode motion).
fn electrode_motion(n: usize, fs_hz: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut out = vec![0.0; n];
    let rate_hz = 0.15; // about one artifact every 7 s
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival.
        t += -(1.0 - rng.gen::<f64>()).ln() / rate_hz;
        let center = (t * fs_hz) as usize;
        if center >= n {
            break;
        }
        let width = fs_hz * (0.2 + rng.gen::<f64>() * 0.6);
        let amp = (rng.gen::<f64>() - 0.3) * 4.0;
        let lo = center.saturating_sub(3 * width as usize);
        let hi = (center + 3 * width as usize).min(n - 1);
        for (i, o) in out.iter_mut().enumerate().take(hi + 1).skip(lo) {
            let d = (i as f64 - center as f64) / width;
            *o += amp * (-0.5 * d * d).exp();
        }
    }
    out
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Continuous fibrillatory wave (f-wave) replacing the P wave during
/// AF: a 4–9 Hz oscillation with wandering frequency and amplitude.
pub fn fibrillatory_wave(n: usize, fs_hz: f64, amplitude_mv: f64, rng: &mut StdRng) -> Vec<f64> {
    let f0 = 5.0 + rng.gen::<f64>() * 3.0;
    let fm = 0.1 + rng.gen::<f64>() * 0.2;
    let mut phase: f64 = rng.gen::<f64>() * core::f64::consts::TAU;
    let dt = 1.0 / fs_hz;
    (0..n)
        .map(|i| {
            let t = i as f64 * dt;
            // Instantaneous frequency wanders ±15% around f0; the phase
            // is accumulated so the signal stays inside the f-wave band.
            let f = f0 * (1.0 + 0.15 * (core::f64::consts::TAU * fm * t).sin());
            let env = 1.0 + 0.25 * (core::f64::consts::TAU * fm * 1.7 * t + 1.0).sin();
            let v = amplitude_mv * env * phase.sin();
            phase += core::f64::consts::TAU * f * dt;
            v
        })
        .collect()
}

/// Deterministic flutter ("sawtooth") wave at `rate_hz` — typically
/// ~5 Hz, i.e. a 300/min atrial circuit. The first three harmonics of
/// a sawtooth give the classic F-wave shape: periodic and phase-locked,
/// unlike the frequency-wandering fibrillatory wave of AF. No RNG is
/// consumed, so rendering it for flutter spans cannot perturb the
/// random stream of records that contain none.
pub fn flutter_wave(n: usize, fs_hz: f64, amplitude_mv: f64, rate_hz: f64) -> Vec<f64> {
    let dt = 1.0 / fs_hz;
    (0..n)
        .map(|i| {
            let t = i as f64 * dt;
            let mut v = 0.0;
            for k in 1..=3u32 {
                let kf = k as f64;
                v += (core::f64::consts::TAU * kf * rate_hz * t).sin() / kf;
            }
            amplitude_mv * core::f64::consts::FRAC_2_PI * v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn snr_target_is_hit() {
        let cfg = NoiseConfig::ambulatory(10.0);
        let sig_power = 0.04; // mV²
        let noise = cfg.generate(5000, 250.0, sig_power, &mut rng(1));
        let p = power(&noise);
        let snr = 10.0 * (sig_power / p).log10();
        assert!((snr - 10.0).abs() < 0.2, "snr {snr}");
    }

    #[test]
    fn clean_config_is_zero() {
        let noise = NoiseConfig::clean().generate(100, 250.0, 1.0, &mut rng(2));
        assert!(noise.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn baseline_wander_is_slow() {
        // Mean absolute first difference must be far smaller than for EMG.
        let bw = baseline_wander(5000, 250.0, &mut rng(3));
        let em = emg(5000, 250.0, &mut rng(4));
        let diff = |x: &[f64]| {
            x.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
                / ((x.len() - 1) as f64 * power(x).sqrt())
        };
        assert!(
            diff(&bw) < 0.1 * diff(&em),
            "bw {} emg {}",
            diff(&bw),
            diff(&em)
        );
    }

    #[test]
    fn powerline_concentrates_at_50hz() {
        let fs = 250.0;
        let x = powerline(2500, fs, &mut rng(5));
        // Goertzel-style single-bin power at 50 Hz vs 20 Hz.
        let bin_power = |f: f64| {
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &v) in x.iter().enumerate() {
                let w = core::f64::consts::TAU * f * i as f64 / fs;
                re += v * w.cos();
                im += v * w.sin();
            }
            re * re + im * im
        };
        assert!(bin_power(50.0) > 100.0 * bin_power(20.0));
    }

    #[test]
    fn electrode_motion_is_sparse() {
        let x = electrode_motion(250 * 60, 250.0, &mut rng(6));
        // Most samples are near zero; a minority carries the bumps.
        let p95 = {
            let mut v: Vec<f64> = x.iter().map(|&a| a.abs()).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(v.len() as f64 * 0.5) as usize]
        };
        let max = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max > 5.0 * (p95 + 1e-9), "max {max} p50 {p95}");
    }

    #[test]
    fn fwave_band_is_4_to_9_hz() {
        let fs = 250.0;
        let x = fibrillatory_wave(5000, fs, 0.05, &mut rng(7));
        let n = x.len();
        let bin_power = |f: f64| {
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &v) in x.iter().enumerate() {
                // Hann window suppresses leakage into far bins.
                let win = 0.5 - 0.5 * (core::f64::consts::TAU * i as f64 / (n - 1) as f64).cos();
                let w = core::f64::consts::TAU * f * i as f64 / fs;
                re += win * v * w.cos();
                im += win * v * w.sin();
            }
            re * re + im * im
        };
        // Integrate densely: frequency modulation spreads power between
        // integer bins.
        let in_band: f64 = (14..=40).map(|k| bin_power(k as f64 * 0.25)).sum();
        let out_band: f64 = (56..=82).map(|k| bin_power(k as f64 * 0.25)).sum();
        assert!(
            in_band > 10.0 * out_band,
            "in {in_band:.1} out {out_band:.1}"
        );
    }

    #[test]
    fn weighted_sources_change_mix() {
        // Mains-dominated config should carry much more 50 Hz power than
        // the ambulatory mix at the same SNR.
        let fs = 250.0;
        let a = NoiseConfig::mains_dominated(5.0).generate(5000, fs, 1.0, &mut rng(8));
        let b = NoiseConfig::ambulatory(5.0).generate(5000, fs, 1.0, &mut rng(8));
        let bin_power = |x: &[f64], f: f64| {
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &v) in x.iter().enumerate() {
                let w = core::f64::consts::TAU * f * i as f64 / fs;
                re += v * w.cos();
                im += v * w.sin();
            }
            re * re + im * im
        };
        assert!(bin_power(&a, 50.0) > 2.0 * bin_power(&b, 50.0));
    }
}
