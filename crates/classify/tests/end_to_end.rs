//! End-to-end classification accuracy on synthetic records: the
//! development-time guardrail for the paper's classification claims
//! (full experiments live in the bench crate).

use wbsn_classify::af::{AfBeat, AfConfig, AfDetector};
use wbsn_classify::eval::ConfusionMatrix;
use wbsn_classify::features::{BeatFeatureExtractor, FeatureConfig};
use wbsn_classify::fuzzy::{FuzzyClassifier, MembershipMode};
use wbsn_delineation::qrs::QrsConfig;
use wbsn_delineation::wavelet::WaveletConfig;
use wbsn_delineation::{QrsDetector, WaveletDelineator};
use wbsn_ecg_synth::suite::{af_mixed_suite, ectopy_suite};
use wbsn_ecg_synth::{BeatType, Record};

/// Class indices used in these tests.
const NORMAL: usize = 0;
const PVC: usize = 1;
const APC: usize = 2;

fn label_of(t: BeatType) -> usize {
    match t {
        BeatType::Normal | BeatType::AfConducted => NORMAL,
        BeatType::Pvc => PVC,
        BeatType::Apc => APC,
    }
}

/// Extracts (features, labels) from a record using ground-truth beat
/// locations (isolating classifier quality from detector quality).
fn dataset(rec: &Record, fe: &mut BeatFeatureExtractor) -> (Vec<Vec<f64>>, Vec<usize>) {
    let lead = rec.lead(0);
    let beats = rec.beats();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 1..beats.len().saturating_sub(1) {
        let r = beats[i].r_sample;
        let rr_prev = r - beats[i - 1].r_sample;
        let rr_next = beats[i + 1].r_sample - r;
        if let Some(f) = fe.extract(lead, r, rr_prev, rr_next) {
            xs.push(f);
            ys.push(label_of(beats[i].beat_type));
        }
    }
    (xs, ys)
}

#[test]
fn fuzzy_classifier_beats_90_percent_on_held_out_records() {
    let mut fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
    let train_recs = ectopy_suite(3, 1000);
    let test_recs = ectopy_suite(2, 2000);
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    for r in &train_recs {
        let (xs, ys) = dataset(r, &mut fe);
        train_x.extend(xs);
        train_y.extend(ys);
    }
    let clf = FuzzyClassifier::train(&train_x, &train_y, MembershipMode::PiecewiseLinear).unwrap();
    let mut cm = ConfusionMatrix::new(3);
    for r in &test_recs {
        let (xs, ys) = dataset(r, &mut fe);
        for (x, y) in xs.iter().zip(&ys) {
            cm.record(*y, clf.predict(x));
        }
    }
    assert!(cm.total() > 100, "beats {}", cm.total());
    assert!(cm.accuracy() > 0.90, "accuracy {:.3}\n{cm}", cm.accuracy());
    // PVC detection is the clinically critical class.
    assert!(
        cm.sensitivity(PVC) > 0.85,
        "PVC Se {:.3}\n{cm}",
        cm.sensitivity(PVC)
    );
}

#[test]
fn pwl_mode_tracks_exact_mode() {
    let mut fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
    let recs = ectopy_suite(2, 3000);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in &recs {
        let (x, y) = dataset(r, &mut fe);
        xs.extend(x);
        ys.extend(y);
    }
    let exact = FuzzyClassifier::train(&xs, &ys, MembershipMode::ExactGaussian).unwrap();
    let pwl = exact.with_mode(MembershipMode::PiecewiseLinear);
    let agree = xs
        .iter()
        .filter(|x| exact.predict(x) == pwl.predict(x))
        .count();
    assert!(
        agree as f64 / xs.len() as f64 > 0.95,
        "agreement {}/{}",
        agree,
        xs.len()
    );
}

/// Runs the full on-node AF pipeline (QRS → delineation → AF windows)
/// and returns the AF burden of a record.
fn af_burden_of(rec: &Record) -> f64 {
    let lead = rec.lead(0);
    let rs = QrsDetector::detect(lead, QrsConfig::default()).unwrap();
    let delineated = WaveletDelineator::new(WaveletConfig::default())
        .unwrap()
        .delineate(lead, &rs);
    let beats: Vec<AfBeat> = delineated
        .iter()
        .map(|b| AfBeat {
            r_sample: b.r_peak,
            has_p: b.has_p(),
        })
        .collect();
    let det = AfDetector::new(AfConfig::default()).unwrap();
    let windows = det.analyze(&beats);
    AfDetector::af_burden(&windows)
}

#[test]
fn af_records_separate_from_sinus_records() {
    // Small suite for CI speed; the full 200-record experiment runs in
    // the bench harness.
    let recs = af_mixed_suite(4, 4, 500);
    let mut correct = 0usize;
    for (i, rec) in recs.iter().enumerate() {
        let truth_af = rec.af_fraction() > 0.5;
        let burden = af_burden_of(rec);
        let detected_af = burden > 0.5;
        if truth_af == detected_af {
            correct += 1;
        } else {
            eprintln!("record {i}: truth_af={truth_af} burden={burden:.2} (misclassified)");
        }
    }
    assert!(correct >= 7, "correct {correct}/8");
}
