//! Neuro-fuzzy heartbeat classifier with piecewise-linear memberships.
//!
//! The classifier of Braojos et al. (DATE 2013, reference \[14\]): each
//! class is described by Gaussian membership functions over every
//! feature; a beat's class score aggregates the (log-)memberships and
//! the largest score wins. Evaluating `exp(-u²/2)` is expensive on an
//! integer MCU, so the paper approximates the **negative log
//! membership** `u²/2` with a four-segment piecewise-linear function —
//! "a four-segments linearization is shown to achieve close-to-optimal
//! results". Both paths are implemented; the approximation error is
//! bounded in the tests.

use crate::{ClassifyError, Result};

/// How memberships are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MembershipMode {
    /// Exact Gaussian negative log-likelihood (`u²/2`).
    #[default]
    ExactGaussian,
    /// Four-segment piecewise-linear approximation of `u²/2` on
    /// `|u| ∈ [0, 4]`, clamped linear beyond — the embedded path.
    PiecewiseLinear,
}

/// Knots of the PWL approximation of `u²/2` at `|u| = 0, 1, 2, 3, 4`.
const PWL_KNOTS: [f64; 5] = [0.0, 0.5, 2.0, 4.5, 8.0];

/// Four-segment piecewise-linear `u²/2`.
///
/// # Example
///
/// ```
/// use wbsn_classify::fuzzy::pwl_half_square;
///
/// assert_eq!(pwl_half_square(0.0), 0.0);
/// assert_eq!(pwl_half_square(2.0), 2.0);
/// // Within the knot range the approximation error is below 0.13.
/// assert!((pwl_half_square(1.5) - 1.125).abs() < 0.13);
/// ```
pub fn pwl_half_square(u: f64) -> f64 {
    let a = u.abs();
    if a >= 4.0 {
        // Continue with the last segment's slope (3.5).
        return PWL_KNOTS[4] + 3.5 * (a - 4.0);
    }
    let seg = a.floor() as usize; // 0..=3
    let frac = a - seg as f64;
    PWL_KNOTS[seg] + (PWL_KNOTS[seg + 1] - PWL_KNOTS[seg]) * frac
}

/// Per-class diagonal Gaussian model.
#[derive(Debug, Clone, PartialEq)]
struct ClassModel {
    label: usize,
    mean: Vec<f64>,
    inv_sigma: Vec<f64>,
    log_prior: f64,
}

/// Trained fuzzy classifier.
///
/// # Example
///
/// ```
/// use wbsn_classify::fuzzy::{FuzzyClassifier, MembershipMode};
///
/// let xs = vec![
///     vec![0.0, 0.0], vec![0.1, -0.1], vec![-0.1, 0.1], // class 0
///     vec![2.0, 2.0], vec![2.1, 1.9], vec![1.9, 2.1],   // class 1
/// ];
/// let ys = vec![0, 0, 0, 1, 1, 1];
/// let clf = FuzzyClassifier::train(&xs, &ys, MembershipMode::PiecewiseLinear).unwrap();
/// assert_eq!(clf.predict(&[0.05, 0.02]), 0);
/// assert_eq!(clf.predict(&[2.02, 2.05]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyClassifier {
    classes: Vec<ClassModel>,
    dims: usize,
    mode: MembershipMode,
}

impl FuzzyClassifier {
    /// Trains the classifier: per-class feature means and deviations
    /// (σ floored at 5% of the global feature scale to avoid
    /// degenerate memberships).
    ///
    /// # Errors
    ///
    /// Fails when inputs are empty/mismatched or any class has fewer
    /// than 2 examples.
    pub fn train(features: &[Vec<f64>], labels: &[usize], mode: MembershipMode) -> Result<Self> {
        if features.is_empty() || features.len() != labels.len() {
            return Err(ClassifyError::InvalidTrainingData {
                detail: format!(
                    "features ({}) and labels ({}) must be non-empty and equal",
                    features.len(),
                    labels.len()
                ),
            });
        }
        let dims = features[0].len();
        if features.iter().any(|f| f.len() != dims) {
            return Err(ClassifyError::InvalidTrainingData {
                detail: "inconsistent feature dimensionality".into(),
            });
        }
        let mut class_ids: Vec<usize> = labels.to_vec();
        class_ids.sort_unstable();
        class_ids.dedup();
        // Global per-dimension scale for the σ floor.
        let mut global_scale = vec![0.0f64; dims];
        for f in features {
            for (g, &v) in global_scale.iter_mut().zip(f) {
                *g = g.max(v.abs());
            }
        }
        let mut classes = Vec::with_capacity(class_ids.len());
        for &c in &class_ids {
            let members: Vec<&Vec<f64>> = features
                .iter()
                .zip(labels)
                .filter(|&(_, &l)| l == c)
                .map(|(f, _)| f)
                .collect();
            if members.len() < 2 {
                return Err(ClassifyError::InvalidTrainingData {
                    detail: format!("class {c} has fewer than 2 examples"),
                });
            }
            let n = members.len() as f64;
            let mut mean = vec![0.0; dims];
            for f in &members {
                for (m, &v) in mean.iter_mut().zip(f.iter()) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            let mut var = vec![0.0; dims];
            for f in &members {
                for j in 0..dims {
                    let d = f[j] - mean[j];
                    var[j] += d * d;
                }
            }
            let inv_sigma: Vec<f64> = (0..dims)
                .map(|j| {
                    let sigma = (var[j] / n).sqrt().max(0.05 * global_scale[j]).max(1e-6);
                    1.0 / sigma
                })
                .collect();
            classes.push(ClassModel {
                label: c,
                mean,
                inv_sigma,
                log_prior: (members.len() as f64 / features.len() as f64).ln(),
            });
        }
        Ok(FuzzyClassifier {
            classes,
            dims,
            mode,
        })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Feature dimensionality expected by [`FuzzyClassifier::predict`].
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Membership evaluation mode.
    pub fn mode(&self) -> MembershipMode {
        self.mode
    }

    /// Returns a copy using a different membership mode (same model).
    pub fn with_mode(&self, mode: MembershipMode) -> Self {
        let mut c = self.clone();
        c.mode = mode;
        c
    }

    /// Negative log-score of `x` for each class (lower = better),
    /// ordered as the class labels returned by training.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dims`.
    pub fn scores(&self, x: &[f64]) -> Vec<(usize, f64)> {
        assert_eq!(x.len(), self.dims, "feature dimensionality");
        self.classes
            .iter()
            .map(|c| {
                let mut cost = -c.log_prior;
                for (j, &xj) in x.iter().enumerate() {
                    let u = (xj - c.mean[j]) * c.inv_sigma[j];
                    cost += match self.mode {
                        MembershipMode::ExactGaussian => 0.5 * u * u,
                        MembershipMode::PiecewiseLinear => pwl_half_square(u),
                    };
                }
                (c.label, cost)
            })
            .collect()
    }

    /// Predicted class label for `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dims`.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.scores(x)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN scores"))
            .map(|(l, _)| l)
            .expect("at least one class")
    }

    /// Approximate MCU operations per classified beat: one subtract,
    /// one multiply and one PWL lookup (4 compares + 1 MAC) per
    /// feature per class.
    pub fn ops_per_beat(&self) -> usize {
        self.classes.len() * self.dims * 7
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pwl_matches_knots_exactly() {
        for (i, &v) in PWL_KNOTS.iter().enumerate() {
            assert_eq!(pwl_half_square(i as f64), v);
            assert_eq!(pwl_half_square(-(i as f64)), v);
        }
    }

    #[test]
    fn pwl_error_is_bounded_on_range() {
        let mut u = 0.0;
        while u <= 4.0 {
            let exact = 0.5 * u * u;
            let approx = pwl_half_square(u);
            assert!(
                (exact - approx).abs() <= 0.125 + 1e-12,
                "u={u}: exact {exact} approx {approx}"
            );
            u += 0.01;
        }
    }

    #[test]
    fn pwl_is_monotone_and_even() {
        let mut prev = -1.0;
        let mut u = 0.0;
        while u <= 6.0 {
            let v = pwl_half_square(u);
            assert!(v >= prev);
            assert_eq!(v, pwl_half_square(-u));
            prev = v;
            u += 0.05;
        }
    }

    fn gaussian_blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Three 4-D blobs with distinct means.
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let centers = [
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 0.0, -2.0, 1.0],
            [-2.0, 2.5, 1.0, -1.0],
        ];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per {
                let f: Vec<f64> = center.iter().map(|&m| m + next()).collect();
                xs.push(f);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn classifies_separable_blobs() {
        let (xs, ys) = gaussian_blobs(60, 42);
        for mode in [
            MembershipMode::ExactGaussian,
            MembershipMode::PiecewiseLinear,
        ] {
            let clf = FuzzyClassifier::train(&xs, &ys, mode).unwrap();
            let correct = xs
                .iter()
                .zip(&ys)
                .filter(|(x, &y)| clf.predict(x) == y)
                .count();
            assert!(
                correct as f64 / xs.len() as f64 > 0.98,
                "{mode:?}: {}/{}",
                correct,
                xs.len()
            );
        }
    }

    #[test]
    fn pwl_agrees_with_exact_on_most_points() {
        let (xs, ys) = gaussian_blobs(60, 77);
        let exact = FuzzyClassifier::train(&xs, &ys, MembershipMode::ExactGaussian).unwrap();
        let pwl = exact.with_mode(MembershipMode::PiecewiseLinear);
        let agree = xs
            .iter()
            .filter(|x| exact.predict(x) == pwl.predict(x))
            .count();
        assert!(
            agree as f64 / xs.len() as f64 > 0.97,
            "agreement {}/{}",
            agree,
            xs.len()
        );
    }

    #[test]
    fn rejects_bad_training_sets() {
        assert!(FuzzyClassifier::train(&[], &[], MembershipMode::ExactGaussian).is_err());
        let xs = vec![vec![1.0], vec![2.0]];
        assert!(FuzzyClassifier::train(&xs, &[0], MembershipMode::ExactGaussian).is_err());
        // Class with a single member.
        assert!(FuzzyClassifier::train(&xs, &[0, 1], MembershipMode::ExactGaussian).is_err());
        // Inconsistent dims.
        let bad = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(FuzzyClassifier::train(&bad, &[0, 0], MembershipMode::ExactGaussian).is_err());
    }

    #[test]
    fn priors_break_ties() {
        // Two identical overlapping classes, one with 3x the examples:
        // ambiguous points go to the bigger class.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            xs.push(vec![(i % 5) as f64 * 0.01]);
            ys.push(0);
        }
        for i in 0..10 {
            xs.push(vec![(i % 5) as f64 * 0.01]);
            ys.push(1);
        }
        let clf = FuzzyClassifier::train(&xs, &ys, MembershipMode::ExactGaussian).unwrap();
        assert_eq!(clf.predict(&[0.02]), 0);
    }

    #[test]
    fn ops_accounting_scales_with_model() {
        let (xs, ys) = gaussian_blobs(10, 5);
        let clf = FuzzyClassifier::train(&xs, &ys, MembershipMode::PiecewiseLinear).unwrap();
        assert_eq!(clf.ops_per_beat(), 3 * 4 * 7);
    }
}
