//! Classification scoring: confusion matrices, sensitivity/specificity.

/// A square confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    /// `counts[truth * n + predicted]`.
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Empty matrix over `n` classes.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        ConfusionMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n
    }

    /// Records one `(truth, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics when either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.n && predicted < self.n, "label out of range");
        self.counts[truth * self.n + predicted] += 1;
    }

    /// Count at `(truth, predicted)`.
    pub fn at(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth * self.n + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n).map(|c| self.at(c, c)).sum();
        if self.total() == 0 {
            0.0
        } else {
            correct as f64 / self.total() as f64
        }
    }

    /// Per-class sensitivity (recall): `TP_c / (row c sum)`.
    pub fn sensitivity(&self, class: usize) -> f64 {
        let row: usize = (0..self.n).map(|p| self.at(class, p)).sum();
        if row == 0 {
            1.0
        } else {
            self.at(class, class) as f64 / row as f64
        }
    }

    /// Per-class specificity: `TN_c / (TN_c + FP_c)`.
    pub fn specificity(&self, class: usize) -> f64 {
        let fp: usize = (0..self.n)
            .filter(|&t| t != class)
            .map(|t| self.at(t, class))
            .sum();
        let tn: usize = (0..self.n)
            .filter(|&t| t != class)
            .map(|t| {
                (0..self.n)
                    .filter(|&p| p != class)
                    .map(|p| self.at(t, p))
                    .sum::<usize>()
            })
            .sum();
        if tn + fp == 0 {
            1.0
        } else {
            tn as f64 / (tn + fp) as f64
        }
    }

    /// Per-class positive predictive value: `TP_c / (column c sum)`.
    pub fn ppv(&self, class: usize) -> f64 {
        let col: usize = (0..self.n).map(|t| self.at(t, class)).sum();
        if col == 0 {
            1.0
        } else {
            self.at(class, class) as f64 / col as f64
        }
    }

    /// Merges another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n, other.n, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl core::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "confusion matrix ({} classes, rows=truth):", self.n)?;
        for t in 0..self.n {
            for p in 0..self.n {
                write!(f, "{:>7}", self.at(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(2);
        // truth 0: 8 correct, 2 as class 1; truth 1: 9 correct, 1 as 0.
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        for _ in 0..9 {
            m.record(1, 1);
        }
        m.record(1, 0);
        m
    }

    #[test]
    fn accuracy_and_counts() {
        let m = sample();
        assert_eq!(m.total(), 20);
        assert!((m.accuracy() - 17.0 / 20.0).abs() < 1e-12);
        assert_eq!(m.at(0, 1), 2);
    }

    #[test]
    fn sensitivity_specificity_ppv() {
        let m = sample();
        assert!((m.sensitivity(0) - 0.8).abs() < 1e-12);
        assert!((m.sensitivity(1) - 0.9).abs() < 1e-12);
        // Specificity of class 1 = TN/(TN+FP) = 8/(8+2).
        assert!((m.specificity(1) - 0.8).abs() < 1e-12);
        // PPV of class 1 = 9/11.
        assert!((m.ppv(1) - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 40);
        assert_eq!(a.at(1, 1), 18);
    }

    #[test]
    fn empty_matrix_is_benign() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.sensitivity(0), 1.0);
        assert_eq!(m.specificity(2), 1.0);
    }

    #[test]
    fn display_renders_rows() {
        let m = sample();
        let s = format!("{m}");
        assert!(s.contains("rows=truth"));
        assert!(s.lines().count() >= 3);
    }
}
