//! # wbsn-classify
//!
//! Embedded heartbeat classification and atrial-fibrillation detection
//! (Sections III-D, IV-A and V of the DAC'14 paper).
//!
//! * [`features`] — per-beat feature extraction by **random
//!   projection** (Achlioptas ternary matrices stored at 2 bits per
//!   element, reference \[15\]): a morphology window around each R peak
//!   is projected to a handful of dimensions with additions and
//!   subtractions only, then augmented with RR-interval ratios.
//! * [`fuzzy`] — the neuro-fuzzy classifier of reference \[14\]:
//!   per-class Gaussian memberships over each feature, evaluated either
//!   exactly or with the **four-segment piecewise-linear
//!   approximation** the paper highlights as "close-to-optimal …
//!   while vastly simplifying the computational requirements".
//! * [`knn`] — a k-nearest-neighbour baseline for ablations.
//! * [`af`] — the real-time AF detector of reference \[25\]: RR-interval
//!   irregularity metrics plus P-wave absence, combined by fuzzy rules
//!   with hysteresis into episodes (the 96% Se / 93% Sp text claim).
//! * [`eval`] — confusion matrices and sensitivity/specificity.

// Every public item carries documentation; rustdoc runs with
// `-D warnings` in CI, so a gap fails the build.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod af;
pub mod eval;
pub mod features;
pub mod fuzzy;
pub mod knn;

pub use af::{AfBeat, AfConfig, AfDetector, AfWindow};
pub use eval::ConfusionMatrix;
pub use features::{BeatFeatureExtractor, FeatureConfig};
pub use fuzzy::{FuzzyClassifier, MembershipMode};

/// Errors produced by classifier configuration and training.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifyError {
    /// Parameter outside its valid range.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Explanation.
        detail: String,
    },
    /// Training data insufficient or inconsistent.
    InvalidTrainingData {
        /// Explanation.
        detail: String,
    },
}

impl core::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClassifyError::InvalidParameter { what, detail } => {
                write!(f, "invalid parameter {what}: {detail}")
            }
            ClassifyError::InvalidTrainingData { detail } => {
                write!(f, "invalid training data: {detail}")
            }
        }
    }
}

impl std::error::Error for ClassifyError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, ClassifyError>;
