//! k-nearest-neighbour baseline classifier.
//!
//! Used in the ablation benches as the "memory-unconstrained"
//! comparison point for the fuzzy classifier: kNN stores every training
//! beat (far beyond a WBSN's RAM) but is a strong accuracy reference.

use crate::{ClassifyError, Result};

/// kNN classifier over Euclidean distance.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<usize>,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// # Errors
    ///
    /// Fails when inputs are empty/mismatched or `k` is zero.
    pub fn train(features: &[Vec<f64>], labels: &[usize], k: usize) -> Result<Self> {
        if k == 0 {
            return Err(ClassifyError::InvalidParameter {
                what: "k",
                detail: "must be non-zero".into(),
            });
        }
        if features.is_empty() || features.len() != labels.len() {
            return Err(ClassifyError::InvalidTrainingData {
                detail: "empty or mismatched training set".into(),
            });
        }
        Ok(KnnClassifier {
            k: k.min(features.len()),
            train_x: features.to_vec(),
            train_y: labels.to_vec(),
        })
    }

    /// Number of stored examples.
    pub fn len(&self) -> usize {
        self.train_x.len()
    }

    /// True when no examples are stored (never for a trained model).
    pub fn is_empty(&self) -> bool {
        self.train_x.is_empty()
    }

    /// Memory footprint of the stored training set in bytes — the
    /// reason this baseline cannot ship on the node.
    pub fn memory_bytes(&self) -> usize {
        self.train_x.iter().map(|f| f.len() * 8).sum::<usize>() + self.train_y.len() * 8
    }

    /// Predicts by majority vote among the `k` nearest neighbours.
    ///
    /// # Panics
    ///
    /// Panics when `x` has a different dimensionality than the
    /// training data.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.train_x[0].len(), "feature dimensionality");
        let mut dists: Vec<(f64, usize)> = self
            .train_x
            .iter()
            .zip(&self.train_y)
            .map(|(t, &y)| {
                let d: f64 = t.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN distances"));
        let mut votes = std::collections::HashMap::new();
        for &(_, y) in dists.iter().take(self.k) {
            *votes.entry(y).or_insert(0usize) += 1;
        }
        votes
            .into_iter()
            .max_by_key(|&(label, count)| (count, usize::MAX - label))
            .map(|(label, _)| label)
            .expect("k >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_wins() {
        let xs = vec![vec![0.0], vec![10.0], vec![0.2], vec![9.8]];
        let ys = vec![0, 1, 0, 1];
        let knn = KnnClassifier::train(&xs, &ys, 1).unwrap();
        assert_eq!(knn.predict(&[0.1]), 0);
        assert_eq!(knn.predict(&[9.9]), 1);
    }

    #[test]
    fn majority_vote_with_k3() {
        let xs = vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0]];
        let ys = vec![0, 0, 1, 1];
        let knn = KnnClassifier::train(&xs, &ys, 3).unwrap();
        // Neighbours of 0.05: {0.0:0, 0.1:0, 0.2:1} -> class 0.
        assert_eq!(knn.predict(&[0.05]), 0);
    }

    #[test]
    fn k_is_clamped_to_training_size() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0, 1];
        let knn = KnnClassifier::train(&xs, &ys, 100).unwrap();
        let _ = knn.predict(&[0.4]); // must not panic
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(KnnClassifier::train(&[], &[], 1).is_err());
        assert!(KnnClassifier::train(&[vec![1.0]], &[0], 0).is_err());
        assert!(KnnClassifier::train(&[vec![1.0]], &[0, 1], 1).is_err());
    }

    #[test]
    fn memory_scales_with_training_set() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64; 18]).collect();
        let ys: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let knn = KnnClassifier::train(&xs, &ys, 3).unwrap();
        assert_eq!(knn.memory_bytes(), 100 * 18 * 8 + 100 * 8);
    }
}
