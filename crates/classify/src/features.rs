//! Random-projection beat features.
//!
//! Each beat is summarized by projecting a fixed morphology window
//! around its R peak through a ternary Achlioptas matrix (2-bit packed,
//! Section IV-A of the paper), then appending two RR-interval ratios.
//! Projection costs one signed addition per non-zero matrix element —
//! no multiplications — and the Johnson–Lindenstrauss lemma guarantees
//! inter-class distances are approximately preserved.

use crate::{ClassifyError, Result};
use wbsn_sigproc::matrix::PackedTernaryMatrix;

/// Feature-extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureConfig {
    /// Sampling rate in Hz.
    pub fs_hz: u32,
    /// Samples taken before the R peak.
    pub pre_samples: usize,
    /// Samples taken after the R peak.
    pub post_samples: usize,
    /// Projected dimensionality.
    pub projected_dims: usize,
    /// Seed for the projection matrix (shared by train/infer).
    pub seed: u64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            fs_hz: 250,
            pre_samples: 62,  // 250 ms: includes the P region
            post_samples: 88, // 350 ms: includes the T onset
            projected_dims: 16,
            seed: 0xBEA7,
        }
    }
}

/// Extracts projected features for beats.
#[derive(Debug, Clone)]
pub struct BeatFeatureExtractor {
    cfg: FeatureConfig,
    projection: PackedTernaryMatrix,
    // Reused per-beat buffers (centered window, projection output), so
    // the streaming classify path allocates only the returned feature
    // vector itself.
    centered_scratch: Vec<i32>,
    proj_scratch: Vec<i64>,
}

impl BeatFeatureExtractor {
    /// Creates an extractor (generates the packed ternary projection).
    ///
    /// # Errors
    ///
    /// Fails when the window or projection dimensions are zero.
    pub fn new(cfg: FeatureConfig) -> Result<Self> {
        if cfg.pre_samples + cfg.post_samples == 0 {
            return Err(ClassifyError::InvalidParameter {
                what: "window",
                detail: "pre+post must be non-zero".into(),
            });
        }
        if cfg.projected_dims == 0 {
            return Err(ClassifyError::InvalidParameter {
                what: "projected_dims",
                detail: "must be non-zero".into(),
            });
        }
        let projection = PackedTernaryMatrix::random_achlioptas(
            cfg.projected_dims,
            cfg.pre_samples + cfg.post_samples,
            cfg.seed,
        )
        .map_err(|e| ClassifyError::InvalidParameter {
            what: "projection",
            detail: e.to_string(),
        })?;
        Ok(BeatFeatureExtractor {
            cfg,
            projection,
            centered_scratch: Vec::new(),
            proj_scratch: Vec::new(),
        })
    }

    /// Configuration in use.
    pub fn config(&self) -> &FeatureConfig {
        &self.cfg
    }

    /// Total feature dimensionality (projection + 2 RR ratios).
    pub fn dims(&self) -> usize {
        self.cfg.projected_dims + 2
    }

    /// Flash bytes used by the packed projection matrix — the paper's
    /// 2-bit-per-element memory optimization.
    pub fn projection_memory_bytes(&self) -> usize {
        self.projection.memory_bytes()
    }

    /// Signed additions per classified beat (the energy-model cost of
    /// the projection).
    pub fn adds_per_beat(&self) -> usize {
        self.projection.nnz()
    }

    /// Extracts features for the beat whose R peak is at `r`.
    ///
    /// `rr_prev` / `rr_next` are the neighbouring RR intervals in
    /// samples (used as rhythm context); the morphology window is
    /// amplitude-normalized so electrode gain cancels.
    ///
    /// Returns `None` when the window does not fit inside `x`.
    ///
    /// The centering and projection intermediates live in reused
    /// scratch (hence `&mut self`); only the returned feature vector
    /// is allocated.
    pub fn extract(
        &mut self,
        x: &[i32],
        r: usize,
        rr_prev: usize,
        rr_next: usize,
    ) -> Option<Vec<f64>> {
        if r < self.cfg.pre_samples || r + self.cfg.post_samples > x.len() {
            return None;
        }
        let window = &x[r - self.cfg.pre_samples..r + self.cfg.post_samples];
        // Remove window mean and normalize by peak magnitude.
        let mean = window.iter().map(|&v| v as i64).sum::<i64>() / window.len() as i64;
        let centered = &mut self.centered_scratch;
        centered.clear();
        centered.extend(window.iter().map(|&v| (v as i64 - mean) as i32));
        let peak = centered
            .iter()
            .map(|v| v.unsigned_abs())
            .max()
            .unwrap_or(1)
            .max(1);
        self.projection
            .apply_i32_into(centered, &mut self.proj_scratch);
        let mut features: Vec<f64> = Vec::with_capacity(self.proj_scratch.len() + 2);
        features.extend(self.proj_scratch.iter().map(|&v| v as f64 / peak as f64));
        // RR context, normalized to ~1 at a resting rate.
        let rr_ref = 0.8 * self.cfg.fs_hz as f64;
        features.push(rr_prev as f64 / rr_ref);
        features.push(rr_next as f64 / rr_ref);
        Some(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat_signal(n: usize, r: usize, wide: bool) -> Vec<i32> {
        let mut x = vec![0i32; n];
        let sig = if wide { 8.0 } else { 3.0 };
        for (i, xi) in x.iter_mut().enumerate() {
            let d = (i as f64 - r as f64) / sig;
            *xi = (900.0 * (-0.5 * d * d).exp()) as i32;
        }
        x
    }

    #[test]
    fn features_have_expected_shape() {
        let mut fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let x = beat_signal(500, 250, false);
        let f = fe.extract(&x, 250, 200, 200).unwrap();
        assert_eq!(f.len(), fe.dims());
        assert_eq!(f.len(), 18);
    }

    #[test]
    fn window_bounds_are_enforced() {
        let mut fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let x = beat_signal(500, 250, false);
        assert!(fe.extract(&x, 30, 200, 200).is_none());
        assert!(fe.extract(&x, 490, 200, 200).is_none());
    }

    #[test]
    fn amplitude_invariance() {
        let mut fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let x = beat_signal(500, 250, false);
        let x2: Vec<i32> = x.iter().map(|&v| v * 2).collect();
        let f1 = fe.extract(&x, 250, 200, 200).unwrap();
        let f2 = fe.extract(&x2, 250, 200, 200).unwrap();
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn wide_and_narrow_beats_separate() {
        let mut fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let narrow = fe
            .extract(&beat_signal(500, 250, false), 250, 200, 200)
            .unwrap();
        let wide = fe
            .extract(&beat_signal(500, 250, true), 250, 200, 200)
            .unwrap();
        let dist: f64 = narrow
            .iter()
            .zip(&wide)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "projected distance {dist}");
    }

    #[test]
    fn rr_features_reflect_prematurity() {
        let mut fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let x = beat_signal(500, 250, false);
        let normal = fe.extract(&x, 250, 200, 200).unwrap();
        let premature = fe.extract(&x, 250, 120, 260).unwrap();
        let d = fe.dims();
        assert!(premature[d - 2] < normal[d - 2]);
        assert!(premature[d - 1] > normal[d - 1]);
    }

    #[test]
    fn projection_memory_is_two_bits_per_element() {
        let fe = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let elems: usize = 16 * (62 + 88);
        assert_eq!(fe.projection_memory_bytes(), elems.div_ceil(4));
        // 600 bytes of flash for the whole projection.
        assert!(fe.projection_memory_bytes() <= 600);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let mut b = BeatFeatureExtractor::new(FeatureConfig::default()).unwrap();
        let x = beat_signal(400, 200, false);
        assert_eq!(a.extract(&x, 200, 200, 200), b.extract(&x, 200, 200, 200));
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(BeatFeatureExtractor::new(FeatureConfig {
            pre_samples: 0,
            post_samples: 0,
            ..FeatureConfig::default()
        })
        .is_err());
        assert!(BeatFeatureExtractor::new(FeatureConfig {
            projected_dims: 0,
            ..FeatureConfig::default()
        })
        .is_err());
    }
}
