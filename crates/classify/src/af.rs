//! Real-time atrial-fibrillation detection (reference \[25\]).
//!
//! AF shows two joint irregularities, both visible to the on-node
//! pipeline: (1) the ventricular response becomes erratic — successive
//! RR intervals lose their correlation — and (2) the P wave disappears
//! (replaced by fibrillatory f-waves the delineator rejects). The
//! detector slides a window of beats, computes RR-irregularity metrics
//! (normalized RMSSD, Shannon entropy of ΔRR, turning-point ratio) and
//! the fraction of beats with a delineated P wave, and combines them
//! with fuzzy rules + hysteresis into AF episodes. The paper reports
//! 96% sensitivity / 93% specificity for this low-complexity approach.

use crate::{ClassifyError, Result};

/// One beat as seen by the AF detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AfBeat {
    /// R-peak sample index.
    pub r_sample: usize,
    /// Whether the delineator located a P wave for this beat.
    pub has_p: bool,
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AfConfig {
    /// Sampling rate in Hz.
    pub fs_hz: u32,
    /// Beats per analysis window.
    pub window_beats: usize,
    /// Beats the window advances per step.
    pub step_beats: usize,
    /// Windows of sustained decision required to enter/leave AF
    /// (hysteresis).
    pub hysteresis_windows: usize,
}

impl Default for AfConfig {
    fn default() -> Self {
        AfConfig {
            fs_hz: 250,
            window_beats: 24,
            step_beats: 8,
            hysteresis_windows: 2,
        }
    }
}

/// Per-window AF decision with the underlying evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AfWindow {
    /// First beat index of the window (inclusive).
    pub start_beat: usize,
    /// One-past-last beat index.
    pub end_beat: usize,
    /// First R sample of the window.
    pub start_sample: usize,
    /// Last R sample of the window.
    pub end_sample: usize,
    /// Normalized RMSSD of RR intervals.
    pub nrmssd: f64,
    /// Shannon entropy of the ΔRR histogram (bits).
    pub drr_entropy: f64,
    /// Turning-point ratio of the RR series.
    pub tpr: f64,
    /// Fraction of beats with a located P wave.
    pub p_fraction: f64,
    /// Fuzzy AF score in `[0, 1]`.
    pub score: f64,
    /// Thresholded decision for this window (before hysteresis).
    pub is_af: bool,
}

/// Sliding-window AF detector.
#[derive(Debug, Clone)]
pub struct AfDetector {
    cfg: AfConfig,
}

impl AfDetector {
    /// Creates a detector.
    ///
    /// # Errors
    ///
    /// Fails when the window is shorter than 8 beats or the step is
    /// zero or larger than the window.
    pub fn new(cfg: AfConfig) -> Result<Self> {
        if cfg.window_beats < 8 {
            return Err(ClassifyError::InvalidParameter {
                what: "window_beats",
                detail: "must be at least 8".into(),
            });
        }
        if cfg.step_beats == 0 || cfg.step_beats > cfg.window_beats {
            return Err(ClassifyError::InvalidParameter {
                what: "step_beats",
                detail: "must be in 1..=window_beats".into(),
            });
        }
        Ok(AfDetector { cfg })
    }

    /// Configuration in use.
    pub fn config(&self) -> &AfConfig {
        &self.cfg
    }

    /// Analyzes a beat sequence into per-window decisions.
    pub fn analyze(&self, beats: &[AfBeat]) -> Vec<AfWindow> {
        let w = self.cfg.window_beats;
        if beats.len() < w + 1 {
            return Vec::new();
        }
        let fs = self.cfg.fs_hz as f64;
        let mut out = Vec::new();
        let mut start = 0usize;
        while start + w < beats.len() {
            let slice = &beats[start..=start + w]; // w+1 beats -> w RRs
            let rr: Vec<f64> = slice
                .windows(2)
                .map(|p| (p[1].r_sample - p[0].r_sample) as f64 / fs)
                .collect();
            let mean_rr = rr.iter().sum::<f64>() / rr.len() as f64;
            let nrmssd = {
                let ss: f64 = rr
                    .windows(2)
                    .map(|p| (p[1] - p[0]) * (p[1] - p[0]))
                    .sum::<f64>()
                    / (rr.len() - 1) as f64;
                ss.sqrt() / mean_rr.max(1e-6)
            };
            let drr_entropy = delta_rr_entropy(&rr);
            let tpr = turning_point_ratio(&rr);
            let p_fraction = slice.iter().filter(|b| b.has_p).count() as f64 / slice.len() as f64;
            let score = af_score(nrmssd, drr_entropy, tpr, p_fraction);
            out.push(AfWindow {
                start_beat: start,
                end_beat: start + w,
                start_sample: slice[0].r_sample,
                end_sample: slice[w].r_sample,
                nrmssd,
                drr_entropy,
                tpr,
                p_fraction,
                score,
                is_af: score > 0.5,
            });
            start += self.cfg.step_beats;
        }
        self.apply_hysteresis(&mut out);
        out
    }

    /// Hysteresis: a state flip requires `hysteresis_windows`
    /// consecutive opposite decisions; isolated flips are smoothed out.
    fn apply_hysteresis(&self, windows: &mut [AfWindow]) {
        let h = self.cfg.hysteresis_windows;
        if h <= 1 || windows.is_empty() {
            return;
        }
        let raw: Vec<bool> = windows.iter().map(|w| w.is_af).collect();
        let mut state = raw[0];
        let mut run = 0usize;
        for i in 0..raw.len() {
            if raw[i] != state {
                run += 1;
                if run >= h {
                    state = raw[i];
                    run = 0;
                    // Retroactively flip the run that confirmed the change.
                    for w in windows.iter_mut().take(i + 1).skip(i + 1 - h) {
                        w.is_af = state;
                    }
                }
            } else {
                run = 0;
            }
            windows[i].is_af = state;
        }
    }

    /// Fraction of windows flagged AF (record-level summary).
    pub fn af_burden(windows: &[AfWindow]) -> f64 {
        if windows.is_empty() {
            return 0.0;
        }
        windows.iter().filter(|w| w.is_af).count() as f64 / windows.len() as f64
    }
}

/// Shannon entropy (bits) of the ΔRR histogram over 8 bins spanning
/// ±200 ms.
fn delta_rr_entropy(rr: &[f64]) -> f64 {
    if rr.len() < 2 {
        return 0.0;
    }
    let mut bins = [0usize; 8];
    let mut count = 0usize;
    for p in rr.windows(2) {
        let d = (p[1] - p[0]).clamp(-0.2, 0.2);
        let idx = (((d + 0.2) / 0.4) * 8.0).min(7.0) as usize;
        bins[idx] += 1;
        count += 1;
    }
    let mut h = 0.0;
    for &b in &bins {
        if b > 0 {
            let p = b as f64 / count as f64;
            h -= p * p.log2();
        }
    }
    h
}

/// Fraction of interior points that are local extrema of the RR
/// series; an uncorrelated series approaches 2/3.
fn turning_point_ratio(rr: &[f64]) -> f64 {
    if rr.len() < 3 {
        return 0.0;
    }
    let turns = rr
        .windows(3)
        .filter(|w| (w[1] > w[0] && w[1] > w[2]) || (w[1] < w[0] && w[1] < w[2]))
        .count();
    turns as f64 / (rr.len() - 2) as f64
}

/// Trapezoidal membership rising from `lo` to `hi`.
fn rise(x: f64, lo: f64, hi: f64) -> f64 {
    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
}

/// Trapezoidal membership falling from `hi` to `lo`.
fn fall(x: f64, lo: f64, hi: f64) -> f64 {
    1.0 - rise(x, lo, hi)
}

/// Fuzzy rule base: AF = (irregular RR) AND (no P waves), where the RR
/// irregularity aggregates three metrics by weighted mean.
fn af_score(nrmssd: f64, entropy: f64, tpr: f64, p_fraction: f64) -> f64 {
    // Sinus: nRMSSD ≈ 0.02–0.08; AF ≈ 0.25–0.45.
    let mu_rmssd = rise(nrmssd, 0.08, 0.20);
    // Entropy: sinus ΔRR concentrates in 1–2 bins (<1.2 bits); AF > 2.
    let mu_entropy = rise(entropy, 1.2, 2.2);
    // TPR → ~0.66 for uncorrelated series; sinus is smoother (~0.4).
    let mu_tpr = rise(tpr, 0.45, 0.62);
    let mu_irregular = 0.5 * mu_rmssd + 0.3 * mu_entropy + 0.2 * mu_tpr;
    // P-wave absence: strong evidence when < 30% of beats have P.
    let mu_no_p = fall(p_fraction, 0.30, 0.70);
    // Fuzzy AND (product keeps both factors necessary).
    (mu_irregular * mu_no_p).sqrt().min(1.0) * mu_irregular.max(mu_no_p).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic beat streams.
    fn sinus_beats(n: usize, fs: usize) -> Vec<AfBeat> {
        let mut t = 0usize;
        (0..n)
            .map(|i| {
                // Mild sinus variability (~3%).
                let rr = (0.8 + 0.024 * ((i as f64) * 0.7).sin()) * fs as f64;
                t += rr as usize;
                AfBeat {
                    r_sample: t,
                    has_p: true,
                }
            })
            .collect()
    }

    fn af_beats(n: usize, fs: usize, seed: u64) -> Vec<AfBeat> {
        let mut state = seed.max(1);
        let mut t = 0usize;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                let rr = (0.45 + 0.5 * u) * fs as f64; // wildly irregular
                t += rr as usize;
                AfBeat {
                    r_sample: t,
                    has_p: false,
                }
            })
            .collect()
    }

    #[test]
    fn sinus_is_not_af() {
        let det = AfDetector::new(AfConfig::default()).unwrap();
        let windows = det.analyze(&sinus_beats(200, 250));
        assert!(!windows.is_empty());
        assert!(
            AfDetector::af_burden(&windows) < 0.05,
            "burden {}",
            AfDetector::af_burden(&windows)
        );
    }

    #[test]
    fn af_is_detected() {
        let det = AfDetector::new(AfConfig::default()).unwrap();
        let windows = det.analyze(&af_beats(200, 250, 7));
        assert!(!windows.is_empty());
        assert!(
            AfDetector::af_burden(&windows) > 0.9,
            "burden {}",
            AfDetector::af_burden(&windows)
        );
    }

    #[test]
    fn irregular_rr_with_p_waves_is_ambiguous_not_af() {
        // Frequent ectopy: irregular RR but P waves present on most
        // beats — the AND rule must keep this below the AF threshold.
        let mut beats = af_beats(200, 250, 9);
        for b in &mut beats {
            b.has_p = true;
        }
        let det = AfDetector::new(AfConfig::default()).unwrap();
        let windows = det.analyze(&beats);
        assert!(
            AfDetector::af_burden(&windows) < 0.3,
            "burden {}",
            AfDetector::af_burden(&windows)
        );
    }

    #[test]
    fn paroxysmal_episode_is_localized() {
        let fs = 250;
        let mut beats = sinus_beats(80, fs);
        let last = beats.last().unwrap().r_sample;
        let mut episode = af_beats(80, fs, 3);
        for b in &mut episode {
            b.r_sample += last + fs / 2;
        }
        let episode_range = (episode[0].r_sample, episode.last().unwrap().r_sample);
        beats.extend(episode.iter().copied());
        let tail_start = beats.last().unwrap().r_sample;
        let mut tail = sinus_beats(80, fs);
        for b in &mut tail {
            b.r_sample += tail_start + fs / 2;
        }
        beats.extend(tail);
        let det = AfDetector::new(AfConfig::default()).unwrap();
        let windows = det.analyze(&beats);
        // Windows wholly inside the episode must be AF; wholly outside not.
        for w in &windows {
            if w.start_sample > episode_range.0 && w.end_sample < episode_range.1 {
                assert!(w.is_af, "window inside episode not flagged");
            }
            if w.end_sample < episode_range.0 - fs * 20 {
                assert!(!w.is_af, "early sinus window flagged");
            }
        }
    }

    #[test]
    fn entropy_and_tpr_behave() {
        let constant = vec![0.8; 30];
        assert_eq!(delta_rr_entropy(&constant), 0.0);
        assert_eq!(turning_point_ratio(&constant), 0.0);
        let alternating: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 0.6 } else { 1.0 })
            .collect();
        assert!(turning_point_ratio(&alternating) > 0.95);
    }

    #[test]
    fn too_few_beats_yield_no_windows() {
        let det = AfDetector::new(AfConfig::default()).unwrap();
        assert!(det.analyze(&sinus_beats(10, 250)).is_empty());
    }

    #[test]
    fn config_validation() {
        assert!(AfDetector::new(AfConfig {
            window_beats: 4,
            ..AfConfig::default()
        })
        .is_err());
        assert!(AfDetector::new(AfConfig {
            step_beats: 0,
            ..AfConfig::default()
        })
        .is_err());
        assert!(AfDetector::new(AfConfig {
            step_beats: 50,
            window_beats: 24,
            ..AfConfig::default()
        })
        .is_err());
    }

    #[test]
    fn hysteresis_smooths_single_window_flips() {
        let det = AfDetector::new(AfConfig::default()).unwrap();
        // Long sinus with one noisy window worth of irregularity.
        let mut beats = sinus_beats(150, 250);
        // Corrupt ~10 consecutive RRs in the middle.
        for (i, b) in beats.iter_mut().enumerate().take(80).skip(70) {
            b.r_sample += (i % 3) * 60;
        }
        let windows = det.analyze(&beats);
        // With hysteresis = 2, isolated flips may not start an episode;
        // the overall burden stays low.
        assert!(
            AfDetector::af_burden(&windows) < 0.35,
            "burden {}",
            AfDetector::af_burden(&windows)
        );
    }
}
