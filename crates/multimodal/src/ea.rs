//! Ensemble averaging time-locked to the ECG.
//!
//! "Most cardiac bio-signals originate from the response to the
//! bioelectric stimuli reflected in the ECG … time-locked to these
//! stimuli. This information can be used to remove noise (which is
//! instead uncorrelated to the stimuli)" — Section IV-C. Averaging N
//! beat-aligned segments improves SNR by ~10·log10(N) dB for white
//! noise, at the cost of losing beat-to-beat variation.

/// Running time-locked ensemble average over fixed-length segments.
#[derive(Debug, Clone)]
pub struct EnsembleAverager {
    sum: Vec<f64>,
    count: usize,
}

impl EnsembleAverager {
    /// Averager for segments of `len` samples.
    ///
    /// # Panics
    ///
    /// Panics when `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "segment length must be non-zero");
        EnsembleAverager {
            sum: vec![0.0; len],
            count: 0,
        }
    }

    /// Segment length.
    pub fn len(&self) -> usize {
        self.sum.len()
    }

    /// True before any segment was added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of accumulated segments.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one beat-aligned segment.
    ///
    /// # Panics
    ///
    /// Panics when `segment.len()` differs from the configured length.
    pub fn add(&mut self, segment: &[f64]) {
        assert_eq!(segment.len(), self.sum.len(), "segment length");
        for (s, &v) in self.sum.iter_mut().zip(segment) {
            *s += v;
        }
        self.count += 1;
    }

    /// Current ensemble average (zeros before the first segment).
    pub fn template(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.sum.len()];
        }
        self.sum.iter().map(|&s| s / self.count as f64).collect()
    }

    /// Extracts beat-aligned segments from `x` at `anchors` (e.g. R
    /// peaks), each starting `pre` samples before the anchor; segments
    /// that do not fit are skipped.
    pub fn segments(x: &[f64], anchors: &[usize], pre: usize, len: usize) -> Vec<Vec<f64>> {
        anchors
            .iter()
            .filter_map(|&a| {
                let start = a.checked_sub(pre)?;
                if start + len <= x.len() {
                    Some(x[start..start + len].to_vec())
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_segments(n_segs: usize, len: usize, noise: f64) -> (Vec<f64>, Vec<Vec<f64>>) {
        let template: Vec<f64> = (0..len)
            .map(|i| (core::f64::consts::TAU * i as f64 / len as f64).sin())
            .collect();
        let mut state = 12345u64;
        let mut segs = Vec::new();
        for _ in 0..n_segs {
            let seg: Vec<f64> = template
                .iter()
                .map(|&t| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    t + noise * u * 3.46 // uniform with unit-ish variance scaling
                })
                .collect();
            segs.push(seg);
        }
        (template, segs)
    }

    #[test]
    fn averaging_recovers_template() {
        let (template, segs) = noisy_segments(400, 64, 1.0);
        let mut ea = EnsembleAverager::new(64);
        for s in &segs {
            ea.add(s);
        }
        let avg = ea.template();
        let err: f64 = avg
            .iter()
            .zip(&template)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 64.0;
        assert!(err < 0.02, "residual mse {err}");
        assert_eq!(ea.count(), 400);
    }

    #[test]
    fn snr_gain_scales_with_count() {
        let (template, segs) = noisy_segments(256, 32, 1.0);
        let mse_at = |n: usize| {
            let mut ea = EnsembleAverager::new(32);
            for s in &segs[..n] {
                ea.add(s);
            }
            ea.template()
                .iter()
                .zip(&template)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / 32.0
        };
        let m16 = mse_at(16);
        let m256 = mse_at(256);
        // 16x more segments => ~16x lower noise power (allow slack).
        assert!(m16 / m256 > 6.0, "m16 {m16} m256 {m256}");
    }

    #[test]
    fn segment_extraction_skips_edges() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let segs = EnsembleAverager::segments(&x, &[5, 50, 98], 10, 20);
        // Anchor 5 (underflow) and 98 (overflow) are skipped.
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0][0], 40.0);
    }

    #[test]
    fn empty_averager_yields_zeros() {
        let ea = EnsembleAverager::new(8);
        assert!(ea.is_empty());
        assert_eq!(ea.template(), vec![0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "segment length")]
    fn mismatched_segment_panics() {
        let mut ea = EnsembleAverager::new(8);
        ea.add(&[0.0; 7]);
    }
}
