//! Adaptive impulse-correlated filter (Laguna et al. 1992).
//!
//! An LMS adaptive filter whose reference input is the R-peak impulse
//! train: the filter weights converge to the deterministic (stimulus-
//! locked) component of the signal, like ensemble averaging — but the
//! adaptation step `mu` lets the estimate **track dynamic changes**,
//! the advantage over EA the paper points out ("AICF, on the other
//! hand, is also capable of tracking dynamic changes in the signal").

/// Adaptive impulse-correlated filter over fixed-length beat windows.
#[derive(Debug, Clone)]
pub struct Aicf {
    weights: Vec<f64>,
    mu: f64,
    beats_seen: usize,
}

impl Aicf {
    /// Filter for windows of `len` samples with adaptation step `mu`
    /// (0 < mu ≤ 1; LMS with impulse reference reduces to a per-tap
    /// exponential update `h ← h + mu (x − h)`).
    ///
    /// # Panics
    ///
    /// Panics when `len == 0` or `mu` is out of `(0, 1]`.
    pub fn new(len: usize, mu: f64) -> Self {
        assert!(len > 0, "window length must be non-zero");
        assert!(mu > 0.0 && mu <= 1.0, "mu must be in (0, 1]");
        Aicf {
            weights: vec![0.0; len],
            mu,
            beats_seen: 0,
        }
    }

    /// Window length.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True before the first update.
    pub fn is_empty(&self) -> bool {
        self.beats_seen == 0
    }

    /// Adaptation step.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Number of processed beats.
    pub fn beats_seen(&self) -> usize {
        self.beats_seen
    }

    /// Processes one beat-aligned window: returns the filter's current
    /// estimate (the denoised beat) and adapts towards the input.
    ///
    /// # Panics
    ///
    /// Panics when `window.len()` differs from the configured length.
    pub fn process(&mut self, window: &[f64]) -> Vec<f64> {
        assert_eq!(window.len(), self.weights.len(), "window length");
        // First beat: initialize directly (standard practice to avoid
        // the long ramp from zero).
        if self.beats_seen == 0 {
            self.weights.copy_from_slice(window);
            self.beats_seen = 1;
            return self.weights.clone();
        }
        for (w, &x) in self.weights.iter_mut().zip(window) {
            *w += self.mu * (x - *w);
        }
        self.beats_seen += 1;
        self.weights.clone()
    }

    /// Current estimate without adapting.
    pub fn estimate(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(amplitude: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let d = (i as f64 - len as f64 / 2.0) / 4.0;
                amplitude * (-0.5 * d * d).exp()
            })
            .collect()
    }

    fn noisy(template: &[f64], level: f64, state: &mut u64) -> Vec<f64> {
        template
            .iter()
            .map(|&t| {
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                let u = (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                t + level * u * 3.46
            })
            .collect()
    }

    #[test]
    fn converges_to_clean_template() {
        let template = beat(1.0, 48);
        let mut f = Aicf::new(48, 0.1);
        let mut state = 7u64;
        for _ in 0..200 {
            f.process(&noisy(&template, 0.5, &mut state));
        }
        let est = f.estimate();
        let mse: f64 = est
            .iter()
            .zip(&template)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 48.0;
        // Steady-state LMS residual ≈ mu/(2-mu) · noise power ≈ 0.013.
        assert!(mse < 0.02, "mse {mse}");
    }

    #[test]
    fn tracks_amplitude_drift_better_than_ea() {
        // Amplitude ramps 1.0 -> 2.0 over 200 beats; EA averages it
        // away, AICF follows.
        let len = 48;
        let mut f = Aicf::new(len, 0.15);
        let mut ea_sum = vec![0.0; len];
        let mut state = 3u64;
        let n = 200;
        let mut last_aicf = Vec::new();
        for k in 0..n {
            let amp = 1.0 + k as f64 / n as f64;
            let x = noisy(&beat(amp, len), 0.2, &mut state);
            last_aicf = f.process(&x);
            for (s, &v) in ea_sum.iter_mut().zip(&x) {
                *s += v;
            }
        }
        let final_template = beat(2.0, len);
        let err = |est: &[f64]| {
            est.iter()
                .zip(&final_template)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / len as f64
        };
        let ea_est: Vec<f64> = ea_sum.iter().map(|&s| s / n as f64).collect();
        assert!(
            err(&last_aicf) < 0.25 * err(&ea_est),
            "aicf {} vs ea {}",
            err(&last_aicf),
            err(&ea_est)
        );
    }

    #[test]
    fn first_beat_initializes() {
        let mut f = Aicf::new(8, 0.05);
        assert!(f.is_empty());
        let x = vec![1.0; 8];
        let y = f.process(&x);
        assert_eq!(y, x);
        assert_eq!(f.beats_seen(), 1);
    }

    #[test]
    #[should_panic(expected = "mu must be")]
    fn invalid_mu_panics() {
        let _ = Aicf::new(8, 0.0);
    }

    #[test]
    fn smaller_mu_means_smoother_estimate() {
        let template = beat(1.0, 32);
        let mut fast = Aicf::new(32, 0.5);
        let mut slow = Aicf::new(32, 0.05);
        let mut state = 11u64;
        let mut fast_var = 0.0;
        let mut slow_var = 0.0;
        // Warm up.
        for _ in 0..100 {
            let x = noisy(&template, 0.5, &mut state);
            fast.process(&x);
            slow.process(&x);
        }
        for _ in 0..100 {
            let x = noisy(&template, 0.5, &mut state);
            let fe = fast.process(&x);
            let se = slow.process(&x);
            fast_var += fe
                .iter()
                .zip(&template)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            slow_var += se
                .iter()
                .zip(&template)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        assert!(slow_var < fast_var, "slow {slow_var} fast {fast_var}");
    }
}
