//! # wbsn-multimodal
//!
//! Multi-modal cardiac parameter estimation (Section IV-C of the
//! DAC'14 paper): combining ECG with a PPG channel to estimate
//! parameters that cannot be measured directly on a wearable.
//!
//! * [`pat`] — pulse arrival time: R peak → PPG pulse foot (tangent
//!   intersection method), and the PAT → PWV → blood-pressure
//!   surrogate chain (Gesche et al., reference \[20\]).
//! * [`ea`] — ensemble averaging time-locked to the ECG R peaks:
//!   strong denoising, but beat-to-beat variation is lost (the paper's
//!   stated drawback).
//! * [`aicf`] — the adaptive impulse-correlated filter of Laguna et
//!   al. (reference \[22\]): an LMS filter whose reference input is the
//!   R-peak impulse train; tracks dynamic changes EA cannot.

// Every public item carries documentation; rustdoc runs with
// `-D warnings` in CI, so a gap fails the build.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aicf;
pub mod ea;
pub mod pat;

pub use aicf::Aicf;
pub use ea::EnsembleAverager;
pub use pat::{BpCalibration, BpEstimator, PatDetector};

/// Errors from multi-modal estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum MultimodalError {
    /// Parameter outside its valid range.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Explanation.
        detail: String,
    },
    /// Not enough data to calibrate/estimate.
    InsufficientData {
        /// Explanation.
        detail: String,
    },
}

impl core::fmt::Display for MultimodalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MultimodalError::InvalidParameter { what, detail } => {
                write!(f, "invalid parameter {what}: {detail}")
            }
            MultimodalError::InsufficientData { detail } => {
                write!(f, "insufficient data: {detail}")
            }
        }
    }
}

impl std::error::Error for MultimodalError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, MultimodalError>;
