//! Pulse arrival time, pulse wave velocity and blood-pressure
//! estimation.
//!
//! "The pulse arrival time (PAT), calculated using ECG and a simple
//! and inexpensive photoplethysmograph (PPG) finger probe, can be used
//! to estimate the pulse wave velocity (PWV), which is a surrogate
//! marker for arterial stiffness and BP" — Section IV-C. The pulse
//! foot is located with the intersecting-tangent method (baseline ∩
//! maximum-upslope tangent), the standard choice for PAT work.

use crate::{MultimodalError, Result};

/// Per-beat PAT measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatMeasurement {
    /// R-peak time, seconds.
    pub r_time_s: f64,
    /// Detected pulse-foot time, seconds.
    pub foot_time_s: f64,
    /// Pulse arrival time, seconds.
    pub pat_s: f64,
}

/// PAT detector configuration + implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatDetector {
    /// PPG sampling rate, Hz.
    pub fs_hz: f64,
    /// Search window after the R peak: start, seconds.
    pub search_start_s: f64,
    /// Search window after the R peak: end, seconds.
    pub search_end_s: f64,
}

impl Default for PatDetector {
    fn default() -> Self {
        PatDetector {
            fs_hz: 250.0,
            search_start_s: 0.05,
            search_end_s: 0.55,
        }
    }
}

impl PatDetector {
    /// Measures PAT for each R peak (sample indices into the ECG/PPG
    /// common timebase). Beats whose search window leaves the record
    /// are skipped.
    pub fn measure(&self, ppg: &[f64], r_peaks: &[usize]) -> Vec<PatMeasurement> {
        let mut out = Vec::new();
        for &r in r_peaks {
            let lo = r + (self.search_start_s * self.fs_hz) as usize;
            let hi = r + (self.search_end_s * self.fs_hz) as usize;
            if hi + 1 >= ppg.len() {
                continue;
            }
            let Some(foot) = self.pulse_foot(ppg, lo, hi) else {
                continue;
            };
            let r_t = r as f64 / self.fs_hz;
            out.push(PatMeasurement {
                r_time_s: r_t,
                foot_time_s: foot,
                pat_s: foot - r_t,
            });
        }
        out
    }

    /// Intersecting-tangent foot location within `[lo, hi]`:
    /// the tangent at the maximum-upslope point intersected with the
    /// horizontal through the preceding minimum. The window is smoothed
    /// with a short moving average first so measurement noise cannot
    /// masquerade as the upslope.
    fn pulse_foot(&self, ppg: &[f64], lo: usize, hi: usize) -> Option<f64> {
        // 7-sample centered moving average over the search window.
        let half = 3usize;
        let sm = |i: usize| -> f64 {
            let a = i.saturating_sub(half);
            let b = (i + half).min(ppg.len() - 1);
            ppg[a..=b].iter().sum::<f64>() / (b - a + 1) as f64
        };
        // Maximum smoothed slope over a 2-sample span.
        let mut m_idx = lo + 2;
        let mut m_slope = f64::MIN;
        for i in lo + 2..=hi {
            let s = (sm(i) - sm(i - 2)) / 2.0;
            if s > m_slope {
                m_slope = s;
                m_idx = i - 1;
            }
        }
        if m_slope <= 0.0 {
            return None;
        }
        // Baseline: smoothed minimum between window start and the
        // upslope point.
        let mut b_val = sm(lo);
        for i in lo..=m_idx {
            b_val = b_val.min(sm(i));
        }
        // Tangent at m_idx: y = sm(m) + slope·(t − t_m); intersect y = b_val.
        let t_m = m_idx as f64 / self.fs_hz;
        let slope_per_s = m_slope * self.fs_hz;
        Some(t_m - (sm(m_idx) - b_val) / slope_per_s)
    }
}

/// Pulse-wave velocity from PAT over a known path length (the paper's
/// surrogate chain). PEP (pre-ejection period) is treated as a fixed
/// offset.
pub fn pwv_m_per_s(pat_s: f64, path_m: f64, pep_s: f64) -> f64 {
    let ptt = (pat_s - pep_s).max(1e-3);
    path_m / ptt
}

/// Linear BP ∼ 1/PAT calibration (two-parameter, per Gesche et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpCalibration {
    /// Intercept, mmHg.
    pub a: f64,
    /// Slope on 1/PAT, mmHg·s.
    pub b: f64,
}

/// Calibrated BP estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpEstimator {
    cal: BpCalibration,
}

impl BpEstimator {
    /// Least-squares calibration of `bp = a + b / pat` from paired
    /// reference measurements (e.g. an occasional cuff reading).
    ///
    /// # Errors
    ///
    /// Fails with fewer than 2 pairs or degenerate (constant) PAT.
    pub fn calibrate(pat_s: &[f64], bp_mmhg: &[f64]) -> Result<Self> {
        if pat_s.len() != bp_mmhg.len() || pat_s.len() < 2 {
            return Err(MultimodalError::InsufficientData {
                detail: format!(
                    "need ≥2 paired readings, got {}",
                    pat_s.len().min(bp_mmhg.len())
                ),
            });
        }
        let x: Vec<f64> = pat_s.iter().map(|&p| 1.0 / p.max(1e-3)).collect();
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = bp_mmhg.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (xi, yi) in x.iter().zip(bp_mmhg) {
            sxx += (xi - mx) * (xi - mx);
            sxy += (xi - mx) * (yi - my);
        }
        if sxx < 1e-12 {
            return Err(MultimodalError::InsufficientData {
                detail: "PAT has no variation; cannot calibrate".into(),
            });
        }
        let b = sxy / sxx;
        let a = my - b * mx;
        Ok(BpEstimator {
            cal: BpCalibration { a, b },
        })
    }

    /// The fitted calibration.
    pub fn calibration(&self) -> BpCalibration {
        self.cal
    }

    /// Estimates BP (mmHg) from a PAT measurement.
    pub fn estimate(&self, pat_s: f64) -> f64 {
        self.cal.a + self.cal.b / pat_s.max(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic PPG: one pulse with a clean foot at `foot_s`.
    fn ppg_with_foot(n: usize, fs: f64, foot_s: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / fs - foot_s;
                if t <= 0.0 {
                    0.0
                } else {
                    // Smooth sigmoid-ish upstroke then decay.
                    let up = 1.0 - (-t / 0.03).exp();
                    let down = (-t / 0.35).exp();
                    up * down * 2.0
                }
            })
            .collect()
    }

    #[test]
    fn foot_detection_is_accurate() {
        let fs = 250.0;
        let foot_truth = 0.80;
        let ppg = ppg_with_foot(500, fs, foot_truth);
        let det = PatDetector::default();
        let r = (0.60 * fs) as usize; // R peak 200 ms before the foot
        let m = det.measure(&ppg, &[r]);
        assert_eq!(m.len(), 1);
        assert!(
            (m[0].foot_time_s - foot_truth).abs() < 0.02,
            "foot at {} want {foot_truth}",
            m[0].foot_time_s
        );
        assert!((m[0].pat_s - 0.20).abs() < 0.02, "pat {}", m[0].pat_s);
    }

    #[test]
    fn beats_near_record_end_are_skipped() {
        let fs = 250.0;
        let ppg = ppg_with_foot(300, fs, 0.8);
        let det = PatDetector::default();
        let m = det.measure(&ppg, &[(1.1 * fs) as usize]);
        assert!(m.is_empty());
    }

    #[test]
    fn pwv_is_inverse_in_ptt() {
        let v1 = pwv_m_per_s(0.25, 1.0, 0.05);
        let v2 = pwv_m_per_s(0.45, 1.0, 0.05);
        assert!(v1 > v2);
        assert!((v1 - 5.0).abs() < 1e-9); // 1 m / 0.2 s
    }

    #[test]
    fn bp_calibration_recovers_linear_model() {
        // Ground truth: bp = 40 + 20 / pat.
        let pats = [0.20, 0.22, 0.25, 0.28, 0.32];
        let bps: Vec<f64> = pats.iter().map(|&p| 40.0 + 20.0 / p).collect();
        let est = BpEstimator::calibrate(&pats, &bps).unwrap();
        assert!((est.calibration().a - 40.0).abs() < 1e-6);
        assert!((est.calibration().b - 20.0).abs() < 1e-6);
        assert!((est.estimate(0.24) - (40.0 + 20.0 / 0.24)).abs() < 1e-6);
    }

    #[test]
    fn calibration_rejects_degenerate_inputs() {
        assert!(BpEstimator::calibrate(&[0.2], &[120.0]).is_err());
        assert!(BpEstimator::calibrate(&[0.2, 0.2, 0.2], &[120.0, 121.0, 119.0]).is_err());
        assert!(BpEstimator::calibrate(&[0.2, 0.3], &[120.0]).is_err());
    }

    #[test]
    fn flat_ppg_yields_no_measurement() {
        let det = PatDetector::default();
        let ppg = vec![1.0; 500];
        let m = det.measure(&ppg, &[50]);
        assert!(m.is_empty());
    }
}
