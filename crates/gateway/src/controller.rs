//! Adaptive link control: measured link health → CR directives.
//!
//! The node picks its compression ratio blind; only the gateway sees
//! what the channel actually did to the stream. The [`LinkController`]
//! closes that gap: per downlink pump it observes the session's mean
//! reconstruction PRD and message loss rate, and walks the node up and
//! down a configured **CR ladder** — stepping *down* (spending more
//! measurements per window) when the link degrades or quality nears
//! the diagnostic bar, stepping back *up* (recovering battery life)
//! once the channel heals and quality has headroom. Transitions are
//! dwell-gated with the same discipline as the node's power governor:
//! after every directive the controller holds for a configured number
//! of pumps, so a directive's effect (a re-announced handshake, a
//! refilled pipeline) is actually *measured* before the next move —
//! no flapping on transient loss bursts.
//!
//! The controller is pure decision logic: it never touches the wire.
//! The [`Gateway`](crate::gateway::Gateway) owns one per session
//! (when [`GatewayConfig::controller`](crate::gateway::GatewayConfig)
//! is set), feeds it observations at pump time, and turns its verdicts
//! into [`DirectiveAction::SetCr`] downlink frames.

use wbsn_core::link::DirectiveAction;

/// Policy knobs of the adaptive CR controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// CR rungs in percent, ascending (more compression → fewer bytes
    /// → longer battery, at higher PRD). The controller only ever
    /// commands values from this ladder.
    pub cr_ladder: Vec<f64>,
    /// Diagnostic quality bar: mean clean-window PRD above this forces
    /// a step down (percent).
    pub prd_target: f64,
    /// Step up only while mean PRD is at or below this (percent) —
    /// the headroom that absorbs the quality cost of the next rung.
    pub step_up_prd_max: f64,
    /// Message loss rate above which the link counts as degraded and
    /// the controller steps down (fraction, 0–1).
    pub loss_step_down: f64,
    /// Loss rate at or below which the link counts as healed and a
    /// step up is allowed (fraction, 0–1).
    pub loss_step_up: f64,
    /// Pumps to hold after every directive before deciding again.
    pub dwell_pumps: u32,
}

impl Default for ControllerConfig {
    /// Ladder and thresholds measured on this repo's own pipeline
    /// (window 512, clean channel, default gateway solver): 45% CR
    /// reconstructs at ≈3.9% mean PRD, 50% at ≈6.1%, 54% at ≈7.9% —
    /// the top rung sits just inside the 9% "very good" bar, the
    /// bottom rung keeps diagnostic margin even when the link is
    /// eating windows. (CR ≥55% crosses 9% mean PRD on this
    /// pipeline, so it is not a usable rung.)
    fn default() -> Self {
        ControllerConfig {
            cr_ladder: vec![45.0, 50.0, 54.0],
            prd_target: 9.0,
            step_up_prd_max: 6.5,
            loss_step_down: 0.02,
            loss_step_up: 0.005,
            dwell_pumps: 3,
        }
    }
}

/// Why the controller issued (or withheld) a directive, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlDecision {
    /// Link degraded or quality at the bar: commanded one rung down.
    SteppedDown,
    /// Link healed with quality headroom: commanded one rung up.
    SteppedUp,
    /// Inside the dwell window or nothing to change.
    Hold,
}

/// Smoothing factor of the controller's observation memories: each
/// pump with a measurement moves the decayed value halfway toward it.
/// Per-pump observations are shot noise — messages are coarse (one CS
/// window each), so the instantaneous loss rate is usually 0 or 1,
/// and the per-pump mean PRD is typically a *single* window, whose
/// PRD swings by several points window to window. The exponential
/// memories turn both into usable signals: one lost window pins the
/// controller down for several pumps (a step back up needs ≈7
/// loss-free pumps to decay from 0.5 under the default
/// `loss_step_up`), and one outlier window cannot trip the quality
/// bar on its own.
const EWMA_ALPHA: f64 = 0.5;

fn ewma(memory: &mut Option<f64>, sample: Option<f64>) {
    if let Some(s) = sample {
        *memory = Some(match *memory {
            Some(prev) => prev + EWMA_ALPHA * (s - prev),
            None => s,
        });
    }
}

/// Per-session adaptive CR state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct LinkController {
    cfg: ControllerConfig,
    pumps_since_change: u32,
    directives: u64,
    loss_ewma: Option<f64>,
    prd_ewma: Option<f64>,
}

impl LinkController {
    /// Controller with the given policy. An empty ladder is tolerated
    /// (the controller simply never moves), so construction cannot
    /// fail mid-pump.
    pub fn new(cfg: ControllerConfig) -> Self {
        LinkController {
            cfg,
            // Born dwell-elapsed: the first observation may act.
            pumps_since_change: u32::MAX,
            directives: 0,
            loss_ewma: None,
            prd_ewma: None,
        }
    }

    /// Directives issued so far.
    pub fn directives(&self) -> u64 {
        self.directives
    }

    /// Ladder index whose CR is nearest to `cr_percent` — the
    /// controller re-derives its rung from the *installed handshake*
    /// every pump, so a node reboot (which re-announces the configured
    /// CR) or a lost directive can never desynchronize them.
    fn rung_of(&self, cr_percent: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &cr) in self.cfg.cr_ladder.iter().enumerate() {
            let d = (cr - cr_percent).abs();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }

    /// The decayed loss rate the decisions run on (`None` until the
    /// first pump that actually moved messages).
    pub fn loss_memory(&self) -> Option<f64> {
        self.loss_ewma
    }

    /// The decayed mean PRD the decisions run on (`None` until the
    /// first pump that reconstructed a window).
    pub fn prd_memory(&self) -> Option<f64> {
        self.prd_ewma
    }

    /// One pump's observation: the session's current CR (from its
    /// installed handshake), the mean clean-window PRD since the last
    /// pump (`None` when no window reconstructed), and the message
    /// loss rate since the last pump (`None` when no messages moved).
    /// Both observations are folded into exponential memories
    /// (`EWMA_ALPHA`) before thresholding, so single lost windows
    /// and single outlier reconstructions register as sustained
    /// evidence rather than one-pump blips. Returns the directive to
    /// issue, if any.
    pub fn observe(
        &mut self,
        cr_percent: f64,
        mean_prd: Option<f64>,
        loss_rate: Option<f64>,
    ) -> Option<DirectiveAction> {
        ewma(&mut self.loss_ewma, loss_rate);
        ewma(&mut self.prd_ewma, mean_prd);
        self.pumps_since_change = self.pumps_since_change.saturating_add(1);
        if self.pumps_since_change <= self.cfg.dwell_pumps {
            return None;
        }
        let rung = self.rung_of(cr_percent)?;
        let (loss, prd) = (self.loss_ewma, self.prd_ewma);
        let degraded = loss.is_some_and(|l| l > self.cfg.loss_step_down)
            || prd.is_some_and(|p| p > self.cfg.prd_target);
        let healed = loss.is_none_or(|l| l <= self.cfg.loss_step_up)
            && prd.is_some_and(|p| p <= self.cfg.step_up_prd_max);
        let target = if degraded {
            rung.checked_sub(1)?
        } else if healed && rung + 1 < self.cfg.cr_ladder.len() {
            rung + 1
        } else {
            return None;
        };
        let cr = *self.cfg.cr_ladder.get(target)?;
        self.pumps_since_change = 0;
        self.directives += 1;
        // cr_x10 is exact for ladder values specified to one decimal.
        Some(DirectiveAction::SetCr {
            cr_x10: (cr * 10.0).round() as u16,
        })
    }

    /// What the last call to [`observe`](Self::observe) would decide
    /// for the given inputs *without* mutating state — used by tests
    /// and reports to explain the policy.
    pub fn classify(&self, mean_prd: Option<f64>, loss_rate: Option<f64>) -> ControlDecision {
        if self.pumps_since_change < self.cfg.dwell_pumps {
            return ControlDecision::Hold;
        }
        // The same memories observe() would act on, without committing
        // the updates.
        let mut loss = self.loss_ewma;
        ewma(&mut loss, loss_rate);
        let mut prd = self.prd_ewma;
        ewma(&mut prd, mean_prd);
        if loss.is_some_and(|l| l > self.cfg.loss_step_down)
            || prd.is_some_and(|p| p > self.cfg.prd_target)
        {
            ControlDecision::SteppedDown
        } else if loss.is_none_or(|l| l <= self.cfg.loss_step_up)
            && prd.is_some_and(|p| p <= self.cfg.step_up_prd_max)
        {
            ControlDecision::SteppedUp
        } else {
            ControlDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr_of(action: DirectiveAction) -> f64 {
        match action {
            DirectiveAction::SetCr { cr_x10 } => cr_x10 as f64 / 10.0,
            other => panic!("expected SetCr, got {other:?}"),
        }
    }

    #[test]
    fn degradation_steps_down_heal_steps_back_up() {
        let cfg = ControllerConfig::default();
        let mut c = LinkController::new(cfg.clone());
        // Clean link at the middle rung with headroom: steps up.
        let up = c.observe(50.0, Some(6.1), Some(0.0)).unwrap();
        assert_eq!(cr_of(up), 54.0);
        // Dwell holds even under loss...
        for _ in 0..cfg.dwell_pumps {
            assert!(c.observe(54.0, Some(7.9), Some(0.06)).is_none());
        }
        // ...then the degraded link steps down one rung at a time.
        let down = c.observe(54.0, Some(7.9), Some(0.06)).unwrap();
        assert_eq!(cr_of(down), 50.0);
        for _ in 0..cfg.dwell_pumps {
            assert!(c.observe(50.0, Some(6.1), Some(0.06)).is_none());
        }
        let down = c.observe(50.0, Some(6.1), Some(0.06)).unwrap();
        assert_eq!(cr_of(down), 45.0);
        // At the bottom rung, degradation has nowhere to go.
        for _ in 0..cfg.dwell_pumps {
            c.observe(45.0, Some(3.9), Some(0.06));
        }
        assert!(c.observe(45.0, Some(3.9), Some(0.06)).is_none());
        assert_eq!(c.directives(), 3);
    }

    #[test]
    fn quality_at_the_bar_steps_down_even_on_a_clean_channel() {
        let mut c = LinkController::new(ControllerConfig::default());
        let down = c.observe(54.0, Some(9.4), Some(0.0)).unwrap();
        assert_eq!(cr_of(down), 50.0);
    }

    #[test]
    fn one_lost_window_pins_the_controller_until_a_sustained_clean_stretch() {
        let mut c = LinkController::new(ControllerConfig::default());
        // Messages are whole CS windows, so a pump that lost its one
        // message observes loss 1.0. At the bottom rung there is no
        // further down, but the memory is now saturated.
        assert!(c.observe(45.0, Some(3.9), Some(1.0)).is_none());
        assert_eq!(c.loss_memory(), Some(1.0));
        // A single clean pump halves the memory — still far above the
        // heal bar, so no step up on a one-pump blip.
        assert!(c.observe(45.0, Some(3.9), Some(0.0)).is_none());
        assert_eq!(c.loss_memory(), Some(0.5));
        // A genuinely sustained clean stretch decays it through
        // loss_step_up and releases the step up.
        let mut stepped = 0;
        for _ in 0..12 {
            if c.observe(45.0, Some(3.9), Some(0.0)).is_some() {
                stepped += 1;
                break;
            }
        }
        assert_eq!(stepped, 1, "memory must eventually decay and step up");
    }

    #[test]
    fn no_observations_hold_and_an_empty_ladder_never_moves() {
        let mut c = LinkController::new(ControllerConfig::default());
        // Loss unknown counts as healed, but without a PRD measurement
        // there is no evidence of headroom: hold.
        assert!(c.observe(50.0, None, None).is_none());
        let mut empty = LinkController::new(ControllerConfig {
            cr_ladder: Vec::new(),
            ..ControllerConfig::default()
        });
        assert!(empty.observe(50.0, Some(20.0), Some(0.5)).is_none());
    }
}
