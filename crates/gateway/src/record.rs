//! The recording tap: a per-session stream of everything the gateway
//! decodes, for an external recorder to persist.
//!
//! When [`GatewayConfig::tap`](crate::GatewayConfig) is on, the
//! gateway appends one [`TapItem`] per decoded observation —
//! handshakes, rhythm events, fiducial sets, CS windows (measurements,
//! reconstruction, PRD), loss and recovery — in processing order,
//! which for a single session is deterministic at any worker count
//! (each session lives on exactly one shard). [`Gateway::drain_tap`]
//! and [`ShardedGateway::drain_tap`] hand the buffered items over
//! grouped by session in ascending session order, so the merged
//! stream is byte-stable across runs and worker counts.
//!
//! The tap is pull-based and bounded by drain frequency: the recorder
//! drains once per pump, so gateway memory stays O(epoch) regardless
//! of recording length. With the flag off (the default) no item is
//! ever constructed and the gateway's behaviour is byte-identical to
//! a build without this module.
//!
//! [`Gateway::drain_tap`]: crate::Gateway::drain_tap
//! [`ShardedGateway::drain_tap`]: crate::ShardedGateway::drain_tap

use wbsn_core::link::SessionHandshake;
use wbsn_delineation::BeatFiducials;

/// One decoded observation of one session, in processing order.
#[derive(Debug, Clone, PartialEq)]
pub enum TapItem {
    /// A handshake was installed (initial, re-announced, or recovered
    /// from a retransmission).
    Handshake(SessionHandshake),
    /// A rhythm/classification event payload.
    Rhythm {
        /// Uplink message sequence carrying the event.
        msg_seq: u32,
        /// Beats covered by the reporting interval.
        n_beats: u32,
        /// Mean heart rate (bpm ×10 fixed point).
        mean_hr_x10: u16,
        /// AF burden of the interval (%, 0–100).
        af_burden_pct: u8,
        /// Whether the node considers AF active.
        af_active: bool,
    },
    /// A delineated-beats payload.
    Beats {
        /// Uplink message sequence carrying the beats.
        msg_seq: u32,
        /// The fiducial sets.
        beats: Vec<BeatFiducials>,
    },
    /// A CS window arrived. Solved windows carry the reconstruction
    /// (and PRD when a reference covers them); windows skipped by
    /// periodic probing carry the measurements only.
    CsWindow {
        /// Lead index.
        lead: u8,
        /// Window sequence within the lead's CS stream.
        window_seq: u32,
        /// PRD against the attached reference, when scored.
        prd: Option<f64>,
        /// The raw CS measurements.
        measurements: Vec<i16>,
        /// The reconstructed samples (empty for skipped windows).
        samples: Vec<f64>,
    },
    /// The reassembler declared messages lost.
    Lost {
        /// First missing sequence.
        first_seq: u32,
        /// Run length.
        count: u32,
    },
    /// A previously-lost message was recovered by retransmission.
    Recovered {
        /// The recovered sequence.
        msg_seq: u32,
    },
}
