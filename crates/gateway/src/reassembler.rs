//! Per-session packet reassembly: fragments → in-order messages.
//!
//! The link framer splits every payload into MTU-sized fragments; the
//! channel drops, duplicates-in-effect (late held packets) and
//! reorders them. The [`Reassembler`] undoes that: it buffers
//! fragments per message, tolerates duplicates and out-of-order
//! arrival, releases completed messages **strictly in sequence
//! order**, and — once the reorder window is exhausted — declares
//! unfillable gaps as [`LinkEvent::Lost`] instead of stalling the
//! stream. Structural violations (conflicting fragments, inconsistent
//! headers) surface as typed [`LinkError`]s.
//!
//! With the ACK/NACK downlink in play a declared loss is no longer
//! final: the node retransmits NACKed messages, which by then sit
//! *behind* the in-order cursor. A bounded **recovery window**
//! ([`Reassembler::with_windows`]) keeps the newest lost sequence
//! numbers eligible, surfacing their late arrivals as
//! [`LinkEvent::Recovered`] instead of counting them stale. It is off
//! by default, so feedback-free deployments behave exactly as before.

use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use wbsn_core::link::{LinkError, LinkPacket};
use wbsn_core::WbsnError;

/// One reassembly outcome, in release order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// A message was fully reassembled.
    Message {
        /// Message sequence number.
        msg_seq: u32,
        /// Kind byte carried by its packets.
        kind: u8,
        /// Reassembled message bytes.
        bytes: Vec<u8>,
    },
    /// A run of consecutive messages proven lost: either partially
    /// received messages whose reorder window expired, or sequence
    /// numbers never seen at all. Reported as a range so a large
    /// sequence jump (a gateway restart, a long outage) costs one
    /// event, not one per missing message.
    Lost {
        /// First lost sequence number of the run.
        first_seq: u32,
        /// Number of consecutive lost messages.
        count: u32,
    },
    /// A previously [`Lost`](LinkEvent::Lost) message whose
    /// retransmission arrived inside the recovery window and
    /// reassembled completely. Recovered messages are out of sequence
    /// order by construction — the in-order stream already moved past
    /// them — so consumers must treat them as fill-ins, not appends.
    Recovered {
        /// Message sequence number.
        msg_seq: u32,
        /// Kind byte carried by its packets.
        kind: u8,
        /// Reassembled message bytes.
        bytes: Vec<u8>,
    },
}

/// Reassembly counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Packets accepted.
    pub packets: u64,
    /// Messages released complete.
    pub messages: u64,
    /// Exact duplicate fragments ignored.
    pub duplicates: u64,
    /// Packets for already-released (or already-lost) messages.
    pub stale: u64,
    /// Messages declared lost.
    pub lost: u64,
    /// Lost messages later recovered from retransmissions.
    pub recovered: u64,
}

#[derive(Debug)]
struct Partial {
    kind: u8,
    frag_count: u16,
    received: u16,
    frags: Vec<Option<Vec<u8>>>,
}

impl Partial {
    fn new(kind: u8, frag_count: u16) -> Self {
        Partial {
            kind,
            frag_count,
            received: 0,
            frags: vec![None; frag_count as usize],
        }
    }

    fn complete(&self) -> bool {
        self.received == self.frag_count
    }

    fn into_bytes(self) -> Vec<u8> {
        // Only called once `complete()` holds; a missing fragment
        // would contribute nothing rather than abort the gateway.
        let mut out = Vec::new();
        for f in self.frags.into_iter().flatten() {
            out.extend(f);
        }
        out
    }
}

/// Stores one fragment into a partial reassembly. `Ok(true)` means the
/// fragment was new, `Ok(false)` an exact duplicate; mismatched
/// headers or differing bodies for the same slot are conflicts.
fn store_fragment(partial: &mut Partial, pkt: &LinkPacket) -> Result<bool> {
    if partial.kind != pkt.kind || partial.frag_count != pkt.frag_count {
        return Err(LinkError::FragmentConflict {
            msg_seq: pkt.msg_seq,
            frag_index: pkt.frag_index,
        }
        .into());
    }
    let slot = &mut partial.frags[pkt.frag_index as usize];
    match slot {
        Some(existing) if *existing == pkt.body => Ok(false),
        Some(_) => Err(LinkError::FragmentConflict {
            msg_seq: pkt.msg_seq,
            frag_index: pkt.frag_index,
        }
        .into()),
        None => {
            *slot = Some(pkt.body.clone());
            partial.received += 1;
            Ok(true)
        }
    }
}

/// Default reorder window: how many message sequence numbers may be in
/// flight before the oldest incomplete one is declared lost.
pub const DEFAULT_REORDER_WINDOW: u32 = 64;

/// Per-session fragment reassembly with in-order release, gap
/// detection, and (optionally) late recovery of declared-lost
/// messages from retransmissions.
#[derive(Debug)]
pub struct Reassembler {
    window: u32,
    /// Recovery window: how many of the most recently lost sequence
    /// numbers remain eligible for late recovery. Zero disables the
    /// mechanism entirely (every late packet is stale).
    recovery: u32,
    next_seq: u32,
    pending: BTreeMap<u32, Partial>,
    /// Lost sequence numbers still eligible for recovery, oldest
    /// evicted; bounded by `recovery`.
    recoverable: BTreeSet<u32>,
    /// Partial reassemblies of retransmitted lost messages; keys are
    /// always a subset of `recoverable`.
    late: BTreeMap<u32, Partial>,
    stats: ReassemblyStats,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new()
    }
}

impl Reassembler {
    /// Reassembler with the default reorder window
    /// ([`DEFAULT_REORDER_WINDOW`] messages).
    pub fn new() -> Self {
        Reassembler {
            window: DEFAULT_REORDER_WINDOW,
            recovery: 0,
            next_seq: 0,
            pending: BTreeMap::new(),
            recoverable: BTreeSet::new(),
            late: BTreeMap::new(),
            stats: ReassemblyStats::default(),
        }
    }

    /// Reassembler with an explicit reorder window (≥ 1).
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for a zero window.
    pub fn with_window(window: u32) -> Result<Self> {
        Reassembler::with_windows(window, 0)
    }

    /// Reassembler with an explicit reorder window (≥ 1) and a
    /// recovery window: up to `recovery` of the most recently
    /// declared-lost sequence numbers stay eligible for late recovery
    /// when their retransmissions arrive. Zero (the default) disables
    /// recovery — every late packet counts as stale, exactly the
    /// pre-downlink behavior.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for a zero reorder window.
    pub fn with_windows(window: u32, recovery: u32) -> Result<Self> {
        if window == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "reorder_window",
                detail: "must be at least 1 message".into(),
            });
        }
        Ok(Reassembler {
            window,
            recovery,
            ..Reassembler::new()
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Sequence number of the next in-order message to release.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Messages currently buffered incomplete or out of order.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accepts one (already CRC-verified) packet, appending whatever
    /// messages become releasable — and whatever gaps become certain —
    /// to `out` in sequence order.
    ///
    /// # Errors
    ///
    /// [`LinkError::BadHeader`] / [`LinkError::FragmentConflict`]
    /// (wrapped in [`WbsnError::Link`]) for structurally inconsistent
    /// packets; the reassembler state is unchanged by a rejected
    /// packet.
    pub fn accept(&mut self, pkt: &LinkPacket, out: &mut Vec<LinkEvent>) -> Result<()> {
        if pkt.frag_count == 0 || pkt.frag_index >= pkt.frag_count {
            return Err(LinkError::BadHeader {
                detail: format!("fragment {} of {}", pkt.frag_index, pkt.frag_count),
            }
            .into());
        }
        let seq = pkt.msg_seq;
        if seq < self.next_seq {
            return self.accept_late(pkt, out);
        }
        let partial = self
            .pending
            .entry(seq)
            .or_insert_with(|| Partial::new(pkt.kind, pkt.frag_count));
        if !store_fragment(partial, pkt)? {
            self.stats.duplicates += 1;
            return Ok(());
        }
        self.stats.packets += 1;
        // Gap detection: activity at `seq` proves every message below
        // `seq - window + 1` has had its whole reorder window to
        // arrive; incomplete ones are lost. (u64 arithmetic: the
        // framer never wraps msg_seq, but `next_seq + window` may not
        // overflow near the top of the sequence space either.)
        if (self.next_seq as u64) + (self.window as u64) <= seq as u64 {
            let target = (seq as u64 - self.window as u64 + 1) as u32;
            self.advance_to(target, out);
        }
        self.release_ready(out);
        Ok(())
    }

    /// A packet whose sequence number the in-order stream already
    /// passed: a retransmission of a declared-lost message (recover it
    /// if still inside the recovery window) or a mere straggler
    /// (stale).
    fn accept_late(&mut self, pkt: &LinkPacket, out: &mut Vec<LinkEvent>) -> Result<()> {
        let seq = pkt.msg_seq;
        if !self.recoverable.contains(&seq) {
            self.stats.stale += 1;
            return Ok(());
        }
        let partial = self
            .late
            .entry(seq)
            .or_insert_with(|| Partial::new(pkt.kind, pkt.frag_count));
        if !store_fragment(partial, pkt)? {
            self.stats.duplicates += 1;
            return Ok(());
        }
        self.stats.packets += 1;
        if self.late.get(&seq).is_some_and(Partial::complete) {
            if let Some(p) = self.late.remove(&seq) {
                self.recoverable.remove(&seq);
                self.stats.recovered += 1;
                out.push(LinkEvent::Recovered {
                    msg_seq: seq,
                    kind: p.kind,
                    bytes: p.into_bytes(),
                });
            }
        }
        Ok(())
    }

    /// Records a lost run as recovery candidates: the newest
    /// `recovery` lost sequence numbers stay eligible, older ones (and
    /// their partial retransmissions) are evicted.
    fn note_lost(&mut self, first_seq: u32, count: u32) {
        if self.recovery == 0 || count == 0 {
            return;
        }
        let end = first_seq as u64 + count as u64; // exclusive
        let start = end - (count.min(self.recovery)) as u64;
        for s in start..end {
            self.recoverable.insert(s as u32);
        }
        while self.recoverable.len() > self.recovery as usize {
            if let Some(oldest) = self.recoverable.pop_first() {
                self.late.remove(&oldest);
            }
        }
    }

    /// End of stream: releases every remaining completed message in
    /// order, declaring the incomplete ones before them lost.
    pub fn flush(&mut self, out: &mut Vec<LinkEvent>) {
        let Some((&last, _)) = self.pending.iter().next_back() else {
            return;
        };
        // Resolve everything below the highest buffered sequence,
        // then the highest itself — `advance_to`'s exclusive target
        // cannot express `last + 1` when a (hostile) wire packet
        // carried msg_seq == u32::MAX, and the gateway must never
        // panic on wire input. After `advance_to(last)` the map holds
        // nothing below `last`, so `pop_last` yields exactly `last`.
        self.advance_to(last, out);
        if let Some((seq, p)) = self.pending.pop_last() {
            if p.complete() {
                self.stats.messages += 1;
                out.push(LinkEvent::Message {
                    msg_seq: seq,
                    kind: p.kind,
                    bytes: p.into_bytes(),
                });
            } else {
                self.stats.lost += 1;
                self.note_lost(seq, 1);
                out.push(LinkEvent::Lost {
                    first_seq: seq,
                    count: 1,
                });
            }
        }
        self.next_seq = last.saturating_add(1);
    }

    /// Resolves every sequence number in `[next_seq, target)` in
    /// order: buffered complete messages release, buffered incomplete
    /// ones and never-seen runs are declared lost — the latter as one
    /// ranged event per run, so the work and the event count are
    /// bounded by the number of *buffered* messages, never by the size
    /// of the sequence jump.
    fn advance_to(&mut self, target: u32, out: &mut Vec<LinkEvent>) {
        while self.next_seq < target {
            match self
                .pending
                .range(self.next_seq..target)
                .next()
                .map(|(&s, _)| s)
            {
                Some(s) => {
                    if s > self.next_seq {
                        let count = s - self.next_seq;
                        self.stats.lost += count as u64;
                        self.note_lost(self.next_seq, count);
                        out.push(LinkEvent::Lost {
                            first_seq: self.next_seq,
                            count,
                        });
                        self.next_seq = s;
                    }
                    if let Some(p) = self.pending.remove(&s) {
                        if p.complete() {
                            self.stats.messages += 1;
                            out.push(LinkEvent::Message {
                                msg_seq: s,
                                kind: p.kind,
                                bytes: p.into_bytes(),
                            });
                        } else {
                            self.stats.lost += 1;
                            self.note_lost(s, 1);
                            out.push(LinkEvent::Lost {
                                first_seq: s,
                                count: 1,
                            });
                        }
                    }
                    self.next_seq = self.next_seq.saturating_add(1);
                }
                None => {
                    let count = target - self.next_seq;
                    self.stats.lost += count as u64;
                    self.note_lost(self.next_seq, count);
                    out.push(LinkEvent::Lost {
                        first_seq: self.next_seq,
                        count,
                    });
                    self.next_seq = target;
                }
            }
        }
    }

    /// Releases the run of consecutive completed messages starting at
    /// `next_seq`.
    fn release_ready(&mut self, out: &mut Vec<LinkEvent>) {
        // Every pending key is >= next_seq, so the first entry is the
        // release candidate; stop at the first gap or incomplete head.
        while let Some(entry) = self.pending.first_entry() {
            if *entry.key() != self.next_seq || !entry.get().complete() {
                break;
            }
            let p = entry.remove();
            self.stats.messages += 1;
            out.push(LinkEvent::Message {
                msg_seq: self.next_seq,
                kind: p.kind,
                bytes: p.into_bytes(),
            });
            self.next_seq = self.next_seq.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_core::link::LinkFramer;

    fn packets_of(framer: &mut LinkFramer, messages: &[&[u8]]) -> Vec<LinkPacket> {
        let mut raw = Vec::new();
        for m in messages {
            framer.frame_message(0x01, m, &mut raw).unwrap();
        }
        raw.iter().map(|b| LinkPacket::decode(b).unwrap()).collect()
    }

    #[test]
    fn in_order_stream_reassembles_identically() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap(); // 7-byte bodies
        let messages: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 20]).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let pkts = packets_of(&mut framer, &refs);
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for p in &pkts {
            r.accept(p, &mut out).unwrap();
        }
        assert_eq!(out.len(), 5);
        for (i, ev) in out.iter().enumerate() {
            let LinkEvent::Message { msg_seq, bytes, .. } = ev else {
                panic!("loss on a perfect link");
            };
            assert_eq!(*msg_seq, i as u32);
            assert_eq!(bytes, &messages[i]);
        }
    }

    #[test]
    fn out_of_order_fragments_release_in_order() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let pkts = packets_of(&mut framer, &[&[1u8; 20], &[2u8; 20]]);
        assert_eq!(pkts.len(), 6);
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        // Deliver message 1 completely first, then message 0 reversed.
        for p in [&pkts[3], &pkts[4], &pkts[5], &pkts[2], &pkts[1]] {
            r.accept(p, &mut out).unwrap();
            assert!(out.is_empty(), "nothing releasable before msg 0 completes");
        }
        r.accept(&pkts[0], &mut out).unwrap();
        // Both messages release at once, in order.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], LinkEvent::Message { msg_seq: 0, .. }));
        assert!(matches!(out[1], LinkEvent::Message { msg_seq: 1, .. }));
    }

    #[test]
    fn duplicates_are_tolerated_conflicts_are_errors() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let pkts = packets_of(&mut framer, &[&[7u8; 20]]);
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        r.accept(&pkts[0], &mut out).unwrap();
        r.accept(&pkts[0], &mut out).unwrap(); // exact duplicate: fine
        assert_eq!(r.stats().duplicates, 1);
        let mut conflicting = pkts[0].clone();
        conflicting.body[0] ^= 0xFF;
        let err = r.accept(&conflicting, &mut out).unwrap_err();
        assert!(matches!(
            err,
            WbsnError::Link(LinkError::FragmentConflict { msg_seq: 0, .. })
        ));
    }

    #[test]
    fn gap_is_declared_once_the_window_passes() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let messages: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 4]).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let pkts = packets_of(&mut framer, &refs); // 1 packet per message
        let mut r = Reassembler::with_window(4).unwrap();
        let mut out = Vec::new();
        // Drop message 2 entirely.
        for (i, p) in pkts.iter().enumerate() {
            if i == 2 {
                continue;
            }
            r.accept(p, &mut out).unwrap();
        }
        // Message 2 was declared lost when message 6 (= 2 + window)
        // arrived; everything else came through in order.
        let lost: Vec<(u32, u32)> = out
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Lost { first_seq, count } => Some((*first_seq, *count)),
                _ => None,
            })
            .collect();
        assert_eq!(lost, vec![(2, 1)]);
        let delivered: Vec<u32> = out
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Message { msg_seq, .. } => Some(*msg_seq),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![0, 1, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(r.stats().lost, 1);
    }

    #[test]
    fn a_giant_sequence_jump_is_one_ranged_loss_not_millions_of_events() {
        // A gateway restart (next_seq back at 0) meeting a long-running
        // node's stream must not allocate one event per missing
        // message.
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let mut raw = Vec::new();
        framer.frame_message(0x01, &[7; 4], &mut raw).unwrap();
        // Simulate the long-running node: same packet, far-future seq.
        let mut pkt = LinkPacket::decode(&raw[0]).unwrap();
        pkt.msg_seq = 10_000_000;
        let mut r = Reassembler::with_window(64).unwrap();
        let mut out = Vec::new();
        r.accept(&pkt, &mut out).unwrap();
        // One ranged loss covering the whole gap; the jumped-to message
        // itself stays buffered awaiting its window.
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            LinkEvent::Lost {
                first_seq: 0,
                count: 9_999_937, // 10_000_000 - 64 + 1
            }
        ));
        assert_eq!(r.stats().lost, 9_999_937);
        assert_eq!(r.next_seq(), 9_999_937);
        assert_eq!(r.pending(), 1);
        // Flush releases the buffered message after one more ranged gap.
        let mut tail = Vec::new();
        r.flush(&mut tail);
        assert!(matches!(
            tail[0],
            LinkEvent::Lost {
                first_seq: 9_999_937,
                count: 63,
            }
        ));
        assert!(matches!(
            tail[1],
            LinkEvent::Message {
                msg_seq: 10_000_000,
                ..
            }
        ));
    }

    #[test]
    fn hostile_max_sequence_number_cannot_panic_the_flush() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let mut raw = Vec::new();
        framer.frame_message(0x01, &[7; 4], &mut raw).unwrap();
        let mut pkt = LinkPacket::decode(&raw[0]).unwrap();
        pkt.msg_seq = u32::MAX;
        let mut r = Reassembler::with_window(4).unwrap();
        let mut out = Vec::new();
        r.accept(&pkt, &mut out).unwrap();
        let mut tail = Vec::new();
        r.flush(&mut tail);
        // The ranged gap below it plus the message itself, no panic.
        assert!(matches!(
            tail.last(),
            Some(LinkEvent::Message {
                msg_seq: u32::MAX,
                ..
            })
        ));
    }

    #[test]
    fn flush_releases_tail_and_declares_gaps() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let pkts = packets_of(&mut framer, &[&[1u8; 4], &[2u8; 4], &[3u8; 4]]);
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        // Only messages 1 and 2 arrive; 0 never does.
        r.accept(&pkts[1], &mut out).unwrap();
        r.accept(&pkts[2], &mut out).unwrap();
        assert!(out.is_empty());
        r.flush(&mut out);
        assert!(matches!(
            out[0],
            LinkEvent::Lost {
                first_seq: 0,
                count: 1
            }
        ));
        assert!(matches!(out[1], LinkEvent::Message { msg_seq: 1, .. }));
        assert!(matches!(out[2], LinkEvent::Message { msg_seq: 2, .. }));
        // A straggler for message 0 after the fact is stale, not an error.
        r.accept(&pkts[0], &mut out).unwrap();
        assert_eq!(r.stats().stale, 1);
    }

    #[test]
    fn a_retransmission_inside_the_recovery_window_is_recovered() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap(); // 7-byte bodies
        let messages: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 20]).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let pkts = packets_of(&mut framer, &refs); // 3 packets per message
        let mut r = Reassembler::with_windows(4, 8).unwrap();
        let mut out = Vec::new();
        // Drop message 2 entirely; the rest arrives in order.
        for p in pkts.iter().filter(|p| p.msg_seq != 2) {
            r.accept(p, &mut out).unwrap();
        }
        assert!(out.iter().any(|e| matches!(
            e,
            LinkEvent::Lost {
                first_seq: 2,
                count: 1
            }
        )));
        // The node answers the NACK: message 2's packets arrive late,
        // themselves out of order.
        out.clear();
        let late: Vec<&LinkPacket> = pkts.iter().filter(|p| p.msg_seq == 2).collect();
        r.accept(late[2], &mut out).unwrap();
        r.accept(late[0], &mut out).unwrap();
        assert!(out.is_empty(), "incomplete retransmission recovers nothing");
        r.accept(late[1], &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let LinkEvent::Recovered { msg_seq, bytes, .. } = &out[0] else {
            panic!("expected a recovery, got {:?}", out[0]);
        };
        assert_eq!(*msg_seq, 2);
        assert_eq!(bytes, &messages[2]);
        assert_eq!(r.stats().recovered, 1);
        assert_eq!(r.stats().stale, 0);
        // A second copy of the same retransmission is stale again: the
        // sequence left the recovery set when it recovered.
        out.clear();
        r.accept(late[0], &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(r.stats().stale, 1);
    }

    #[test]
    fn the_recovery_window_is_bounded_and_evicts_oldest() {
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let messages: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 4]).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let pkts = packets_of(&mut framer, &refs); // 1 packet per message
        let mut r = Reassembler::with_windows(2, 2).unwrap();
        let mut out = Vec::new();
        // Drop messages 3, 7 and 11; recovery window holds only two.
        for p in pkts.iter().filter(|p| ![3, 7, 11].contains(&p.msg_seq)) {
            r.accept(p, &mut out).unwrap();
        }
        out.clear();
        // Message 3's retransmission was evicted by the later losses.
        r.accept(&pkts[3], &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(r.stats().stale, 1);
        // Messages 7 and 11 are still recoverable.
        r.accept(&pkts[7], &mut out).unwrap();
        r.accept(&pkts[11], &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], LinkEvent::Recovered { msg_seq: 7, .. }));
        assert!(matches!(out[1], LinkEvent::Recovered { msg_seq: 11, .. }));
    }

    #[test]
    fn a_giant_loss_run_keeps_recovery_state_bounded() {
        // The recovery set must track the *newest* tail of a ranged
        // loss, never materialize the whole run.
        let mut framer = LinkFramer::with_mtu(1, 30).unwrap();
        let mut raw = Vec::new();
        framer.frame_message(0x01, &[7; 4], &mut raw).unwrap();
        let mut pkt = LinkPacket::decode(&raw[0]).unwrap();
        pkt.msg_seq = 10_000_000;
        let mut r = Reassembler::with_windows(64, 8).unwrap();
        let mut out = Vec::new();
        r.accept(&pkt, &mut out).unwrap();
        // Newest lost seq is 9_999_936; it must be recoverable, seq 0
        // must not be.
        out.clear();
        let mut retx = pkt.clone();
        retx.msg_seq = 9_999_936;
        r.accept(&retx, &mut out).unwrap();
        assert!(matches!(
            out.as_slice(),
            [LinkEvent::Recovered {
                msg_seq: 9_999_936,
                ..
            }]
        ));
        out.clear();
        let mut ancient = pkt.clone();
        ancient.msg_seq = 0;
        r.accept(&ancient, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(r.stats().stale, 1);
    }
}
