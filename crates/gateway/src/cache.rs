//! Shared sensing-matrix cache.
//!
//! Every CS session's handshake names its sensing matrix by value —
//! `(window, measurements, density, seed, lead)` — and fleets are
//! provisioned in bulk, so many sessions (and, in the sharded
//! gateway, many worker threads) keep asking for the *same* Φ. A
//! `SparseTernaryMatrix` for a 256×128 window costs ~1 k RNG draws to
//! build and ~8 kB to hold; regenerating it per session wastes both.
//! [`MatrixCache`] shares one immutable copy per distinct key across
//! every [`Gateway`](crate::Gateway) that holds a handle.
//!
//! Determinism: construction happens *inside* the lock, so however
//! many workers race for a key, exactly one miss builds it and every
//! later lookup hits — [`MatrixCacheStats`] totals are identical for
//! any worker count, which the shard-determinism suite pins.

use crate::Result;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use wbsn_cs::encoder::CsEncoder;

/// Everything that identifies one sensing matrix: the CS geometry
/// from the session handshake plus the lead index (lead `l` senses
/// with `seed + l`; see [`CsEncoder::for_lead`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatrixKey {
    /// Window length `n` in samples.
    pub window: u32,
    /// Measurement count `m`.
    pub measurements: u32,
    /// Non-zeros per sensing-matrix column.
    pub d_per_col: u8,
    /// The session's *base* seed (before the per-lead offset).
    pub seed: u64,
    /// Lead index.
    pub lead: u8,
}

/// Hit/miss counters of one [`MatrixCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the matrix.
    pub misses: u64,
    /// Distinct matrices currently held.
    pub entries: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    matrices: BTreeMap<MatrixKey, Arc<CsEncoder>>,
    hits: u64,
    misses: u64,
}

/// A process-wide cache of per-lead sensing matrices, shared across
/// gateways and across the sharded gateway's workers.
#[derive(Debug, Default)]
pub struct MatrixCache {
    inner: Mutex<CacheInner>,
}

impl MatrixCache {
    /// An empty cache.
    pub fn new() -> Self {
        MatrixCache::default()
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // A poisoned lock means some thread panicked mid-lookup; the
        // map itself only ever holds fully-built immutable matrices,
        // so its contents are still valid — recover instead of
        // propagating the poison.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The matrix for `key`, built through [`CsEncoder::for_lead`] on
    /// first use and shared afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`CsEncoder::for_lead`] rejections (zero or
    /// inconsistent dimensions) without caching anything.
    pub fn get_or_build(&self, key: MatrixKey) -> Result<Arc<CsEncoder>> {
        let mut inner = self.lock();
        if let Some(enc) = inner.matrices.get(&key).map(Arc::clone) {
            inner.hits += 1;
            return Ok(enc);
        }
        let enc = Arc::new(CsEncoder::for_lead(
            key.window as usize,
            key.measurements as usize,
            key.d_per_col as usize,
            key.seed,
            key.lead,
        )?);
        inner.misses += 1;
        inner.matrices.insert(key, Arc::clone(&enc));
        Ok(enc)
    }

    /// Counters so far.
    pub fn stats(&self) -> MatrixCacheStats {
        let inner = self.lock();
        MatrixCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.matrices.len() as u64,
        }
    }

    /// Drops every cached matrix (counters are kept — they describe
    /// lookup history, not current contents).
    pub fn clear(&self) {
        self.lock().matrices.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64, lead: u8) -> MatrixKey {
        MatrixKey {
            window: 256,
            measurements: 128,
            d_per_col: 4,
            seed,
            lead,
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_matrix() {
        let cache = MatrixCache::new();
        let a = cache.get_or_build(key(9, 0)).unwrap();
        let b = cache.get_or_build(key(9, 0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            MatrixCacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn distinct_leads_are_distinct_entries_with_the_for_lead_seed() {
        let cache = MatrixCache::new();
        let l0 = cache.get_or_build(key(9, 0)).unwrap();
        let l1 = cache.get_or_build(key(9, 1)).unwrap();
        assert_eq!(l0.seed(), 9);
        assert_eq!(l1.seed(), 10);
        assert_eq!(cache.stats().entries, 2);
        // Lead 1 of base seed 9 and lead 0 of base seed 10 are the
        // same matrix value but different keys: the cache is keyed by
        // handshake identity, not by derived seed.
        let other = cache.get_or_build(key(10, 0)).unwrap();
        assert_eq!(other.sensing_matrix(), l1.sensing_matrix());
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn invalid_geometry_is_an_error_and_not_cached() {
        let cache = MatrixCache::new();
        let bad = MatrixKey {
            window: 16,
            measurements: 32, // m > n
            d_per_col: 4,
            seed: 1,
            lead: 0,
        };
        assert!(cache.get_or_build(bad).is_err());
        assert_eq!(cache.stats().misses, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_drops_entries_but_keeps_history() {
        let cache = MatrixCache::new();
        cache.get_or_build(key(1, 0)).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 1);
        // Rebuilding after clear is a fresh miss.
        cache.get_or_build(key(1, 0)).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(MatrixCache::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&cache);
                std::thread::spawn(move || c.get_or_build(key(5, 0)).unwrap())
            })
            .collect();
        let built: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(built.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let s = cache.stats();
        assert_eq!(s.misses, 1, "construction under the lock: one miss");
        assert_eq!(s.hits, 3);
    }
}
