//! Sharded base-station gateway: parallel reassembly + decode.
//!
//! One [`Gateway`](crate::Gateway) serializes every session's FISTA
//! solves onto one core; a base station terminating hundreds of
//! uplinks has cores to spare. This module applies the workspace's
//! shard/router/driver split (see `wbsn-core`'s `fleet` module) to
//! the gateway:
//!
//! * [`router`] — [`GatewayRouter`]: a packet's session id (peeked
//!   straight out of the fixed link header) names its worker,
//!   `session % n_workers`, for the whole session lifetime.
//! * [`sharded`] — [`ShardedGateway`]: N worker threads, each running
//!   a full per-session `Gateway` over its share of the sessions,
//!   all sharing one [`MatrixCache`](crate::MatrixCache) so a fleet
//!   provisioned with identical CS geometry builds each Φ once per
//!   process instead of once per worker.
//!
//! Sessions are fully isolated (separate reassemblers, decoders,
//! rhythm state, warm solver state) and every per-session computation
//! is deterministic, so the driver only has to merge worker replies
//! back into the sequential order: ingest results by original batch
//! index, flushes and reports in ascending session-id order, counters
//! by commutative sums. The result is **byte-identical** to a single
//! `Gateway` fed the same packets, for any worker count — pinned by
//! `tests/gateway_shard_determinism.rs`, including lossy/corrupting
//! channel replays (a corrupted session id may route a packet to a
//! "wrong" worker, where the CRC check rejects it exactly as the
//! right one would have).

pub mod router;
pub mod sharded;

pub use router::GatewayRouter;
pub use sharded::ShardedGateway;
