//! Session-to-worker routing.

use crate::Result;
use wbsn_core::WbsnError;

/// Routes sessions to workers: session `s` is served by worker
/// `s % n_workers`, forever. The mapping is stateless — the gateway
/// opens sessions on first contact, so there is no registry to keep
/// in sync — and depends only on the session id, never on arrival
/// order, so every worker count observes the same per-session packet
/// sequences.
#[derive(Debug, Clone, Copy)]
pub struct GatewayRouter {
    n_workers: usize,
}

impl GatewayRouter {
    /// Router over `n_workers` workers (at least 1).
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for zero workers.
    pub fn new(n_workers: usize) -> Result<Self> {
        if n_workers == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "n_workers",
                detail: "must be at least 1".into(),
            });
        }
        Ok(GatewayRouter { n_workers })
    }

    /// Number of workers routed over.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// The worker serving `session`.
    pub fn route(&self, session: u64) -> usize {
        (session % self.n_workers as u64) as usize
    }

    /// The worker for a raw packet: routes by the session id peeked
    /// out of the link header ([`GatewayRouter::peek_session`]). A
    /// packet too short to carry a header goes to worker 0, whose
    /// `Gateway` rejects it with the same typed truncation error any
    /// other worker would.
    pub fn route_packet(&self, raw: &[u8]) -> usize {
        match Self::peek_session(raw) {
            Some(session) => self.route(session),
            None => 0,
        }
    }

    /// Reads the session id out of a raw packet's fixed header
    /// (bytes 1..9, little endian — see `wbsn-core`'s link layer)
    /// without validating anything else. The CRC still guards the
    /// packet: a corrupted id merely routes the packet to a worker
    /// that will CRC-reject it.
    pub fn peek_session(raw: &[u8]) -> Option<u64> {
        let bytes = raw.get(1..9)?;
        let mut id = [0u8; 8];
        id.copy_from_slice(bytes);
        Some(u64::from_le_bytes(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_core::link::LinkFramer;
    use wbsn_core::Payload;

    #[test]
    fn zero_workers_is_rejected() {
        assert!(GatewayRouter::new(0).is_err());
        assert_eq!(GatewayRouter::new(3).unwrap().n_workers(), 3);
    }

    #[test]
    fn routing_is_modulo_and_stable() {
        let r = GatewayRouter::new(4).unwrap();
        assert_eq!(r.route(0), 0);
        assert_eq!(r.route(7), 3);
        assert_eq!(r.route(8), 0);
        assert_eq!(r.route(u64::MAX), (u64::MAX % 4) as usize);
    }

    #[test]
    fn peeks_the_framed_session_id() {
        let mut framer = LinkFramer::new(0xDEAD_BEEF_0042);
        let mut packets = Vec::new();
        framer
            .frame_payload(&Payload::Beats { beats: Vec::new() }, &mut packets)
            .unwrap();
        for p in &packets {
            assert_eq!(GatewayRouter::peek_session(p), Some(0xDEAD_BEEF_0042));
        }
        let r = GatewayRouter::new(3).unwrap();
        assert_eq!(r.route_packet(&packets[0]), r.route(0xDEAD_BEEF_0042));
    }

    #[test]
    fn truncated_packets_route_to_worker_zero() {
        let r = GatewayRouter::new(5).unwrap();
        assert_eq!(GatewayRouter::peek_session(&[1, 2, 3]), None);
        assert_eq!(r.route_packet(&[1, 2, 3]), 0);
        assert_eq!(r.route_packet(&[]), 0);
    }
}
