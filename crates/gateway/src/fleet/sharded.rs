//! The driver: a multi-worker sharded gateway.
//!
//! [`ShardedGateway`] owns N worker threads (plain `std::thread`),
//! each running a full [`Gateway`] over the sessions the
//! [`GatewayRouter`] assigns it, all sharing one
//! [`MatrixCache`]. The control thread copies
//! batched packets into pooled buffers (recycled by the workers, so
//! steady-state serving allocates no new packet buffers), dispatches
//! each to its session's worker, and merges replies back into the
//! order a single gateway would have produced:
//!
//! * per-packet ingest results are re-merged by original batch index,
//! * flushes and session listings are merged in ascending session-id
//!   order,
//! * [`GatewayStats`] are summed field-wise (commutative, so worker
//!   order cannot show through).
//!
//! Sessions are fully isolated and every per-session computation is
//! deterministic, so a sharded run is **byte-identical** to a
//! sequential run of the same packets for any worker count — pinned
//! by `tests/gateway_shard_determinism.rs`.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use wbsn_core::link::SessionHandshake;
use wbsn_core::WbsnError;

use crate::cache::{MatrixCache, MatrixCacheStats};
use crate::gateway::{
    Gateway, GatewayConfig, GatewayEvent, GatewayStats, RhythmState, SessionReport,
};
use crate::record::TapItem;
use crate::Result;

use super::router::GatewayRouter;

enum GwCmd {
    Ingest {
        // (batch index, pooled packet bytes)
        entries: Vec<(usize, Vec<u8>)>,
    },
    Register {
        hs: SessionHandshake,
    },
    AttachReference {
        session: u64,
        lead: u8,
        offset_samples: u64,
        samples: Vec<f64>,
    },
    FlushAll,
    PumpDownlink,
    Close {
        session: u64,
    },
    DrainTap,
    Stats,
    SessionReports,
    Rhythm {
        session: u64,
    },
    Handshake {
        session: u64,
    },
    Windows {
        session: u64,
        lead: u8,
    },
    SessionIds,
    Shutdown,
}

enum GwReply {
    Ingested {
        results: Vec<(usize, Result<Vec<GatewayEvent>>)>,
        recycled: Vec<Vec<u8>>,
    },
    Registered(Result<()>),
    ReferenceAttached(Result<()>),
    Flushed(Vec<(u64, Vec<GatewayEvent>)>),
    Pumped(Vec<(u64, Vec<Vec<u8>>)>),
    Closed(Option<Vec<GatewayEvent>>),
    Tapped(Vec<(u64, Vec<TapItem>)>),
    Stats(GatewayStats),
    SessionReports(Vec<SessionReport>),
    Rhythm(Option<RhythmState>),
    Handshake(Option<SessionHandshake>),
    Windows(Vec<(u32, Vec<f64>)>),
    SessionIds(Vec<u64>),
}

fn worker_loop(mut gw: Gateway, cmds: Receiver<GwCmd>, replies: Sender<GwReply>) {
    while let Ok(cmd) = cmds.recv() {
        let reply = match cmd {
            GwCmd::Ingest { entries } => {
                let mut results = Vec::with_capacity(entries.len());
                let mut recycled = Vec::with_capacity(entries.len());
                for (batch_idx, mut raw) in entries {
                    results.push((batch_idx, gw.ingest(&raw)));
                    raw.clear();
                    recycled.push(raw);
                }
                GwReply::Ingested { results, recycled }
            }
            GwCmd::Register { hs } => GwReply::Registered(gw.register(hs)),
            GwCmd::AttachReference {
                session,
                lead,
                offset_samples,
                samples,
            } => GwReply::ReferenceAttached(gw.attach_reference_at(
                session,
                lead,
                offset_samples,
                samples,
            )),
            GwCmd::FlushAll => GwReply::Flushed(gw.flush_sessions_tagged()),
            GwCmd::PumpDownlink => GwReply::Pumped(gw.pump_downlink()),
            GwCmd::Close { session } => GwReply::Closed(gw.close_session(session)),
            GwCmd::DrainTap => GwReply::Tapped(gw.drain_tap()),
            GwCmd::Stats => GwReply::Stats(gw.stats()),
            GwCmd::SessionReports => GwReply::SessionReports(gw.session_reports()),
            GwCmd::Rhythm { session } => GwReply::Rhythm(gw.rhythm(session).cloned()),
            GwCmd::Handshake { session } => GwReply::Handshake(gw.handshake(session).copied()),
            GwCmd::Windows { session, lead } => GwReply::Windows(
                gw.reconstructed_windows(session, lead)
                    .map(|(seq, w)| (seq, w.to_vec()))
                    .collect(),
            ),
            GwCmd::SessionIds => GwReply::SessionIds(gw.session_ids().collect()),
            GwCmd::Shutdown => break,
        };
        if replies.send(reply).is_err() {
            // Control side is gone; nothing left to serve.
            break;
        }
    }
}

struct Worker {
    cmds: Sender<GwCmd>,
    replies: Receiver<GwReply>,
    handle: Option<JoinHandle<()>>,
}

/// A gateway sharded across N worker threads — the multi-threaded
/// counterpart of [`Gateway`] with byte-identical results (see the
/// module docs).
pub struct ShardedGateway {
    router: GatewayRouter,
    workers: Vec<Worker>,
    cache: Arc<MatrixCache>,
    // Cleared packet buffers returned by workers, reused by the next
    // ingest so steady-state serving allocates nothing per packet.
    packet_pool: Vec<Vec<u8>>,
}

impl core::fmt::Debug for ShardedGateway {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedGateway")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ShardedGateway {
    /// Spawns `n_workers` gateway threads (at least 1), each running
    /// a [`Gateway`] with this configuration, all sharing one fresh
    /// sensing-matrix cache.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for zero workers;
    /// [`WbsnError::WorkerLost`] when a thread cannot be spawned.
    pub fn new(cfg: GatewayConfig, n_workers: usize) -> Result<Self> {
        Self::with_cache(cfg, n_workers, Arc::new(MatrixCache::new()))
    }

    /// As [`ShardedGateway::new`], sharing an existing matrix cache
    /// (e.g. with other gateways in the same process).
    ///
    /// # Errors
    ///
    /// As [`ShardedGateway::new`].
    pub fn with_cache(
        cfg: GatewayConfig,
        n_workers: usize,
        cache: Arc<MatrixCache>,
    ) -> Result<Self> {
        let router = GatewayRouter::new(n_workers)?;
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let (cmd_tx, cmd_rx) = channel();
            let (rep_tx, rep_rx) = channel();
            let gw = Gateway::with_cache(cfg.clone(), Arc::clone(&cache));
            let handle = std::thread::Builder::new()
                .name(format!("wbsn-gw-{i}"))
                .spawn(move || worker_loop(gw, cmd_rx, rep_tx))
                .map_err(|_| WbsnError::WorkerLost { shard: i })?;
            workers.push(Worker {
                cmds: cmd_tx,
                replies: rep_rx,
                handle: Some(handle),
            });
        }
        Ok(ShardedGateway {
            router,
            workers,
            cache,
            packet_pool: Vec::new(),
        })
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Handle on the shared sensing-matrix cache.
    pub fn matrix_cache(&self) -> Arc<MatrixCache> {
        Arc::clone(&self.cache)
    }

    /// Counters of the shared sensing-matrix cache.
    pub fn cache_stats(&self) -> MatrixCacheStats {
        self.cache.stats()
    }

    fn send(&self, shard: usize, cmd: GwCmd) -> Result<()> {
        self.workers[shard]
            .cmds
            .send(cmd)
            .map_err(|_| WbsnError::WorkerLost { shard })
    }

    fn recv(&self, shard: usize) -> Result<GwReply> {
        self.workers[shard]
            .replies
            .recv()
            .map_err(|_| WbsnError::WorkerLost { shard })
    }

    /// Sends one command to every reachable worker; returns the shards
    /// actually dispatched to (each owes exactly one reply, which the
    /// caller must drain even on failure) plus the first send error.
    fn broadcast(&self, make_cmd: impl Fn() -> GwCmd) -> (Vec<usize>, Option<WbsnError>) {
        let mut dispatched = Vec::with_capacity(self.workers.len());
        let mut lost = None;
        for shard in 0..self.workers.len() {
            match self.send(shard, make_cmd()) {
                Ok(()) => dispatched.push(shard),
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        (dispatched, lost)
    }

    /// Ingests a batch of raw packets: each is routed to its session's
    /// worker (by the session id peeked from the link header), all
    /// involved workers run concurrently, and the per-packet results
    /// come back **in batch order** — byte-identical to calling
    /// [`Gateway::ingest`] on each packet in order, for any worker
    /// count. Per-packet rejections (CRC, truncation, …) are values in
    /// the returned vector, exactly as the sequential gateway returns
    /// them; they do not abort the batch.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] when a worker thread has died.
    #[allow(clippy::type_complexity)]
    pub fn ingest_batch(&mut self, packets: &[Vec<u8>]) -> Result<Vec<Result<Vec<GatewayEvent>>>> {
        let mut per_shard: Vec<Vec<(usize, Vec<u8>)>> = Vec::new();
        per_shard.resize_with(self.workers.len(), Vec::new);
        for (batch_idx, raw) in packets.iter().enumerate() {
            let shard = self.router.route_packet(raw);
            let mut buf = self.packet_pool.pop().unwrap_or_default();
            buf.extend_from_slice(raw);
            per_shard[shard].push((batch_idx, buf));
        }
        // Dispatch to every involved shard, then drain one reply per
        // *dispatched* shard even when something fails in between —
        // leaving a reply queued would desynchronize the per-shard
        // command/reply protocol for every later call.
        let involved: Vec<usize> = (0..self.workers.len())
            .filter(|&s| !per_shard[s].is_empty())
            .collect();
        let mut lost: Option<WbsnError> = None;
        let mut dispatched = Vec::with_capacity(involved.len());
        for &shard in &involved {
            let entries = core::mem::take(&mut per_shard[shard]);
            match self.send(shard, GwCmd::Ingest { entries }) {
                Ok(()) => dispatched.push(shard),
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        let mut merged: Vec<Option<Result<Vec<GatewayEvent>>>> = Vec::new();
        merged.resize_with(packets.len(), || None);
        for &shard in &dispatched {
            match self.recv(shard) {
                Ok(GwReply::Ingested { results, recycled }) => {
                    for (batch_idx, result) in results {
                        merged[batch_idx] = Some(result);
                    }
                    self.packet_pool.extend(recycled);
                }
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        if let Some(e) = lost {
            return Err(e);
        }
        // A hole means the packet's worker never reported that batch
        // index — surface it as a lost worker, not a panic.
        merged
            .into_iter()
            .zip(packets)
            .map(|(slot, raw)| {
                slot.ok_or(WbsnError::WorkerLost {
                    shard: self.router.route_packet(raw),
                })
            })
            .collect()
    }

    /// Single-packet convenience over [`ShardedGateway::ingest_batch`].
    ///
    /// # Errors
    ///
    /// The packet's own rejection, or [`WbsnError::WorkerLost`].
    pub fn ingest(&mut self, raw: &[u8]) -> Result<Vec<GatewayEvent>> {
        let batch = [raw.to_vec()];
        let mut results = self.ingest_batch(&batch)?;
        results
            .pop()
            .unwrap_or(Err(WbsnError::WorkerLost { shard: 0 }))
    }

    /// Opens (or re-opens) a session out of band on its worker — see
    /// [`Gateway::register`].
    ///
    /// # Errors
    ///
    /// As [`Gateway::register`], plus [`WbsnError::WorkerLost`].
    pub fn register(&mut self, hs: SessionHandshake) -> Result<()> {
        let shard = self.router.route(hs.session);
        self.send(shard, GwCmd::Register { hs })?;
        match self.recv(shard)? {
            GwReply::Registered(result) => result,
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// Attaches a per-lead reference signal for PRD reporting — see
    /// [`Gateway::attach_reference`].
    ///
    /// # Errors
    ///
    /// As [`Gateway::attach_reference`], plus
    /// [`WbsnError::WorkerLost`].
    pub fn attach_reference(&mut self, session: u64, lead: u8, samples: Vec<f64>) -> Result<()> {
        self.attach_reference_at(session, lead, 0, samples)
    }

    /// Attaches a mid-stream reference starting at `offset_samples` of
    /// the session's CS stream — see [`Gateway::attach_reference_at`].
    ///
    /// # Errors
    ///
    /// As [`Gateway::attach_reference_at`], plus
    /// [`WbsnError::WorkerLost`].
    pub fn attach_reference_at(
        &mut self,
        session: u64,
        lead: u8,
        offset_samples: u64,
        samples: Vec<f64>,
    ) -> Result<()> {
        let shard = self.router.route(session);
        self.send(
            shard,
            GwCmd::AttachReference {
                session,
                lead,
                offset_samples,
                samples,
            },
        )?;
        match self.recv(shard)? {
            GwReply::ReferenceAttached(result) => result,
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// End of stream: drains every session's reassembler on every
    /// worker and merges the tails in ascending session-id order —
    /// identical to [`Gateway::flush_sessions`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn flush_sessions(&mut self) -> Result<Vec<GatewayEvent>> {
        Ok(self
            .flush_sessions_tagged()?
            .into_iter()
            .flat_map(|(_, ev)| ev)
            .collect())
    }

    /// [`ShardedGateway::flush_sessions`] with each session's events
    /// grouped under its id (ids ascending) — identical to
    /// [`Gateway::flush_sessions_tagged`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn flush_sessions_tagged(&mut self) -> Result<Vec<(u64, Vec<GatewayEvent>)>> {
        let (dispatched, mut lost) = self.broadcast(|| GwCmd::FlushAll);
        let mut out: Vec<(u64, Vec<GatewayEvent>)> = Vec::new();
        for shard in dispatched {
            match self.recv(shard) {
                Ok(GwReply::Flushed(tagged)) => out.extend(tagged),
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        if let Some(e) = lost {
            return Err(e);
        }
        // Ascending id = the sequential gateway's flush order.
        out.sort_unstable_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Drains every worker's recording tap, merged in ascending
    /// session-id order. Each session lives wholly on one worker, so
    /// the merged per-session item streams are byte-identical to a
    /// sequential [`Gateway::drain_tap`] at any worker count.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] when a worker thread has died.
    pub fn drain_tap(&mut self) -> Result<Vec<(u64, Vec<TapItem>)>> {
        let (dispatched, mut lost) = self.broadcast(|| GwCmd::DrainTap);
        let mut out: Vec<(u64, Vec<TapItem>)> = Vec::new();
        for shard in dispatched {
            match self.recv(shard) {
                Ok(GwReply::Tapped(tagged)) => out.extend(tagged),
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        if let Some(e) = lost {
            return Err(e);
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// One downlink pump across every worker, merged in ascending
    /// session-id order — byte-identical to
    /// [`Gateway::pump_downlink`] on a sequential gateway fed the
    /// same packets, for any worker count (each session's feedback
    /// state lives wholly on its owning worker, so the per-session
    /// frame streams cannot interleave differently).
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    #[allow(clippy::type_complexity)]
    pub fn pump_downlink(&mut self) -> Result<Vec<(u64, Vec<Vec<u8>>)>> {
        let (dispatched, mut lost) = self.broadcast(|| GwCmd::PumpDownlink);
        let mut out: Vec<(u64, Vec<Vec<u8>>)> = Vec::new();
        for shard in dispatched {
            match self.recv(shard) {
                Ok(GwReply::Pumped(frames)) => out.extend(frames),
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        if let Some(e) = lost {
            return Err(e);
        }
        // Ascending id = the sequential gateway's pump order.
        out.sort_unstable_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Link-health report of one session — see
    /// [`Gateway::session_report`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn session_report(&self, session: u64) -> Result<Option<SessionReport>> {
        Ok(self
            .session_reports()?
            .into_iter()
            .find(|r| r.session == session))
    }

    /// Link-health reports of every session across all workers, ids
    /// ascending — identical to [`Gateway::session_reports`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn session_reports(&self) -> Result<Vec<SessionReport>> {
        let (dispatched, mut lost) = self.broadcast(|| GwCmd::SessionReports);
        let mut all = Vec::new();
        for shard in dispatched {
            match self.recv(shard) {
                Ok(GwReply::SessionReports(reports)) => all.extend(reports),
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        match lost {
            Some(e) => Err(e),
            None => {
                all.sort_unstable_by_key(|r| r.session);
                Ok(all)
            }
        }
    }

    /// Closes one session on its worker — see
    /// [`Gateway::close_session`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn close_session(&mut self, session: u64) -> Result<Option<Vec<GatewayEvent>>> {
        let shard = self.router.route(session);
        self.send(shard, GwCmd::Close { session })?;
        match self.recv(shard)? {
            GwReply::Closed(events) => Ok(events),
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// Field-wise sum of every worker's [`GatewayStats`] — identical
    /// to the sequential gateway's counters for the same packets.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn stats(&self) -> Result<GatewayStats> {
        let (dispatched, mut lost) = self.broadcast(|| GwCmd::Stats);
        let mut total = GatewayStats::default();
        for shard in dispatched {
            match self.recv(shard) {
                Ok(GwReply::Stats(s)) => {
                    total.packets += s.packets;
                    total.crc_rejected += s.crc_rejected;
                    total.rejected += s.rejected;
                    total.items_rejected += s.items_rejected;
                    total.payloads += s.payloads;
                    total.messages_lost += s.messages_lost;
                    total.messages_recovered += s.messages_recovered;
                    total.acks_sent += s.acks_sent;
                    total.nacks_sent += s.nacks_sent;
                    total.retransmits_requested += s.retransmits_requested;
                    total.directives_issued += s.directives_issued;
                    total.windows_reconstructed += s.windows_reconstructed;
                    total.windows_skipped += s.windows_skipped;
                    total.solver_iters += s.solver_iters;
                }
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        match lost {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Sessions seen across all workers, ascending.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn session_ids(&self) -> Result<Vec<u64>> {
        let (dispatched, mut lost) = self.broadcast(|| GwCmd::SessionIds);
        let mut all = Vec::new();
        for shard in dispatched {
            match self.recv(shard) {
                Ok(GwReply::SessionIds(ids)) => all.extend(ids),
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        match lost {
            Some(e) => Err(e),
            None => {
                all.sort_unstable();
                Ok(all)
            }
        }
    }

    /// Rhythm/alert state of one session — see [`Gateway::rhythm`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn rhythm(&self, session: u64) -> Result<Option<RhythmState>> {
        let shard = self.router.route(session);
        self.send(shard, GwCmd::Rhythm { session })?;
        match self.recv(shard)? {
            GwReply::Rhythm(state) => Ok(state),
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// The handshake of one session — see [`Gateway::handshake`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    pub fn handshake(&self, session: u64) -> Result<Option<SessionHandshake>> {
        let shard = self.router.route(session);
        self.send(shard, GwCmd::Handshake { session })?;
        match self.recv(shard)? {
            GwReply::Handshake(hs) => Ok(hs),
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// All reconstructed `(window_seq, samples)` of one lead, in
    /// window order — see [`Gateway::reconstructed_windows`].
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead worker.
    #[allow(clippy::type_complexity)]
    pub fn reconstructed_windows(&self, session: u64, lead: u8) -> Result<Vec<(u32, Vec<f64>)>> {
        let shard = self.router.route(session);
        self.send(shard, GwCmd::Windows { session, lead })?;
        match self.recv(shard)? {
            GwReply::Windows(windows) => Ok(windows),
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }
}

impl Drop for ShardedGateway {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            let _ = worker.cmds.send(GwCmd::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}
