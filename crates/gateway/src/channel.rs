//! Deterministic lossy-link simulator.
//!
//! The node→base-station radio link loses, corrupts and reorders
//! packets; remote-ECG systems are built around that fact. This
//! channel models those impairments **deterministically**: every
//! decision comes from one seeded RNG in a fixed draw order, so the
//! same seed and packet stream replay bit-identically — which is what
//! lets the end-to-end acceptance scenario pin "zero undetected
//! corruptions" as a property instead of a probability.

use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use wbsn_core::WbsnError;

/// Link-impairment configuration. All rates are per-packet
/// probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Probability a packet is dropped outright.
    pub drop_rate: f64,
    /// Probability a single random bit of the packet is flipped.
    pub corrupt_rate: f64,
    /// Probability a packet is held back and delivered after the next
    /// `reorder_depth` packets (out-of-order delivery).
    pub reorder_rate: f64,
    /// How many later packets overtake a held-back packet.
    pub reorder_depth: usize,
    /// RNG seed: same seed, same impairment pattern.
    pub seed: u64,
}

impl ChannelConfig {
    /// A perfect link: nothing dropped, corrupted or reordered. The
    /// identity channel of the round-trip property tests.
    pub fn ideal() -> Self {
        ChannelConfig {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            reorder_rate: 0.0,
            reorder_depth: 0,
            seed: 0,
        }
    }

    /// A representative bad indoor link: 1% drop, 0.5% corruption,
    /// 2% reordering by two packets.
    pub fn lossy(seed: u64) -> Self {
        ChannelConfig {
            drop_rate: 0.01,
            corrupt_rate: 0.005,
            reorder_rate: 0.02,
            reorder_depth: 2,
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        for (what, rate) in [
            ("drop_rate", self.drop_rate),
            ("corrupt_rate", self.corrupt_rate),
            ("reorder_rate", self.reorder_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(WbsnError::InvalidParameter {
                    what: "channel rate",
                    detail: format!("{what} = {rate} outside [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// What the channel did to the traffic so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Packets offered to the channel.
    pub offered: u64,
    /// Packets delivered (corrupted ones included).
    pub delivered: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets delivered with a flipped bit.
    pub corrupted: u64,
    /// Packets delivered out of order.
    pub reordered: u64,
}

/// The seeded lossy channel. Packets go in via [`LossyChannel::send`],
/// whatever survives comes out in delivery order.
#[derive(Debug)]
pub struct LossyChannel {
    cfg: ChannelConfig,
    rng: StdRng,
    // Held-back packets: (bytes, deliveries remaining before release).
    held: VecDeque<(Vec<u8>, usize)>,
    stats: ChannelStats,
}

impl LossyChannel {
    /// Channel with the given impairment configuration.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for rates outside `[0, 1]`.
    pub fn new(cfg: ChannelConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(LossyChannel {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            held: VecDeque::new(),
            stats: ChannelStats::default(),
        })
    }

    /// Configuration in effect.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Re-scripts the drop probability mid-run — how the closed-loop
    /// acceptance scenario ramps a channel from clean to degraded and
    /// back, deterministically: the RNG stream and every other
    /// impairment are untouched, only the per-packet drop threshold
    /// moves.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for a rate outside `[0, 1]`
    /// (the channel is unchanged on error).
    pub fn set_drop_rate(&mut self, drop_rate: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&drop_rate) {
            return Err(WbsnError::InvalidParameter {
                what: "channel rate",
                detail: format!("drop_rate = {drop_rate} outside [0, 1]"),
            });
        }
        self.cfg.drop_rate = drop_rate;
        Ok(())
    }

    /// Offers one packet to the channel; returns the packets delivered
    /// *now* (possibly none — dropped or held back — and possibly
    /// several, when held packets become due).
    pub fn send(&mut self, packet: Vec<u8>) -> Vec<Vec<u8>> {
        self.stats.offered += 1;
        let mut out = Vec::new();
        // Packets already in the hold queue age by one send, whatever
        // happens to the current packet; a packet held *this* send is
        // excluded, so `reorder_depth` subsequent sends really do
        // overtake it.
        let aging = self.held.len();
        if self.cfg.drop_rate > 0.0 && self.rng.gen_bool(self.cfg.drop_rate) {
            self.stats.dropped += 1;
        } else {
            let mut packet = packet;
            if !packet.is_empty()
                && self.cfg.corrupt_rate > 0.0
                && self.rng.gen_bool(self.cfg.corrupt_rate)
            {
                let bit = (self.rng.gen::<u64>() as usize) % (packet.len() * 8);
                packet[bit / 8] ^= 1 << (bit % 8);
                self.stats.corrupted += 1;
            }
            if self.cfg.reorder_rate > 0.0
                && self.cfg.reorder_depth > 0
                && self.rng.gen_bool(self.cfg.reorder_rate)
            {
                self.held.push_back((packet, self.cfg.reorder_depth));
                self.stats.reordered += 1;
            } else {
                self.stats.delivered += 1;
                out.push(packet);
            }
        }
        self.release_due(aging, &mut out);
        out
    }

    /// Offers a batch of packets; returns everything delivered, in
    /// delivery order.
    pub fn send_all(&mut self, packets: impl IntoIterator<Item = Vec<u8>>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for p in packets {
            out.extend(self.send(p));
        }
        out
    }

    /// Releases every held-back packet (end of transmission).
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some((p, _)) = self.held.pop_front() {
            self.stats.delivered += 1;
            out.push(p);
        }
        out
    }

    /// Counts one delivery opportunity against the first `aging` held
    /// packets (the ones that predate the current send) and releases
    /// the ones that are due.
    fn release_due(&mut self, aging: usize, out: &mut Vec<Vec<u8>>) {
        for held in self.held.iter_mut().take(aging) {
            held.1 = held.1.saturating_sub(1);
        }
        while self
            .held
            .front()
            .is_some_and(|&(_, remaining)| remaining == 0)
        {
            if let Some((p, _)) = self.held.pop_front() {
                self.stats.delivered += 1;
                out.push(p);
            }
        }
    }
}

/// Seed salt deriving the downlink RNG stream from an uplink seed
/// (odd golden-ratio constant, so up/down streams never collide).
const DOWNLINK_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A bidirectional link: two independently seeded [`LossyChannel`]s,
/// one per direction, so the ACK/NACK/directive downlink suffers the
/// same class of impairments as the uplink — and the whole
/// closed-loop exchange still replays bit-identically per seed.
///
/// ```
/// use wbsn_gateway::channel::{ChannelConfig, DuplexChannel};
///
/// let mut link = DuplexChannel::symmetric(ChannelConfig::lossy(7)).unwrap();
/// let up = link.up().send_all(vec![vec![1u8; 32]]);
/// let down = link.down().send_all(vec![vec![2u8; 24]]);
/// assert!(up.len() + down.len() <= 2);
/// ```
#[derive(Debug)]
pub struct DuplexChannel {
    up: LossyChannel,
    down: LossyChannel,
}

impl DuplexChannel {
    /// Duplex link with independent per-direction configurations.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for rates outside `[0, 1]`.
    pub fn new(up: ChannelConfig, down: ChannelConfig) -> Result<Self> {
        Ok(DuplexChannel {
            up: LossyChannel::new(up)?,
            down: LossyChannel::new(down)?,
        })
    }

    /// Duplex link with the same impairment rates both ways; the
    /// downlink RNG stream is derived from `cfg.seed` by a fixed salt
    /// so the directions are decorrelated but jointly replayable from
    /// the one seed.
    ///
    /// # Errors
    ///
    /// As [`Self::new`].
    pub fn symmetric(cfg: ChannelConfig) -> Result<Self> {
        let down = ChannelConfig {
            seed: cfg.seed ^ DOWNLINK_SEED_SALT,
            ..cfg
        };
        DuplexChannel::new(cfg, down)
    }

    /// The node→gateway direction.
    pub fn up(&mut self) -> &mut LossyChannel {
        &mut self.up
    }

    /// The gateway→node direction.
    pub fn down(&mut self) -> &mut LossyChannel {
        &mut self.down
    }

    /// Uplink traffic statistics.
    pub fn up_stats(&self) -> ChannelStats {
        self.up.stats()
    }

    /// Downlink traffic statistics.
    pub fn down_stats(&self) -> ChannelStats {
        self.down.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 8]).collect()
    }

    #[test]
    fn ideal_channel_is_the_identity() {
        let mut ch = LossyChannel::new(ChannelConfig::ideal()).unwrap();
        let input = packets(50);
        let mut out = ch.send_all(input.clone());
        out.extend(ch.flush());
        assert_eq!(out, input);
        let s = ch.stats();
        assert_eq!(s.offered, 50);
        assert_eq!(s.delivered, 50);
        assert_eq!(s.dropped + s.corrupted + s.reordered, 0);
    }

    #[test]
    fn same_seed_same_impairments() {
        let run = || {
            let mut ch = LossyChannel::new(ChannelConfig::lossy(42)).unwrap();
            let mut out = ch.send_all(packets(500));
            out.extend(ch.flush());
            (out, ch.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.dropped > 0, "expected drops over 500 packets");
        assert!(sa.reordered > 0, "expected reordering over 500 packets");
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut ch = LossyChannel::new(ChannelConfig::lossy(seed)).unwrap();
            let mut out = ch.send_all(packets(500));
            out.extend(ch.flush());
            out
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn reordering_preserves_content() {
        let cfg = ChannelConfig {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            reorder_rate: 0.3,
            reorder_depth: 2,
            seed: 7,
        };
        let mut ch = LossyChannel::new(cfg).unwrap();
        let input = packets(100);
        let mut out = ch.send_all(input.clone());
        out.extend(ch.flush());
        // Same multiset of packets, different order.
        assert_eq!(out.len(), input.len());
        let mut a = out.clone();
        let mut b = input.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_ne!(out, input, "depth-2 reordering at 30% must reorder");
    }

    #[test]
    fn a_held_packet_is_not_released_in_the_send_that_held_it() {
        // Depth-1 reordering means exactly one later packet overtakes;
        // releasing in the same send would make depth 1 a no-op.
        let cfg = ChannelConfig {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            reorder_rate: 1.0,
            reorder_depth: 1,
            seed: 3,
        };
        let mut ch = LossyChannel::new(cfg).unwrap();
        assert!(ch.send(vec![1]).is_empty());
        assert_eq!(ch.send(vec![2]), vec![vec![1]]);
        assert_eq!(ch.flush(), vec![vec![2]]);
    }

    #[test]
    fn empty_packets_survive_a_corrupting_channel() {
        let cfg = ChannelConfig {
            corrupt_rate: 1.0,
            ..ChannelConfig::ideal()
        };
        let mut ch = LossyChannel::new(cfg).unwrap();
        // Nothing to flip in a zero-length packet; it passes unharmed
        // instead of panicking.
        assert_eq!(ch.send(Vec::new()), vec![Vec::<u8>::new()]);
        assert_eq!(ch.stats().corrupted, 0);
    }

    #[test]
    fn rates_are_validated() {
        let mut cfg = ChannelConfig::ideal();
        cfg.drop_rate = 1.5;
        assert!(LossyChannel::new(cfg).is_err());
        let mut cfg = ChannelConfig::ideal();
        cfg.corrupt_rate = -0.1;
        assert!(LossyChannel::new(cfg).is_err());
    }

    #[test]
    fn ramping_the_drop_rate_is_deterministic_and_validated() {
        let run = || {
            let mut ch = LossyChannel::new(ChannelConfig::ideal()).unwrap();
            let mut out = Vec::new();
            for step in 0..4u64 {
                ch.set_drop_rate(step as f64 * 0.25).unwrap();
                out.extend(ch.send_all(packets(16)));
            }
            (out, ch.stats().dropped)
        };
        let (a, dropped_a) = run();
        let (b, dropped_b) = run();
        assert_eq!(a, b, "a scripted ramp must replay bit-identically");
        assert_eq!(dropped_a, dropped_b);
        assert!(dropped_a > 0, "the degraded steps must actually drop");

        let mut ch = LossyChannel::new(ChannelConfig::ideal()).unwrap();
        assert!(ch.set_drop_rate(1.01).is_err());
        assert!(ch.set_drop_rate(-0.5).is_err());
        assert_eq!(ch.config().drop_rate, 0.0, "rejected rates leave config");
    }

    #[test]
    fn duplex_directions_are_decorrelated_but_jointly_replayable() {
        let run = || {
            let mut link = DuplexChannel::symmetric(ChannelConfig {
                drop_rate: 0.3,
                ..ChannelConfig::lossy(11)
            })
            .unwrap();
            let up = link.up().send_all(packets(64));
            let down = link.down().send_all(packets(64));
            (up, down)
        };
        let (up_a, down_a) = run();
        let (up_b, down_b) = run();
        assert_eq!(up_a, up_b);
        assert_eq!(down_a, down_b);
        assert_ne!(
            up_a, down_a,
            "the directions fed identical traffic must impair differently"
        );
    }
}
