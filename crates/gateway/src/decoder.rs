//! Session decoding: reassembled link messages back into typed values.
//!
//! A [`SessionDecoder`] owns one session's [`Reassembler`] and turns
//! its released messages into [`SessionItem`]s: the session handshake
//! record, decoded [`Payload`]s, or loss notices. Decode failures keep
//! their typed causes ([`WbsnError::Truncated`] /
//! [`WbsnError::Malformed`] from [`Payload::decode`]), so the gateway
//! can report *why* a frame was rejected.

use crate::reassembler::{LinkEvent, Reassembler, ReassemblyStats};
use crate::Result;
use wbsn_core::link::{LinkError, LinkPacket, SessionHandshake, KIND_HANDSHAKE};
use wbsn_core::{Payload, WbsnError};

/// One decoded item of a session's stream, in message order.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionItem {
    /// The session handshake record (message 0 by convention).
    Handshake(SessionHandshake),
    /// One decoded payload.
    Payload {
        /// Message sequence number it travelled under.
        msg_seq: u32,
        /// The payload.
        payload: Payload,
    },
    /// A run of consecutive messages lost on the link (gap proven by
    /// the reassembler).
    Lost {
        /// First lost sequence number of the run.
        first_seq: u32,
        /// Number of consecutive lost messages.
        count: u32,
    },
    /// A previously [`Lost`](SessionItem::Lost) message recovered from
    /// a retransmission. Out of sequence order by construction: the
    /// in-order stream already moved past it, so consumers must slot
    /// it back by `msg_seq`, not append it.
    Recovered {
        /// Message sequence number it travelled under.
        msg_seq: u32,
        /// The recovered payload.
        payload: Payload,
    },
    /// A recovered message that decoded as a (re-announced) session
    /// handshake rather than a payload — e.g. a rebooted node's
    /// sequence-0 handshake lost and NACK-repaired. Distinguished from
    /// [`Handshake`](SessionItem::Handshake) so the recovery stays
    /// visible to event consumers, not just to the loss counters.
    RecoveredHandshake {
        /// Message sequence number it travelled under.
        msg_seq: u32,
        /// The recovered handshake.
        hs: SessionHandshake,
    },
    /// A message that reassembled but failed to decode (truncated or
    /// malformed sender output). Carried as an item rather than an
    /// error so one bad message never discards the valid messages
    /// released alongside it.
    Rejected {
        /// Sequence number of the undecodable message.
        msg_seq: u32,
        /// Why it was rejected.
        error: WbsnError,
    },
}

/// Reassembly + decoding for one session.
#[derive(Debug)]
pub struct SessionDecoder {
    session: u64,
    reassembler: Reassembler,
}

impl SessionDecoder {
    /// Decoder for `session` with the default reorder window.
    pub fn new(session: u64) -> Self {
        SessionDecoder {
            session,
            reassembler: Reassembler::new(),
        }
    }

    /// Decoder with an explicit reorder window.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for a zero window.
    pub fn with_window(session: u64, window: u32) -> Result<Self> {
        SessionDecoder::with_windows(session, window, 0)
    }

    /// Decoder with explicit reorder and recovery windows (see
    /// [`Reassembler::with_windows`]); `recovery > 0` lets NACK-driven
    /// retransmissions of declared-lost messages surface as
    /// [`SessionItem::Recovered`] instead of being dropped stale.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for a zero reorder window.
    pub fn with_windows(session: u64, window: u32, recovery: u32) -> Result<Self> {
        Ok(SessionDecoder {
            session,
            reassembler: Reassembler::with_windows(window, recovery)?,
        })
    }

    /// Session this decoder serves.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Reassembly counters.
    pub fn stats(&self) -> ReassemblyStats {
        self.reassembler.stats()
    }

    /// Sequence number of the next in-order message to release —
    /// every message below it has been released, recovered, or
    /// declared lost.
    pub fn next_seq(&self) -> u32 {
        self.reassembler.next_seq()
    }

    /// Accepts one CRC-verified packet, appending every item that
    /// becomes available to `out` in message order.
    ///
    /// # Errors
    ///
    /// [`LinkError::BadHeader`] when the packet belongs to a different
    /// session, reassembly errors, and typed payload decode failures.
    pub fn accept(&mut self, pkt: &LinkPacket, out: &mut Vec<SessionItem>) -> Result<()> {
        if pkt.session != self.session {
            return Err(LinkError::BadHeader {
                detail: format!(
                    "packet for session {} routed to decoder {}",
                    pkt.session, self.session
                ),
            }
            .into());
        }
        let mut events = Vec::new();
        self.reassembler.accept(pkt, &mut events)?;
        Self::decode_events(events, out);
        Ok(())
    }

    /// End of stream: drains the reassembler, decoding the tail.
    pub fn flush(&mut self, out: &mut Vec<SessionItem>) {
        let mut events = Vec::new();
        self.reassembler.flush(&mut events);
        Self::decode_events(events, out);
    }

    fn decode_events(events: Vec<LinkEvent>, out: &mut Vec<SessionItem>) {
        for ev in events {
            match ev {
                LinkEvent::Lost { first_seq, count } => {
                    out.push(SessionItem::Lost { first_seq, count })
                }
                LinkEvent::Message {
                    msg_seq,
                    kind,
                    bytes,
                } => out.push(Self::decode_message(msg_seq, kind, &bytes)),
                LinkEvent::Recovered {
                    msg_seq,
                    kind,
                    bytes,
                } => out.push(match Self::decode_message(msg_seq, kind, &bytes) {
                    // A recovered payload or handshake must stay
                    // distinguishable: it is out of order relative to
                    // the released stream, and the recovery itself is
                    // an observable the consumer must not lose. A
                    // recovered reject carries that fact in its own
                    // variant already.
                    SessionItem::Payload { msg_seq, payload } => {
                        SessionItem::Recovered { msg_seq, payload }
                    }
                    SessionItem::Handshake(hs) => SessionItem::RecoveredHandshake { msg_seq, hs },
                    other => other,
                }),
            }
        }
    }

    /// Decodes one reassembled message; failures become typed
    /// [`SessionItem::Rejected`] items, never a dropped batch.
    fn decode_message(msg_seq: u32, kind: u8, bytes: &[u8]) -> SessionItem {
        let decoded = if kind == KIND_HANDSHAKE {
            SessionHandshake::decode(bytes).map(SessionItem::Handshake)
        } else if bytes.first() != Some(&kind) {
            // The header's kind byte is advisory routing metadata; a
            // mismatch with the decoded tag is a malformed sender.
            Err(WbsnError::Malformed {
                what: "message kind",
                detail: format!("header kind {kind:#04x} disagrees with payload tag"),
            })
        } else {
            Payload::decode(bytes).map(|payload| SessionItem::Payload { msg_seq, payload })
        };
        decoded.unwrap_or_else(|error| SessionItem::Rejected { msg_seq, error })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_core::link::LinkFramer;

    #[test]
    fn decodes_handshake_then_payloads_in_order() {
        let hs = SessionHandshake {
            version: wbsn_core::link::PROTOCOL_VERSION,
            session: 9,
            fs_hz: 250,
            n_leads: 3,
            cs_window: 256,
            cs_measurements: 128,
            cs_d_per_col: 4,
            seed: 5,
        };
        let p = Payload::Events {
            n_beats: 4,
            class_counts: [4, 0, 0, 0],
            mean_hr_x10: 650,
            af_burden_pct: 0,
            af_active: false,
        };
        let mut framer = LinkFramer::new(9);
        let mut raw = Vec::new();
        framer.frame_handshake(&hs, &mut raw).unwrap();
        framer.frame_payload(&p, &mut raw).unwrap();
        let mut dec = SessionDecoder::new(9);
        let mut items = Vec::new();
        for b in &raw {
            dec.accept(&LinkPacket::decode(b).unwrap(), &mut items)
                .unwrap();
        }
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], SessionItem::Handshake(hs));
        assert_eq!(
            items[1],
            SessionItem::Payload {
                msg_seq: 1,
                payload: p
            }
        );
    }

    #[test]
    fn rejects_foreign_sessions() {
        let mut framer = LinkFramer::new(3);
        let mut raw = Vec::new();
        framer.frame_message(0x01, &[0; 4], &mut raw).unwrap();
        let pkt = LinkPacket::decode(&raw[0]).unwrap();
        let mut dec = SessionDecoder::new(4);
        let mut items = Vec::new();
        assert!(matches!(
            dec.accept(&pkt, &mut items),
            Err(WbsnError::Link(LinkError::BadHeader { .. }))
        ));
    }
}
