//! The gateway service: many sessions, one packet stream.
//!
//! A base station terminates the radio uplinks of a whole fleet. The
//! [`Gateway`] routes every received packet to its session's
//! [`SessionDecoder`], then acts on what comes out:
//!
//! * **Handshakes** open the session: they carry the CS sensing
//!   parameters (window, measurement count, column density, seed), so
//!   the gateway can regenerate the node's `SparseTernaryMatrix` per
//!   lead (`seed + lead`, exactly as the node's `CsStage` builds them)
//!   and reconstruct.
//! * **`Events` payloads** drive per-session rhythm state: AF episode
//!   onsets surface as [`GatewayEvent::AfAlert`]s and are kept in an
//!   audit log, mirroring what a monitoring service would page on.
//! * **`CsWindow` payloads** are reconstructed through the `wbsn-cs`
//!   FISTA solver; when a reference signal is attached
//!   ([`Gateway::attach_reference`]), each window reports its PRD
//!   (percentage root-mean-square difference) against the transmitted
//!   original — the Figure 5 quality metric, now measured end to end
//!   through the lossy link.
//! * **Losses** (gaps the reassembler proves) surface as
//!   [`GatewayEvent::MessageLost`].
//!
//! Everything is deterministic: same packet stream, same events, same
//! reconstructed samples — the end-to-end scenario test replays the
//! whole node→channel→gateway path bit-identically.

use crate::cache::{MatrixCache, MatrixCacheStats, MatrixKey};
use crate::controller::{ControllerConfig, LinkController};
use crate::decoder::{SessionDecoder, SessionItem};
use crate::record::TapItem;
use crate::Result;
use std::collections::BTreeMap;
use std::sync::Arc;
use wbsn_core::link::{
    DirectiveFrame, DownlinkFrame, LinkError, LinkPacket, SessionHandshake, NACK_MAX_MISSING,
};
use wbsn_core::{Payload, WbsnError};
use wbsn_cs::encoder::CsEncoder;
use wbsn_cs::omp::{Omp, OmpConfig};
use wbsn_cs::solver::{Fista, FistaConfig, FistaState};
use wbsn_sigproc::stats::prd_percent;

/// Which `wbsn-cs` decoder the gateway runs per CS window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReconstructionSolver {
    /// FISTA over a wavelet synthesis dictionary — the standard
    /// decoder of the ECG-CS literature and the default.
    Fista(FistaConfig),
    /// Orthogonal matching pursuit — the greedy ablation baseline.
    Omp(OmpConfig),
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Reorder window of each session's reassembler (messages).
    pub reorder_window: u32,
    /// Decoder run per CS window.
    pub solver: ReconstructionSolver,
    /// Whether CS windows are reconstructed at all (disable to bench
    /// the pure reassembly/decode path).
    pub reconstruct_cs: bool,
    /// Whether FISTA solves are warm-started from each stream's
    /// previous window (cached Lipschitz constant + previous
    /// solution). Purely a speed knob — `tests/warm_start.rs` pins
    /// that quality is unaffected — exposed so benches can measure
    /// the cold baseline. Ignored by the OMP solver.
    pub warm_start: bool,
    /// Recovery window of each session's reassembler: how many of the
    /// most recently declared-lost sequence numbers stay eligible for
    /// late recovery from NACK-driven retransmissions. Zero (the
    /// default) disables both recovery *and* selective NACKs —
    /// [`Gateway::pump_downlink`] then emits pure cumulative ACKs,
    /// and the gateway behaves exactly as before the downlink existed.
    pub recovery_window: u32,
    /// Adaptive CR policy. `None` (the default) means no directives
    /// are ever issued; `Some` gives every session a
    /// [`LinkController`] that turns measured PRD/loss into
    /// [`DirectiveAction::SetCr`](wbsn_core::link::DirectiveAction)
    /// downlink frames at pump time.
    pub controller: Option<ControllerConfig>,
    /// Solve only every k-th CS window (by `window_seq`); the rest are
    /// counted as skipped and never reach the solver. `1` (the
    /// default) reconstructs everything; larger values turn full
    /// reconstruction into periodic quality *probing* — what a cohort
    /// harness needs to keep hundreds of CS sessions affordable while
    /// still sampling PRD. Values of 0 are clamped to 1. The decision
    /// depends only on `window_seq`, so it is invariant to packet
    /// arrival order and to the gateway's worker count.
    pub reconstruct_every: u32,
    /// Buffer a [`TapItem`] per decoded
    /// observation for an external recorder to drain
    /// ([`Gateway::drain_tap`]). Off by default: with the flag off no
    /// item is ever constructed and the gateway's numeric behaviour
    /// is unchanged.
    pub tap: bool,
}

impl Default for GatewayConfig {
    /// Defaults tuned for the base station, not the sweep harness: a
    /// gateway has server-class cycles to spend per window, so it
    /// runs FISTA with lighter regularization than the `wbsn-cs`
    /// default, with gradient restart plus an early-exit tolerance
    /// that stops each solve at its quality plateau (mean PRD at 50%
    /// CR improves from ≈9.5% to ≈6.5% on clean windows; the old
    /// fixed 800-iteration cold budget spent ≥2× the iterations for
    /// the same PRD — see `tests/warm_start.rs`).
    fn default() -> Self {
        GatewayConfig {
            reorder_window: crate::reassembler::DEFAULT_REORDER_WINDOW,
            solver: ReconstructionSolver::Fista(FistaConfig {
                lambda_rel: 0.001,
                max_iters: 800,
                tol: 3e-5,
                restart: true,
                ..FistaConfig::default()
            }),
            reconstruct_cs: true,
            warm_start: true,
            recovery_window: 0,
            controller: None,
            reconstruct_every: 1,
            tap: false,
        }
    }
}

/// One AF alert surfaced by the gateway, kept in the session's audit
/// log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertEvent {
    /// Message sequence number of the `Events` payload that raised it.
    pub msg_seq: u32,
    /// AF burden reported by the node at that point (percent).
    pub af_burden_pct: u8,
}

/// Per-session rhythm state, driven by the node's `Events` payloads.
#[derive(Debug, Clone, Default)]
pub struct RhythmState {
    /// Whether an AF episode is currently flagged.
    pub af_active: bool,
    /// Last reported AF burden (percent).
    pub af_burden_pct: u8,
    /// Last reported mean heart rate (bpm ×10).
    pub mean_hr_x10: u16,
    /// Beats reported across all `Events` payloads.
    pub beats_reported: u64,
    /// `Events` payloads seen.
    pub events_seen: u64,
    /// Delineated beats received via `Beats` payloads.
    pub beats_received: u64,
    /// Every AF episode onset, in arrival order.
    pub alerts: Vec<AlertEvent>,
}

/// What the gateway tells its caller per ingested packet.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayEvent {
    /// A session handshake arrived; the session is fully open.
    SessionOpened {
        /// The session.
        session: u64,
    },
    /// An AF episode started (the node's `Events` payload flipped
    /// `af_active` on).
    AfAlert {
        /// The session.
        session: u64,
        /// Message that raised the alert.
        msg_seq: u32,
        /// Reported AF burden (percent).
        af_burden_pct: u8,
    },
    /// The ongoing AF episode ended.
    AfCleared {
        /// The session.
        session: u64,
        /// Message that cleared it.
        msg_seq: u32,
    },
    /// One CS window was reconstructed.
    WindowReconstructed {
        /// The session.
        session: u64,
        /// Lead index.
        lead: u8,
        /// Window sequence number.
        window_seq: u32,
        /// PRD against the attached reference, when one covers the
        /// window (percent; lower is better).
        prd_percent: Option<f64>,
    },
    /// A run of consecutive messages lost on the link (reassembly
    /// gap). Ranged so a long outage costs one event, not one per
    /// missing message.
    MessageLost {
        /// The session.
        session: u64,
        /// First lost sequence number of the run.
        first_seq: u32,
        /// Number of consecutive lost messages.
        count: u32,
    },
    /// A previously lost message was recovered from a NACK-driven
    /// retransmission and processed. It is out of sequence order by
    /// construction — the in-order stream already moved past it.
    MessageRecovered {
        /// The session.
        session: u64,
        /// Recovered sequence number.
        msg_seq: u32,
    },
    /// A message reassembled but could not be decoded or processed
    /// (malformed sender output, or a CS window with no handshake to
    /// regenerate Φ from). Carried as an event so the valid messages
    /// released alongside it are never discarded.
    PayloadRejected {
        /// The session.
        session: u64,
        /// Sequence number of the rejected message.
        msg_seq: u32,
        /// Why it was rejected.
        error: WbsnError,
    },
}

/// Gateway-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Packets offered to [`Gateway::ingest`].
    pub packets: u64,
    /// Packets rejected by the CRC check.
    pub crc_rejected: u64,
    /// Packets rejected for other typed reasons (truncation, bad
    /// headers, fragment conflicts).
    pub rejected: u64,
    /// Messages that reassembled but failed to decode or process
    /// (surfaced as [`GatewayEvent::PayloadRejected`]).
    pub items_rejected: u64,
    /// Payloads decoded across all sessions.
    pub payloads: u64,
    /// Messages proven lost across all sessions.
    pub messages_lost: u64,
    /// Lost messages later recovered from retransmissions.
    pub messages_recovered: u64,
    /// Cumulative-ACK downlink frames emitted.
    pub acks_sent: u64,
    /// Selective-NACK downlink frames emitted.
    pub nacks_sent: u64,
    /// Individual message retransmissions requested across all NACKs
    /// (repeat requests for the same stubborn sequence count again).
    pub retransmits_requested: u64,
    /// Adaptive-CR directives issued across all sessions.
    pub directives_issued: u64,
    /// CS windows reconstructed.
    pub windows_reconstructed: u64,
    /// CS windows skipped by [`GatewayConfig::reconstruct_every`]
    /// (decoded and counted, never solved).
    pub windows_skipped: u64,
    /// FISTA iterations spent across all reconstructions (0 under the
    /// OMP solver). Deterministic for a given packet stream, so the
    /// shard-determinism suite can pin that parallel decode does not
    /// change the numerics.
    pub solver_iters: u64,
}

/// Minimum pumps between repeat NACKs for the same missing sequence:
/// the node resends on every request it hears, so re-asking every
/// pump would burn its bounded retry budget before the first resend
/// had a chance to arrive.
const RENACK_INTERVAL_PUMPS: u64 = 2;

/// Retransmission requests per missing sequence before the gateway
/// gives up on it — the cumulative ACK then advances past the hole so
/// neither side keeps state for an unrecoverable message.
const MAX_RETRANSMIT_REQUESTS: u32 = 6;

/// Request history of one still-missing sequence number.
#[derive(Debug, Clone, Copy)]
struct MissingState {
    requests: u32,
    last_pump: u64,
}

/// Per-session downlink feedback state: what is missing, what was
/// already asked for, and the observation accumulators the adaptive
/// controller reads at pump time.
#[derive(Debug, Default)]
struct LinkFeedback {
    /// Still-missing sequence numbers → request history; bounded by
    /// the configured recovery window, oldest evicted.
    missing: BTreeMap<u32, MissingState>,
    pump_idx: u64,
    downlink_seq: u32,
    directive_seq: u32,
    acks_sent: u64,
    nacks_sent: u64,
    retransmits_requested: u64,
    recovered: u64,
    directives_issued: u64,
    // Observations since the last pump.
    prd_sum: f64,
    prd_count: u64,
    delivered_since: u64,
    lost_since: u64,
}

impl LinkFeedback {
    /// Records a lost run as retransmission candidates, keeping the
    /// newest `bound` missing sequences (zero disables NACKs).
    fn note_lost(&mut self, first_seq: u32, count: u32, bound: u32) {
        self.lost_since += u64::from(count);
        if bound == 0 || count == 0 {
            return;
        }
        let end = u64::from(first_seq) + u64::from(count); // exclusive
        let start = end - u64::from(count.min(bound));
        for s in start..end {
            self.missing.insert(
                s as u32,
                MissingState {
                    requests: 0,
                    last_pump: 0,
                },
            );
        }
        while self.missing.len() > bound as usize {
            self.missing.pop_first();
        }
    }
}

/// Per-session link-health report (see [`Gateway::session_report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The session.
    pub session: u64,
    /// Messages released in order.
    pub messages: u64,
    /// Messages declared lost on the uplink.
    pub lost: u64,
    /// Lost messages later recovered from retransmissions.
    pub recovered: u64,
    /// Unrecovered loss as a fraction of all resolved messages
    /// (`(lost − recovered) / (messages + lost)`), 0 for an idle
    /// session.
    pub loss_rate: f64,
    /// Cumulative-ACK frames sent to this session.
    pub acks_sent: u64,
    /// Selective-NACK frames sent to this session.
    pub nacks_sent: u64,
    /// Individual retransmissions requested (repeats count).
    pub retransmits_requested: u64,
    /// Adaptive-CR directives issued to this session.
    pub directives_issued: u64,
    /// Sequence numbers currently missing and still being chased.
    pub missing_now: u64,
    /// Compression ratio of the installed handshake (percent), when
    /// the session is open.
    pub cr_percent: Option<f64>,
}

/// One lead's attached PRD reference: `samples[0]` corresponds to
/// sample `offset` of the session's CS sample stream, i.e. window
/// `w` compares against `samples[w·n − offset ..][..n]`. Windows
/// outside the covered span simply report no PRD.
#[derive(Debug)]
struct LeadReference {
    offset: u64,
    samples: Vec<f64>,
}

#[derive(Debug)]
struct SessionState {
    decoder: SessionDecoder,
    handshake: Option<SessionHandshake>,
    feedback: LinkFeedback,
    controller: Option<LinkController>,
    rhythm: RhythmState,
    // Per-lead CS encoders, shared out of the gateway's MatrixCache
    // on first use (lead l seeds with seed + l, matching the node's
    // CsStage — see CsEncoder::for_lead).
    encoders: Vec<Option<Arc<CsEncoder>>>,
    // Per-lead warm-start state (previous window's solution + cached
    // Lipschitz constant); only valid for the current handshake's Φ.
    fista: Vec<FistaState>,
    // Reconstructed windows, keyed by (lead, window_seq).
    windows: BTreeMap<(u8, u32), Vec<f64>>,
    // Optional per-lead reference signals for PRD reporting.
    references: BTreeMap<u8, LeadReference>,
    // Reused measurement buffer.
    y_scratch: Vec<i64>,
}

impl SessionState {
    /// Installs a handshake; a *changed* handshake (new seed, shape)
    /// invalidates the cached sensing matrices, the warm-start states
    /// seeded through them, and the windows they reconstructed, so
    /// stale Φ can never silently produce plausible-looking garbage.
    fn install_handshake(&mut self, hs: SessionHandshake) {
        if self.handshake != Some(hs) {
            self.encoders.clear();
            self.fista.clear();
            self.windows.clear();
        }
        self.handshake = Some(hs);
    }

    fn new(session: u64, window: u32, recovery: u32) -> Result<Self> {
        Ok(SessionState {
            decoder: SessionDecoder::with_windows(session, window, recovery)?,
            handshake: None,
            feedback: LinkFeedback::default(),
            controller: None,
            rhythm: RhythmState::default(),
            encoders: Vec::new(),
            fista: Vec::new(),
            windows: BTreeMap::new(),
            references: BTreeMap::new(),
            y_scratch: Vec::new(),
        })
    }
}

#[derive(Debug)]
enum SolverImpl {
    Fista(Fista),
    Omp(Omp),
}

impl SolverImpl {
    /// Reconstructs one window, warm-started when a state is given.
    /// Returns the samples plus the iterations spent (0 for OMP).
    fn reconstruct(
        &self,
        enc: &CsEncoder,
        y: &[i64],
        state: Option<&mut FistaState>,
    ) -> Result<(Vec<f64>, usize)> {
        match self {
            SolverImpl::Fista(f) => {
                let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
                let solve = f.solve(enc.sensing_matrix(), &yf, state)?;
                Ok((solve.x, solve.iters))
            }
            SolverImpl::Omp(o) => {
                let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
                Ok((o.reconstruct(enc.sensing_matrix(), &yf)?, 0))
            }
        }
    }
}

/// The multi-session gateway service.
#[derive(Debug)]
pub struct Gateway {
    cfg: GatewayConfig,
    solver: SolverImpl,
    cache: Arc<MatrixCache>,
    sessions: BTreeMap<u64, SessionState>,
    stats: GatewayStats,
    /// Recording tap ([`GatewayConfig::tap`]): decoded observations
    /// awaiting [`Gateway::drain_tap`]. Gateway-level (not
    /// per-session) so items surfaced by a session's closing flush
    /// survive the session-state teardown.
    tap: Vec<(u64, TapItem)>,
}

impl Default for Gateway {
    fn default() -> Self {
        Gateway::new(GatewayConfig::default())
    }
}

impl Gateway {
    /// Gateway with the given configuration and a private
    /// [`MatrixCache`]. A zero `reorder_window` is clamped to 1 (the
    /// smallest meaningful window), so session construction can never
    /// fail mid-ingest over a config typo.
    pub fn new(cfg: GatewayConfig) -> Self {
        Gateway::with_cache(cfg, Arc::new(MatrixCache::new()))
    }

    /// Gateway sharing an existing sensing-matrix cache — how the
    /// sharded gateway's workers (and any co-located gateways) avoid
    /// rebuilding identical Φ per worker.
    pub fn with_cache(mut cfg: GatewayConfig, cache: Arc<MatrixCache>) -> Self {
        cfg.reorder_window = cfg.reorder_window.max(1);
        cfg.reconstruct_every = cfg.reconstruct_every.max(1);
        let solver = match cfg.solver {
            ReconstructionSolver::Fista(f) => SolverImpl::Fista(Fista::new(f)),
            ReconstructionSolver::Omp(o) => SolverImpl::Omp(Omp::new(o)),
        };
        Gateway {
            cfg,
            solver,
            cache,
            sessions: BTreeMap::new(),
            stats: GatewayStats::default(),
            tap: Vec::new(),
        }
    }

    /// Drains the recording tap: every buffered [`TapItem`] grouped
    /// by session, ascending by session id, items of one session in
    /// processing order. Empty unless [`GatewayConfig::tap`] is on.
    pub fn drain_tap(&mut self) -> Vec<(u64, Vec<TapItem>)> {
        let mut by_session: BTreeMap<u64, Vec<TapItem>> = BTreeMap::new();
        for (session, item) in self.tap.drain(..) {
            by_session.entry(session).or_default().push(item);
        }
        by_session.into_iter().collect()
    }

    /// Counters so far.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Handle on the sensing-matrix cache this gateway resolves Φ
    /// through.
    pub fn matrix_cache(&self) -> Arc<MatrixCache> {
        Arc::clone(&self.cache)
    }

    /// Counters of the sensing-matrix cache (shared ones include the
    /// traffic of every other gateway on the same cache).
    pub fn cache_stats(&self) -> MatrixCacheStats {
        self.cache.stats()
    }

    /// Sessions the gateway has seen packets (or registrations) for.
    pub fn session_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.sessions.keys().copied()
    }

    /// Opens (or re-opens) a session out of band (control plane), as
    /// an alternative to the in-band handshake message. Re-registering
    /// an existing session resets its link stream — fresh reassembler
    /// at sequence 0, cleared CS state, and **cleared downlink
    /// feedback** (missing set, downlink sequence, controller): stale
    /// NACK state must never ask a rebooted node (whose retransmit
    /// buffer is empty) for messages of its previous life, and the
    /// reborn stream's sequence numbers must not collide with old
    /// recovery bookkeeping. Without the reset, a long-lived
    /// reassembler would treat the reborn stream as stale stragglers
    /// forever. The rhythm/alert history is kept (it is an audit log
    /// of the subject, not of the link).
    ///
    /// # Errors
    ///
    /// Propagates decoder construction failures.
    pub fn register(&mut self, hs: SessionHandshake) -> Result<()> {
        let window = self.cfg.reorder_window;
        let recovery = self.cfg.recovery_window;
        let state = self.session_state(hs.session)?;
        state.decoder = SessionDecoder::with_windows(hs.session, window, recovery)?;
        state.feedback = LinkFeedback::default();
        state.controller = None;
        state.install_handshake(hs);
        Ok(())
    }

    /// Attaches the transmitted original of one lead so reconstructed
    /// windows report PRD against it (evaluation harnesses only — a
    /// production gateway has no original to compare with). The
    /// reference starts at sample 0 of the CS stream; see
    /// [`Gateway::attach_reference_at`] for mid-stream references.
    ///
    /// # Errors
    ///
    /// Propagates decoder construction failures for a new session.
    pub fn attach_reference(&mut self, session: u64, lead: u8, samples: Vec<f64>) -> Result<()> {
        self.attach_reference_at(session, lead, 0, samples)
    }

    /// Attaches a PRD reference whose first sample corresponds to
    /// sample `offset_samples` of the session's CS stream: window `w`
    /// (of `n` samples) compares against
    /// `samples[w·n − offset_samples ..][..n]`, and windows outside
    /// the covered span report no PRD. This is what lets a long-running
    /// harness probe reconstruction quality segment by segment without
    /// ever holding the whole session's original in memory. Attaching
    /// replaces the lead's previous reference and prunes retained
    /// windows from before the new span, so per-session sample history
    /// stays bounded by one reference span per lead.
    ///
    /// # Errors
    ///
    /// Propagates decoder construction failures for a new session.
    pub fn attach_reference_at(
        &mut self,
        session: u64,
        lead: u8,
        offset_samples: u64,
        samples: Vec<f64>,
    ) -> Result<()> {
        let state = self.session_state(session)?;
        if offset_samples > 0 {
            if let Some(hs) = state.handshake {
                let n = hs.cs_window as u64;
                state
                    .windows
                    .retain(|&(l, seq), _| l != lead || seq as u64 * n >= offset_samples);
            }
        }
        state.references.insert(
            lead,
            LeadReference {
                offset: offset_samples,
                samples,
            },
        );
        Ok(())
    }

    /// Rhythm/alert state of one session.
    pub fn rhythm(&self, session: u64) -> Option<&RhythmState> {
        self.sessions.get(&session).map(|s| &s.rhythm)
    }

    /// The handshake of one session, when received.
    pub fn handshake(&self, session: u64) -> Option<&SessionHandshake> {
        self.sessions
            .get(&session)
            .and_then(|s| s.handshake.as_ref())
    }

    /// One reconstructed window's samples. Retained only for leads
    /// with an attached reference ([`Gateway::attach_reference`]) —
    /// unreferenced sessions do not accumulate sample history.
    pub fn reconstructed_window(&self, session: u64, lead: u8, window_seq: u32) -> Option<&[f64]> {
        self.sessions
            .get(&session)?
            .windows
            .get(&(lead, window_seq))
            .map(Vec::as_slice)
    }

    /// All reconstructed `(window_seq, samples)` of one lead, in
    /// window order.
    pub fn reconstructed_windows(
        &self,
        session: u64,
        lead: u8,
    ) -> impl Iterator<Item = (u32, &[f64])> + '_ {
        self.sessions.get(&session).into_iter().flat_map(move |s| {
            s.windows
                .range((lead, 0)..=(lead, u32::MAX))
                .map(|((_, seq), w)| (*seq, w.as_slice()))
        })
    }

    /// Ingests one raw packet off the channel: CRC check, session
    /// routing, reassembly, decoding, and whatever state updates the
    /// decoded items imply. Returns the events this packet produced.
    ///
    /// # Errors
    ///
    /// Packet-level rejections are typed errors:
    /// [`LinkError::CrcMismatch`] for corruption (counted in
    /// [`GatewayStats::crc_rejected`]) and truncation/header/conflict
    /// errors from the link layer; a rejected packet never changes
    /// payload-visible state. Message-level problems — a payload that
    /// reassembled but cannot be decoded, or a CS window whose session
    /// has no handshake ([`LinkError::NoHandshake`]) — surface as
    /// [`GatewayEvent::PayloadRejected`] events instead, so the valid
    /// messages released by the same packet are never discarded.
    pub fn ingest(&mut self, raw: &[u8]) -> Result<Vec<GatewayEvent>> {
        self.stats.packets += 1;
        let pkt = match LinkPacket::decode(raw) {
            Ok(p) => p,
            Err(e) => {
                if matches!(e, WbsnError::Link(LinkError::CrcMismatch { .. })) {
                    self.stats.crc_rejected += 1;
                } else {
                    self.stats.rejected += 1;
                }
                return Err(e);
            }
        };
        let state = self.session_state(pkt.session)?;
        let mut items = Vec::new();
        if let Err(e) = state.decoder.accept(&pkt, &mut items) {
            self.stats.rejected += 1;
            return Err(e);
        }
        Ok(self.handle_items(pkt.session, items))
    }

    /// End of stream: drains every session's reassembler and processes
    /// the tails (sessions in id order).
    pub fn flush_sessions(&mut self) -> Vec<GatewayEvent> {
        self.flush_sessions_tagged()
            .into_iter()
            .flat_map(|(_, ev)| ev)
            .collect()
    }

    /// [`Gateway::flush_sessions`] with each session's events grouped
    /// under its id (ids ascending). The sharded gateway merges its
    /// workers' flushes through this form so the merged order is
    /// identical to a single gateway's.
    pub fn flush_sessions_tagged(&mut self) -> Vec<(u64, Vec<GatewayEvent>)> {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        ids.into_iter()
            .map(|id| {
                let mut items = Vec::new();
                if let Some(state) = self.sessions.get_mut(&id) {
                    state.decoder.flush(&mut items);
                }
                (id, self.handle_items(id, items))
            })
            .collect()
    }

    /// One downlink pump: for every session (ids ascending) emits the
    /// feedback frames the node should hear *now*, as raw wire bytes
    /// ready for the return channel.
    ///
    /// * Always one [`DownlinkFrame::Ack`] or [`DownlinkFrame::Nack`]
    ///   carrying the cumulative ACK — the lowest still-missing
    ///   sequence when one exists, else the reassembler's in-order
    ///   cursor, so the node never trims a message the gateway may yet
    ///   ask for. NACKs list up to [`NACK_MAX_MISSING`] missing
    ///   sequences, pacing repeats (`RENACK_INTERVAL_PUMPS` pumps
    ///   apart, capped at `MAX_RETRANSMIT_REQUESTS` per sequence —
    ///   then the gateway gives the sequence up and the ACK advances
    ///   past the hole).
    /// * When a [`ControllerConfig`] is configured and the session is
    ///   open, the per-session [`LinkController`] reads the window's
    ///   observations (mean PRD, loss rate) and may append one
    ///   [`DownlinkFrame::Directive`].
    ///
    /// Deterministic: same ingest history, same pump cadence → the
    /// same frames, bit for bit. The sharded gateway merges its
    /// workers' pumps by ascending session id into the identical
    /// sequence.
    pub fn pump_downlink(&mut self) -> Vec<(u64, Vec<Vec<u8>>)> {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        let controller_cfg = self.cfg.controller.clone();
        let mut out = Vec::new();
        for id in ids {
            let Some(state) = self.sessions.get_mut(&id) else {
                continue;
            };
            let fb = &mut state.feedback;
            fb.pump_idx += 1;
            let pump = fb.pump_idx;
            // Give up on sequences already asked for too often.
            fb.missing
                .retain(|_, m| m.requests < MAX_RETRANSMIT_REQUESTS);
            let cum_ack = fb
                .missing
                .first_key_value()
                .map(|(&s, _)| s)
                .unwrap_or_else(|| state.decoder.next_seq());
            let mut request: Vec<u32> = Vec::new();
            for (&seq, m) in fb.missing.iter_mut() {
                if request.len() >= NACK_MAX_MISSING {
                    break;
                }
                if m.requests == 0 || pump.saturating_sub(m.last_pump) >= RENACK_INTERVAL_PUMPS {
                    m.requests += 1;
                    m.last_pump = pump;
                    request.push(seq);
                }
            }
            let mut frames = Vec::new();
            let frame = if request.is_empty() {
                fb.acks_sent += 1;
                self.stats.acks_sent += 1;
                DownlinkFrame::Ack { cum_ack }
            } else {
                fb.nacks_sent += 1;
                fb.retransmits_requested += request.len() as u64;
                self.stats.nacks_sent += 1;
                self.stats.retransmits_requested += request.len() as u64;
                DownlinkFrame::Nack {
                    cum_ack,
                    missing: request,
                }
            };
            let seq = fb.downlink_seq;
            fb.downlink_seq = fb.downlink_seq.wrapping_add(1);
            frames.push(frame.to_wire(id, seq));
            // Adaptive CR: one directive at most per pump, dwell-gated
            // inside the controller.
            if let (Some(cc), Some(hs)) = (&controller_cfg, state.handshake.as_ref()) {
                let cr_now =
                    100.0 * (1.0 - f64::from(hs.cs_measurements) / f64::from(hs.cs_window.max(1)));
                let mean_prd = (fb.prd_count > 0).then(|| fb.prd_sum / fb.prd_count as f64);
                let resolved = fb.delivered_since + fb.lost_since;
                let loss_rate = (resolved > 0).then(|| fb.lost_since as f64 / resolved as f64);
                let ctrl = state
                    .controller
                    .get_or_insert_with(|| LinkController::new(cc.clone()));
                if let Some(action) = ctrl.observe(cr_now, mean_prd, loss_rate) {
                    let fb = &mut state.feedback;
                    let directive = DirectiveFrame {
                        directive_seq: fb.directive_seq,
                        action,
                    };
                    fb.directive_seq = fb.directive_seq.wrapping_add(1);
                    fb.directives_issued += 1;
                    self.stats.directives_issued += 1;
                    let seq = fb.downlink_seq;
                    fb.downlink_seq = fb.downlink_seq.wrapping_add(1);
                    frames.push(DownlinkFrame::Directive(directive).to_wire(id, seq));
                }
            }
            // The observation window closes with the pump.
            let fb = &mut state.feedback;
            fb.prd_sum = 0.0;
            fb.prd_count = 0;
            fb.delivered_since = 0;
            fb.lost_since = 0;
            out.push((id, frames));
        }
        out
    }

    /// Link-health report of one session, or `None` for a session this
    /// gateway never saw.
    pub fn session_report(&self, session: u64) -> Option<SessionReport> {
        let state = self.sessions.get(&session)?;
        let r = state.decoder.stats();
        let fb = &state.feedback;
        let resolved = r.messages + r.lost;
        let unrecovered = r.lost.saturating_sub(r.recovered);
        Some(SessionReport {
            session,
            messages: r.messages,
            lost: r.lost,
            recovered: r.recovered,
            loss_rate: if resolved > 0 {
                unrecovered as f64 / resolved as f64
            } else {
                0.0
            },
            acks_sent: fb.acks_sent,
            nacks_sent: fb.nacks_sent,
            retransmits_requested: fb.retransmits_requested,
            directives_issued: fb.directives_issued,
            missing_now: fb.missing.len() as u64,
            cr_percent: state.handshake.as_ref().map(|hs| {
                100.0 * (1.0 - f64::from(hs.cs_measurements) / f64::from(hs.cs_window.max(1)))
            }),
        })
    }

    /// Link-health reports of every session, ids ascending.
    pub fn session_reports(&self) -> Vec<SessionReport> {
        self.sessions
            .keys()
            .filter_map(|&id| self.session_report(id))
            .collect()
    }

    /// Closes one session: drains its reassembler tail, processes it,
    /// and drops all per-session state (decoder, rhythm log, warm
    /// solver state, reconstructed windows). Returns the tail's events,
    /// or `None` for a session this gateway never saw.
    pub fn close_session(&mut self, session: u64) -> Option<Vec<GatewayEvent>> {
        let state = self.sessions.get_mut(&session)?;
        let mut items = Vec::new();
        state.decoder.flush(&mut items);
        let events = self.handle_items(session, items);
        self.sessions.remove(&session);
        Some(events)
    }

    fn session_state(&mut self, session: u64) -> Result<&mut SessionState> {
        let window = self.cfg.reorder_window;
        let recovery = self.cfg.recovery_window;
        Ok(match self.sessions.entry(session) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(SessionState::new(session, window, recovery)?)
            }
        })
    }

    fn handle_items(&mut self, session: u64, items: Vec<SessionItem>) -> Vec<GatewayEvent> {
        let mut events = Vec::new();
        for item in items {
            match item {
                SessionItem::Lost { first_seq, count } => {
                    self.stats.messages_lost += u64::from(count);
                    let bound = self.cfg.recovery_window;
                    if let Some(state) = self.sessions.get_mut(&session) {
                        state.feedback.note_lost(first_seq, count, bound);
                    }
                    events.push(GatewayEvent::MessageLost {
                        session,
                        first_seq,
                        count,
                    });
                    if self.cfg.tap {
                        self.tap.push((session, TapItem::Lost { first_seq, count }));
                    }
                }
                SessionItem::Rejected { msg_seq, error } => {
                    self.stats.items_rejected += 1;
                    events.push(GatewayEvent::PayloadRejected {
                        session,
                        msg_seq,
                        error,
                    });
                }
                SessionItem::Handshake(hs) => {
                    if let Some(state) = self.sessions.get_mut(&session) {
                        state.install_handshake(hs);
                        events.push(GatewayEvent::SessionOpened { session });
                        if self.cfg.tap {
                            self.tap.push((session, TapItem::Handshake(hs)));
                        }
                    }
                }
                SessionItem::Payload { msg_seq, payload } => {
                    self.stats.payloads += 1;
                    if let Some(state) = self.sessions.get_mut(&session) {
                        state.feedback.delivered_since += 1;
                    }
                    if let Err(error) = self.handle_payload(session, msg_seq, payload, &mut events)
                    {
                        self.stats.items_rejected += 1;
                        events.push(GatewayEvent::PayloadRejected {
                            session,
                            msg_seq,
                            error,
                        });
                    }
                }
                SessionItem::RecoveredHandshake { msg_seq, hs } => {
                    self.stats.messages_recovered += 1;
                    if let Some(state) = self.sessions.get_mut(&session) {
                        state.feedback.recovered += 1;
                        state.feedback.missing.remove(&msg_seq);
                        events.push(GatewayEvent::MessageRecovered { session, msg_seq });
                        state.install_handshake(hs);
                        events.push(GatewayEvent::SessionOpened { session });
                        if self.cfg.tap {
                            self.tap.push((session, TapItem::Recovered { msg_seq }));
                            self.tap.push((session, TapItem::Handshake(hs)));
                        }
                    }
                }
                SessionItem::Recovered { msg_seq, payload } => {
                    self.stats.payloads += 1;
                    self.stats.messages_recovered += 1;
                    if let Some(state) = self.sessions.get_mut(&session) {
                        state.feedback.recovered += 1;
                        state.feedback.missing.remove(&msg_seq);
                    }
                    if self.cfg.tap {
                        self.tap.push((session, TapItem::Recovered { msg_seq }));
                    }
                    events.push(GatewayEvent::MessageRecovered { session, msg_seq });
                    if let Err(error) = self.handle_payload(session, msg_seq, payload, &mut events)
                    {
                        self.stats.items_rejected += 1;
                        events.push(GatewayEvent::PayloadRejected {
                            session,
                            msg_seq,
                            error,
                        });
                    }
                }
            }
        }
        events
    }

    fn handle_payload(
        &mut self,
        session: u64,
        msg_seq: u32,
        payload: Payload,
        events: &mut Vec<GatewayEvent>,
    ) -> Result<()> {
        let cache = Arc::clone(&self.cache);
        let Some(state) = self.sessions.get_mut(&session) else {
            // `ingest` routes through `session_state` before any item
            // reaches here, but a typed error keeps the wire surface
            // panic-free even if that routing ever changes.
            return Err(LinkError::NoHandshake { session }.into());
        };
        match payload {
            Payload::Events {
                n_beats,
                mean_hr_x10,
                af_burden_pct,
                af_active,
                ..
            } => {
                if self.cfg.tap {
                    self.tap.push((
                        session,
                        TapItem::Rhythm {
                            msg_seq,
                            n_beats,
                            mean_hr_x10,
                            af_burden_pct,
                            af_active,
                        },
                    ));
                }
                let was_active = state.rhythm.af_active;
                state.rhythm.af_active = af_active;
                state.rhythm.af_burden_pct = af_burden_pct;
                state.rhythm.mean_hr_x10 = mean_hr_x10;
                state.rhythm.beats_reported += u64::from(n_beats);
                state.rhythm.events_seen += 1;
                if af_active && !was_active {
                    state.rhythm.alerts.push(AlertEvent {
                        msg_seq,
                        af_burden_pct,
                    });
                    events.push(GatewayEvent::AfAlert {
                        session,
                        msg_seq,
                        af_burden_pct,
                    });
                } else if !af_active && was_active {
                    events.push(GatewayEvent::AfCleared { session, msg_seq });
                }
            }
            Payload::Beats { beats } => {
                state.rhythm.beats_received += beats.len() as u64;
                if self.cfg.tap {
                    self.tap.push((session, TapItem::Beats { msg_seq, beats }));
                }
            }
            Payload::CsWindow {
                lead,
                window_seq,
                measurements,
            } => {
                if !self.cfg.reconstruct_cs {
                    return Ok(());
                }
                let Some(hs) = state.handshake else {
                    return Err(LinkError::NoHandshake { session }.into());
                };
                let every = self.cfg.reconstruct_every.max(1);
                if every > 1 && window_seq % every != 0 {
                    // Periodic probing: the skip decision depends only
                    // on window_seq, so it is invariant to arrival
                    // order and worker count.
                    self.stats.windows_skipped += 1;
                    if self.cfg.tap {
                        // Skipped windows are still archived — the
                        // measurements are what replay re-solves from.
                        self.tap.push((
                            session,
                            TapItem::CsWindow {
                                lead,
                                window_seq,
                                prd: None,
                                measurements,
                                samples: Vec::new(),
                            },
                        ));
                    }
                    return Ok(());
                }
                if state.encoders.len() <= lead as usize {
                    state.encoders.resize(lead as usize + 1, None);
                    state.fista.resize(lead as usize + 1, FistaState::new());
                }
                let enc = match &state.encoders[lead as usize] {
                    Some(enc) => Arc::clone(enc),
                    // Resolve the node's sensing matrix through the
                    // shared cache (lead l seeds with seed + l,
                    // matching the node's CsStage).
                    None => {
                        let enc = cache.get_or_build(MatrixKey {
                            window: hs.cs_window,
                            measurements: hs.cs_measurements,
                            d_per_col: hs.cs_d_per_col,
                            seed: hs.seed,
                            lead,
                        })?;
                        state.encoders[lead as usize] = Some(Arc::clone(&enc));
                        enc
                    }
                };
                state.y_scratch.clear();
                state
                    .y_scratch
                    .extend(measurements.iter().map(|&v| v as i64));
                let warm = if self.cfg.warm_start {
                    Some(&mut state.fista[lead as usize])
                } else {
                    None
                };
                let (xr, iters) = self.solver.reconstruct(&enc, &state.y_scratch, warm)?;
                self.stats.solver_iters += iters as u64;
                let n = hs.cs_window as usize;
                let prd = state.references.get(&lead).and_then(|reference| {
                    let start =
                        (window_seq as u64 * n as u64).checked_sub(reference.offset)? as usize;
                    let orig = reference.samples.get(start..start + n)?;
                    // A zero-energy reference window (a dropped
                    // electrode reads a flat baseline) has no defined
                    // PRD; report the window unscored instead of
                    // letting `prd_percent`'s zero-signal assert kill
                    // the worker.
                    if orig.iter().all(|&v| v == 0.0) {
                        return None;
                    }
                    Some(prd_percent(orig, &xr))
                });
                if let Some(p) = prd {
                    state.feedback.prd_sum += p;
                    state.feedback.prd_count += 1;
                }
                if self.cfg.tap {
                    // Archive the full observation: raw measurements
                    // (replay's solver input), the reconstruction, and
                    // the live PRD (replay's comparison baseline).
                    self.tap.push((
                        session,
                        TapItem::CsWindow {
                            lead,
                            window_seq,
                            prd,
                            measurements,
                            samples: xr.clone(),
                        },
                    ));
                }
                // Samples are retained only for windows the attached
                // reference actually covers (the evaluation harness
                // needs them for PRD/replay queries); a production
                // session would otherwise grow ~4 kB per window
                // forever, and a segment-probing harness would grow by
                // every window outside its current reference span.
                if prd.is_some() {
                    state.windows.insert((lead, window_seq), xr);
                }
                self.stats.windows_reconstructed += 1;
                events.push(GatewayEvent::WindowReconstructed {
                    session,
                    lead,
                    window_seq,
                    prd_percent: prd,
                });
            }
            Payload::RawChunk { .. } => {
                // Raw chunks need no gateway-side processing; they are
                // the signal. Counted via `stats.payloads`.
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_core::level::ProcessingLevel;
    use wbsn_core::link::Uplink;
    use wbsn_core::monitor::MonitorBuilder;
    use wbsn_ecg_synth::noise::NoiseConfig;
    use wbsn_ecg_synth::{RecordBuilder, Rhythm};

    #[test]
    fn af_alert_surfaces_and_logs() {
        let rec = RecordBuilder::new(7)
            .duration_s(60.0)
            .n_leads(3)
            .rhythm(Rhythm::AtrialFibrillation { mean_hr_bpm: 95.0 })
            .noise(NoiseConfig::ambulatory(20.0))
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::Classified)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(1, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(1, &payloads, &mut packets).unwrap();
        let mut gw = Gateway::default();
        let mut events = Vec::new();
        for p in &packets {
            events.extend(gw.ingest(p).unwrap());
        }
        events.extend(gw.flush_sessions());
        assert!(events
            .iter()
            .any(|e| matches!(e, GatewayEvent::AfAlert { session: 1, .. })));
        let rhythm = gw.rhythm(1).unwrap();
        assert!(!rhythm.alerts.is_empty());
        assert!(rhythm.events_seen > 0);
    }

    #[test]
    fn cs_windows_reconstruct_with_prd_against_reference() {
        let rec = RecordBuilder::new(21)
            .duration_s(10.0)
            .n_leads(1)
            .noise(NoiseConfig::clean())
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_compression_ratio(50.0)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(4, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(4, &payloads, &mut packets).unwrap();
        let mut gw = Gateway::default();
        gw.attach_reference(4, 0, rec.lead(0).iter().map(|&v| v as f64).collect())
            .unwrap();
        let mut events = Vec::new();
        for p in &packets {
            events.extend(gw.ingest(p).unwrap());
        }
        events.extend(gw.flush_sessions());
        let prds: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                GatewayEvent::WindowReconstructed {
                    prd_percent: Some(prd),
                    ..
                } => Some(*prd),
                _ => None,
            })
            .collect();
        assert!(prds.len() >= 4, "windows {}", prds.len());
        let avg = prds.iter().sum::<f64>() / prds.len() as f64;
        assert!(avg < 9.0, "avg PRD {avg}%");
        // The reconstructed signal is queryable window by window.
        assert!(gw.reconstructed_window(4, 0, 0).is_some());
        assert_eq!(
            gw.reconstructed_windows(4, 0).count() as u64,
            gw.stats().windows_reconstructed
        );
    }

    /// Shared setup for the reconstruct_every / mid-stream-reference
    /// tests: one clean single-lead CS session, framed and ready to
    /// ingest, with its original lead returned for references.
    fn cs_session_packets(session: u64) -> (Vec<Vec<u8>>, Vec<f64>) {
        let rec = RecordBuilder::new(21)
            .duration_s(10.0)
            .n_leads(1)
            .noise(NoiseConfig::clean())
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_compression_ratio(50.0)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(session, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(session, &payloads, &mut packets).unwrap();
        let original = rec.lead(0).iter().map(|&v| v as f64).collect();
        (packets, original)
    }

    fn run_cs(gw: &mut Gateway, packets: &[Vec<u8>]) -> Vec<GatewayEvent> {
        let mut events = Vec::new();
        for p in packets {
            events.extend(gw.ingest(p).unwrap());
        }
        events.extend(gw.flush_sessions());
        events
    }

    #[test]
    fn reconstruct_every_probes_periodically() {
        // Cold solves on both sides: skipping windows changes the
        // warm-start chain, so exact PRD equality only holds cold.
        let (packets, original) = cs_session_packets(6);
        let mut full = Gateway::new(GatewayConfig {
            warm_start: false,
            ..GatewayConfig::default()
        });
        full.attach_reference(6, 0, original.clone()).unwrap();
        let full_events = run_cs(&mut full, &packets);
        let total = full.stats().windows_reconstructed;
        assert!(total >= 4);

        let mut probing = Gateway::new(GatewayConfig {
            reconstruct_every: 3,
            warm_start: false,
            ..GatewayConfig::default()
        });
        probing.attach_reference(6, 0, original).unwrap();
        let probe_events = run_cs(&mut probing, &packets);
        // Every window was either solved or counted as skipped…
        let s = probing.stats();
        assert_eq!(s.windows_reconstructed + s.windows_skipped, total);
        assert!(s.windows_skipped > 0);
        // …and solved windows are exactly the window_seq multiples of
        // 3, with PRDs identical to the full run's (cold-solve inputs
        // are unchanged; only which windows get solved differs).
        let pick = |events: &[GatewayEvent]| -> Vec<(u32, Option<f64>)> {
            events
                .iter()
                .filter_map(|e| match e {
                    GatewayEvent::WindowReconstructed {
                        window_seq,
                        prd_percent,
                        ..
                    } => Some((*window_seq, *prd_percent)),
                    _ => None,
                })
                .collect()
        };
        let probed = pick(&probe_events);
        assert!(probed.iter().all(|(seq, _)| seq % 3 == 0));
        let full_map: Vec<(u32, Option<f64>)> = pick(&full_events)
            .into_iter()
            .filter(|(seq, _)| seq % 3 == 0)
            .collect();
        assert_eq!(probed.len(), full_map.len());
        for ((sa, pa), (sb, pb)) in probed.iter().zip(&full_map) {
            assert_eq!(sa, sb);
            assert_eq!(pa.unwrap(), pb.unwrap(), "window {sa}");
        }
        // Zero clamps to 1 — everything reconstructs.
        let mut clamped = Gateway::new(GatewayConfig {
            reconstruct_every: 0,
            ..GatewayConfig::default()
        });
        run_cs(&mut clamped, &packets);
        assert_eq!(clamped.stats().windows_reconstructed, total);
        assert_eq!(clamped.stats().windows_skipped, 0);
    }

    #[test]
    fn mid_stream_reference_scopes_prd_and_retention() {
        let (packets, original) = cs_session_packets(8);
        // Full reference for ground truth.
        let mut full = Gateway::default();
        full.attach_reference(8, 0, original.clone()).unwrap();
        let full_events = run_cs(&mut full, &packets);
        let n = 512usize;
        // Mid-stream reference covering only windows 2 and 3.
        let offset = 2 * n as u64;
        let mut gw = Gateway::default();
        gw.attach_reference_at(8, 0, offset, original[2 * n..4 * n].to_vec())
            .unwrap();
        let events = run_cs(&mut gw, &packets);
        let prd_of = |events: &[GatewayEvent], want: u32| -> Option<f64> {
            events.iter().find_map(|e| match e {
                GatewayEvent::WindowReconstructed {
                    window_seq,
                    prd_percent,
                    ..
                } if *window_seq == want => Some(*prd_percent),
                _ => None,
            })?
        };
        // Windows outside the span report no PRD; inside, the PRD is
        // exactly what the full reference reports.
        assert_eq!(prd_of(&events, 0), None);
        assert_eq!(prd_of(&events, 1), None);
        for w in 2..4u32 {
            let scoped = prd_of(&events, w).expect("covered window has PRD");
            assert_eq!(scoped, prd_of(&full_events, w).unwrap(), "window {w}");
        }
        // Retention is scoped the same way — memory stays bounded by
        // the reference span.
        assert!(gw.reconstructed_window(8, 0, 0).is_none());
        assert!(gw.reconstructed_window(8, 0, 2).is_some());
        // Re-attaching a later span prunes the old one's windows.
        gw.attach_reference_at(8, 0, 3 * n as u64, original[3 * n..4 * n].to_vec())
            .unwrap();
        assert!(gw.reconstructed_window(8, 0, 2).is_none());
        assert!(gw.reconstructed_window(8, 0, 3).is_some());
    }

    #[test]
    fn omp_solver_reconstructs_too() {
        let rec = RecordBuilder::new(21)
            .duration_s(4.1)
            .n_leads(1)
            .noise(NoiseConfig::clean())
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_compression_ratio(40.0)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(2, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(2, &payloads, &mut packets).unwrap();
        let mut gw = Gateway::new(GatewayConfig {
            solver: ReconstructionSolver::Omp(wbsn_cs::omp::OmpConfig::default()),
            ..GatewayConfig::default()
        });
        gw.attach_reference(2, 0, rec.lead(0).iter().map(|&v| v as f64).collect())
            .unwrap();
        let mut prds = Vec::new();
        for p in &packets {
            for ev in gw.ingest(p).unwrap() {
                if let GatewayEvent::WindowReconstructed {
                    prd_percent: Some(prd),
                    ..
                } = ev
                {
                    prds.push(prd);
                }
            }
        }
        assert_eq!(prds.len(), 2);
        // The greedy baseline reconstructs usable windows at a low CR;
        // it is an ablation, not the production decoder, so the bar is
        // looser than FISTA's.
        assert!(prds.iter().all(|&p| p < 40.0), "{prds:?}");
    }

    #[test]
    fn zero_energy_reference_window_reports_no_prd() {
        // A dropped electrode reads a flat baseline: the reference
        // window has zero signal energy and PRD is undefined there.
        // The window must come back unscored — not kill the worker
        // through `prd_percent`'s zero-signal assert.
        let rec = RecordBuilder::new(23)
            .duration_s(4.1)
            .n_leads(1)
            .noise(NoiseConfig::clean())
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_compression_ratio(50.0)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(5, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(5, &payloads, &mut packets).unwrap();
        let mut gw = Gateway::default();
        gw.attach_reference(5, 0, vec![0.0; rec.n_samples()])
            .unwrap();
        let mut windows = 0;
        for p in &packets {
            for ev in gw.ingest(p).unwrap() {
                if let GatewayEvent::WindowReconstructed { prd_percent, .. } = ev {
                    assert_eq!(prd_percent, None);
                    windows += 1;
                }
            }
        }
        assert_eq!(windows, 2);
        assert_eq!(gw.stats().windows_reconstructed, 2);
    }

    #[test]
    fn reregistration_recovers_a_restarted_node() {
        let p = Payload::Events {
            n_beats: 4,
            class_counts: [4, 0, 0, 0],
            mean_hr_x10: 650,
            af_burden_pct: 0,
            af_active: false,
        };
        let hs = SessionHandshake {
            version: wbsn_core::link::PROTOCOL_VERSION,
            session: 3,
            fs_hz: 250,
            n_leads: 3,
            cs_window: 512,
            cs_measurements: 256,
            cs_d_per_col: 4,
            seed: 9,
        };
        let mut gw = Gateway::default();
        // First life of the node: handshake + 5 payloads.
        let mut framer = wbsn_core::link::LinkFramer::new(3);
        let mut packets = Vec::new();
        framer.frame_handshake(&hs, &mut packets).unwrap();
        for _ in 0..5 {
            framer.frame_payload(&p, &mut packets).unwrap();
        }
        for raw in &packets {
            gw.ingest(raw).unwrap();
        }
        assert_eq!(gw.stats().payloads, 5);
        // The node reboots: its framer restarts at message 0. Without
        // re-registration the reborn stream is stale to the old
        // reassembler...
        let mut reborn = wbsn_core::link::LinkFramer::new(3);
        let mut packets = Vec::new();
        reborn.frame_handshake(&hs, &mut packets).unwrap();
        reborn.frame_payload(&p, &mut packets).unwrap();
        for raw in &packets {
            assert!(gw.ingest(raw).unwrap().is_empty());
        }
        assert_eq!(gw.stats().payloads, 5, "stale stream must not decode");
        // ... and with it, the stream decodes again from sequence 0.
        gw.register(hs).unwrap();
        let mut packets = Vec::new();
        let mut reborn = wbsn_core::link::LinkFramer::new(3);
        reborn.frame_handshake(&hs, &mut packets).unwrap();
        reborn.frame_payload(&p, &mut packets).unwrap();
        let mut events = Vec::new();
        for raw in &packets {
            events.extend(gw.ingest(raw).unwrap());
        }
        assert_eq!(gw.stats().payloads, 6);
        assert!(events
            .iter()
            .any(|e| matches!(e, GatewayEvent::SessionOpened { session: 3 })));
    }

    #[test]
    fn nack_driven_retransmission_recovers_a_lost_message() {
        use wbsn_core::retransmit::{RetransmitBuffer, RetransmitConfig};

        let hs = SessionHandshake {
            version: wbsn_core::link::PROTOCOL_VERSION,
            session: 6,
            fs_hz: 250,
            n_leads: 1,
            cs_window: 256,
            cs_measurements: 128,
            cs_d_per_col: 4,
            seed: 1,
        };
        let payload = Payload::Events {
            n_beats: 2,
            class_counts: [2, 0, 0, 0],
            mean_hr_x10: 700,
            af_burden_pct: 0,
            af_active: false,
        };
        let mut gw = Gateway::new(GatewayConfig {
            reorder_window: 4,
            recovery_window: 16,
            ..GatewayConfig::default()
        });
        let mut uplink = wbsn_core::link::Uplink::new();
        let mut node_buf = RetransmitBuffer::new(RetransmitConfig::default()).unwrap();
        let mut rt_events = Vec::new();
        let mut wire = Vec::new();
        uplink.open_session(&hs, &mut wire).unwrap();
        for raw in wire.drain(..) {
            gw.ingest(&raw).unwrap();
        }
        // 12 payload messages; message 5 is dropped by the "channel"
        // but retained in the node's retransmit buffer.
        for _ in 0..12 {
            let mut pkts = Vec::new();
            let msg_seq = uplink.frame_one(6, &payload, &mut pkts).unwrap();
            node_buf.record(msg_seq, &pkts, &mut rt_events);
            if msg_seq == 5 {
                continue;
            }
            for raw in &pkts {
                gw.ingest(raw).unwrap();
            }
        }
        assert_eq!(gw.stats().messages_lost, 1);
        assert_eq!(gw.stats().payloads, 11);
        // First pump: a NACK naming message 5, cum-ack stuck below it.
        let pumped = gw.pump_downlink();
        assert_eq!(pumped.len(), 1);
        let (session, frames) = &pumped[0];
        assert_eq!(*session, 6);
        assert_eq!(frames.len(), 1);
        let frame = DownlinkFrame::from_wire(&frames[0]).unwrap();
        assert_eq!(
            frame,
            DownlinkFrame::Nack {
                cum_ack: 5,
                missing: vec![5],
            }
        );
        // The node hears it: everything below 5 is trimmed, message 5
        // is resent.
        let mut resent = Vec::new();
        assert!(node_buf.on_frame(&frame, &mut resent, &mut rt_events));
        assert!(!resent.is_empty());
        assert_eq!(node_buf.buffered_messages(), 8, "0..5 trimmed, 5.. kept");
        let mut events = Vec::new();
        for raw in &resent {
            events.extend(gw.ingest(raw).unwrap());
        }
        assert!(events.iter().any(|e| matches!(
            e,
            GatewayEvent::MessageRecovered {
                session: 6,
                msg_seq: 5
            }
        )));
        assert_eq!(gw.stats().messages_recovered, 1);
        assert_eq!(gw.stats().payloads, 12, "the recovered payload counts");
        // Next pump: the hole is gone, the cumulative ACK covers the
        // whole stream (handshake + 12 payloads = sequences 0..=12).
        let pumped = gw.pump_downlink();
        let frame = DownlinkFrame::from_wire(&pumped[0].1[0]).unwrap();
        assert_eq!(frame, DownlinkFrame::Ack { cum_ack: 13 });
        node_buf.on_frame(&frame, &mut resent, &mut rt_events);
        assert_eq!(node_buf.buffered_messages(), 0);
        // The report reflects the episode: one loss, fully recovered.
        let report = gw.session_report(6).unwrap();
        assert_eq!(report.lost, 1);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.loss_rate, 0.0);
        assert_eq!(report.nacks_sent, 1);
        assert_eq!(report.acks_sent, 1);
        assert_eq!(report.retransmits_requested, 1);
        assert_eq!(report.directives_issued, 0);
        assert_eq!(report.missing_now, 0);
        assert_eq!(report.cr_percent, Some(50.0));
    }

    #[test]
    fn reregistration_discards_stale_nack_state() {
        let hs = SessionHandshake {
            version: wbsn_core::link::PROTOCOL_VERSION,
            session: 2,
            fs_hz: 250,
            n_leads: 1,
            cs_window: 256,
            cs_measurements: 128,
            cs_d_per_col: 4,
            seed: 3,
        };
        let payload = Payload::Events {
            n_beats: 1,
            class_counts: [1, 0, 0, 0],
            mean_hr_x10: 600,
            af_burden_pct: 0,
            af_active: false,
        };
        let mut gw = Gateway::new(GatewayConfig {
            reorder_window: 2,
            recovery_window: 8,
            ..GatewayConfig::default()
        });
        gw.register(hs).unwrap();
        // First life: messages 0..6 with 2 dropped → a missing entry.
        let mut framer = wbsn_core::link::LinkFramer::new(2);
        let mut wire = Vec::new();
        for _ in 0..6 {
            framer.frame_payload(&payload, &mut wire).unwrap();
        }
        for (i, raw) in wire.iter().enumerate() {
            if i != 2 {
                gw.ingest(raw).unwrap();
            }
        }
        let report = gw.session_report(2).unwrap();
        assert_eq!(report.missing_now, 1);
        // The node reboots mid-retransmission; re-registration clears
        // the stale NACK state, so the first pump of the new life is a
        // clean cumulative ACK at sequence 0 — the gateway never asks
        // the reborn node (whose buffer is empty) for its old life.
        gw.register(hs).unwrap();
        let report = gw.session_report(2).unwrap();
        assert_eq!(report.missing_now, 0);
        assert_eq!(report.nacks_sent, 0);
        let pumped = gw.pump_downlink();
        let frame = DownlinkFrame::from_wire(&pumped[0].1[0]).unwrap();
        assert_eq!(frame, DownlinkFrame::Ack { cum_ack: 0 });
    }

    #[test]
    fn cs_without_handshake_is_a_typed_error() {
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_window(256)
            .build()
            .unwrap();
        let payloads = node.push_block(&vec![0i32; 256], 256).unwrap();
        assert!(!payloads.is_empty());
        // Frame the payloads on a session the gateway never got a
        // handshake for.
        let mut framer = wbsn_core::link::LinkFramer::new(8);
        let mut packets = Vec::new();
        for p in &payloads {
            framer.frame_payload(p, &mut packets).unwrap();
        }
        let mut gw = Gateway::default();
        let mut rejections = Vec::new();
        for p in &packets {
            for ev in gw.ingest(p).unwrap() {
                if let GatewayEvent::PayloadRejected { session, error, .. } = ev {
                    rejections.push((session, error));
                }
            }
        }
        assert!(!rejections.is_empty(), "missing handshake went unnoticed");
        assert!(rejections
            .iter()
            .all(|(s, e)| *s == 8
                && matches!(e, WbsnError::Link(LinkError::NoHandshake { session: 8 }))));
        assert_eq!(gw.stats().items_rejected, rejections.len() as u64);
        // The stream itself was otherwise healthy: nothing lost,
        // nothing reconstructed.
        assert_eq!(gw.stats().windows_reconstructed, 0);
    }
}
