//! The gateway service: many sessions, one packet stream.
//!
//! A base station terminates the radio uplinks of a whole fleet. The
//! [`Gateway`] routes every received packet to its session's
//! [`SessionDecoder`], then acts on what comes out:
//!
//! * **Handshakes** open the session: they carry the CS sensing
//!   parameters (window, measurement count, column density, seed), so
//!   the gateway can regenerate the node's `SparseTernaryMatrix` per
//!   lead (`seed + lead`, exactly as the node's `CsStage` builds them)
//!   and reconstruct.
//! * **`Events` payloads** drive per-session rhythm state: AF episode
//!   onsets surface as [`GatewayEvent::AfAlert`]s and are kept in an
//!   audit log, mirroring what a monitoring service would page on.
//! * **`CsWindow` payloads** are reconstructed through the `wbsn-cs`
//!   FISTA solver; when a reference signal is attached
//!   ([`Gateway::attach_reference`]), each window reports its PRD
//!   (percentage root-mean-square difference) against the transmitted
//!   original — the Figure 5 quality metric, now measured end to end
//!   through the lossy link.
//! * **Losses** (gaps the reassembler proves) surface as
//!   [`GatewayEvent::MessageLost`].
//!
//! Everything is deterministic: same packet stream, same events, same
//! reconstructed samples — the end-to-end scenario test replays the
//! whole node→channel→gateway path bit-identically.

use crate::cache::{MatrixCache, MatrixCacheStats, MatrixKey};
use crate::decoder::{SessionDecoder, SessionItem};
use crate::Result;
use std::collections::BTreeMap;
use std::sync::Arc;
use wbsn_core::link::{LinkError, LinkPacket, SessionHandshake};
use wbsn_core::{Payload, WbsnError};
use wbsn_cs::encoder::CsEncoder;
use wbsn_cs::omp::{Omp, OmpConfig};
use wbsn_cs::solver::{Fista, FistaConfig, FistaState};
use wbsn_sigproc::stats::prd_percent;

/// Which `wbsn-cs` decoder the gateway runs per CS window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReconstructionSolver {
    /// FISTA over a wavelet synthesis dictionary — the standard
    /// decoder of the ECG-CS literature and the default.
    Fista(FistaConfig),
    /// Orthogonal matching pursuit — the greedy ablation baseline.
    Omp(OmpConfig),
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Reorder window of each session's reassembler (messages).
    pub reorder_window: u32,
    /// Decoder run per CS window.
    pub solver: ReconstructionSolver,
    /// Whether CS windows are reconstructed at all (disable to bench
    /// the pure reassembly/decode path).
    pub reconstruct_cs: bool,
    /// Whether FISTA solves are warm-started from each stream's
    /// previous window (cached Lipschitz constant + previous
    /// solution). Purely a speed knob — `tests/warm_start.rs` pins
    /// that quality is unaffected — exposed so benches can measure
    /// the cold baseline. Ignored by the OMP solver.
    pub warm_start: bool,
}

impl Default for GatewayConfig {
    /// Defaults tuned for the base station, not the sweep harness: a
    /// gateway has server-class cycles to spend per window, so it
    /// runs FISTA with lighter regularization than the `wbsn-cs`
    /// default, with gradient restart plus an early-exit tolerance
    /// that stops each solve at its quality plateau (mean PRD at 50%
    /// CR improves from ≈9.5% to ≈6.5% on clean windows; the old
    /// fixed 800-iteration cold budget spent ≥2× the iterations for
    /// the same PRD — see `tests/warm_start.rs`).
    fn default() -> Self {
        GatewayConfig {
            reorder_window: crate::reassembler::DEFAULT_REORDER_WINDOW,
            solver: ReconstructionSolver::Fista(FistaConfig {
                lambda_rel: 0.001,
                max_iters: 800,
                tol: 3e-5,
                restart: true,
                ..FistaConfig::default()
            }),
            reconstruct_cs: true,
            warm_start: true,
        }
    }
}

/// One AF alert surfaced by the gateway, kept in the session's audit
/// log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertEvent {
    /// Message sequence number of the `Events` payload that raised it.
    pub msg_seq: u32,
    /// AF burden reported by the node at that point (percent).
    pub af_burden_pct: u8,
}

/// Per-session rhythm state, driven by the node's `Events` payloads.
#[derive(Debug, Clone, Default)]
pub struct RhythmState {
    /// Whether an AF episode is currently flagged.
    pub af_active: bool,
    /// Last reported AF burden (percent).
    pub af_burden_pct: u8,
    /// Last reported mean heart rate (bpm ×10).
    pub mean_hr_x10: u16,
    /// Beats reported across all `Events` payloads.
    pub beats_reported: u64,
    /// `Events` payloads seen.
    pub events_seen: u64,
    /// Delineated beats received via `Beats` payloads.
    pub beats_received: u64,
    /// Every AF episode onset, in arrival order.
    pub alerts: Vec<AlertEvent>,
}

/// What the gateway tells its caller per ingested packet.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayEvent {
    /// A session handshake arrived; the session is fully open.
    SessionOpened {
        /// The session.
        session: u64,
    },
    /// An AF episode started (the node's `Events` payload flipped
    /// `af_active` on).
    AfAlert {
        /// The session.
        session: u64,
        /// Message that raised the alert.
        msg_seq: u32,
        /// Reported AF burden (percent).
        af_burden_pct: u8,
    },
    /// The ongoing AF episode ended.
    AfCleared {
        /// The session.
        session: u64,
        /// Message that cleared it.
        msg_seq: u32,
    },
    /// One CS window was reconstructed.
    WindowReconstructed {
        /// The session.
        session: u64,
        /// Lead index.
        lead: u8,
        /// Window sequence number.
        window_seq: u32,
        /// PRD against the attached reference, when one covers the
        /// window (percent; lower is better).
        prd_percent: Option<f64>,
    },
    /// A run of consecutive messages lost on the link (reassembly
    /// gap). Ranged so a long outage costs one event, not one per
    /// missing message.
    MessageLost {
        /// The session.
        session: u64,
        /// First lost sequence number of the run.
        first_seq: u32,
        /// Number of consecutive lost messages.
        count: u32,
    },
    /// A message reassembled but could not be decoded or processed
    /// (malformed sender output, or a CS window with no handshake to
    /// regenerate Φ from). Carried as an event so the valid messages
    /// released alongside it are never discarded.
    PayloadRejected {
        /// The session.
        session: u64,
        /// Sequence number of the rejected message.
        msg_seq: u32,
        /// Why it was rejected.
        error: WbsnError,
    },
}

/// Gateway-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Packets offered to [`Gateway::ingest`].
    pub packets: u64,
    /// Packets rejected by the CRC check.
    pub crc_rejected: u64,
    /// Packets rejected for other typed reasons (truncation, bad
    /// headers, fragment conflicts).
    pub rejected: u64,
    /// Messages that reassembled but failed to decode or process
    /// (surfaced as [`GatewayEvent::PayloadRejected`]).
    pub items_rejected: u64,
    /// Payloads decoded across all sessions.
    pub payloads: u64,
    /// Messages proven lost across all sessions.
    pub messages_lost: u64,
    /// CS windows reconstructed.
    pub windows_reconstructed: u64,
    /// FISTA iterations spent across all reconstructions (0 under the
    /// OMP solver). Deterministic for a given packet stream, so the
    /// shard-determinism suite can pin that parallel decode does not
    /// change the numerics.
    pub solver_iters: u64,
}

#[derive(Debug)]
struct SessionState {
    decoder: SessionDecoder,
    handshake: Option<SessionHandshake>,
    rhythm: RhythmState,
    // Per-lead CS encoders, shared out of the gateway's MatrixCache
    // on first use (lead l seeds with seed + l, matching the node's
    // CsStage — see CsEncoder::for_lead).
    encoders: Vec<Option<Arc<CsEncoder>>>,
    // Per-lead warm-start state (previous window's solution + cached
    // Lipschitz constant); only valid for the current handshake's Φ.
    fista: Vec<FistaState>,
    // Reconstructed windows, keyed by (lead, window_seq).
    windows: BTreeMap<(u8, u32), Vec<f64>>,
    // Optional per-lead reference signals for PRD reporting.
    references: BTreeMap<u8, Vec<f64>>,
    // Reused measurement buffer.
    y_scratch: Vec<i64>,
}

impl SessionState {
    /// Installs a handshake; a *changed* handshake (new seed, shape)
    /// invalidates the cached sensing matrices, the warm-start states
    /// seeded through them, and the windows they reconstructed, so
    /// stale Φ can never silently produce plausible-looking garbage.
    fn install_handshake(&mut self, hs: SessionHandshake) {
        if self.handshake != Some(hs) {
            self.encoders.clear();
            self.fista.clear();
            self.windows.clear();
        }
        self.handshake = Some(hs);
    }

    fn new(session: u64, window: u32) -> Result<Self> {
        Ok(SessionState {
            decoder: SessionDecoder::with_window(session, window)?,
            handshake: None,
            rhythm: RhythmState::default(),
            encoders: Vec::new(),
            fista: Vec::new(),
            windows: BTreeMap::new(),
            references: BTreeMap::new(),
            y_scratch: Vec::new(),
        })
    }
}

#[derive(Debug)]
enum SolverImpl {
    Fista(Fista),
    Omp(Omp),
}

impl SolverImpl {
    /// Reconstructs one window, warm-started when a state is given.
    /// Returns the samples plus the iterations spent (0 for OMP).
    fn reconstruct(
        &self,
        enc: &CsEncoder,
        y: &[i64],
        state: Option<&mut FistaState>,
    ) -> Result<(Vec<f64>, usize)> {
        match self {
            SolverImpl::Fista(f) => {
                let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
                let solve = f.solve(enc.sensing_matrix(), &yf, state)?;
                Ok((solve.x, solve.iters))
            }
            SolverImpl::Omp(o) => {
                let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
                Ok((o.reconstruct(enc.sensing_matrix(), &yf)?, 0))
            }
        }
    }
}

/// The multi-session gateway service.
#[derive(Debug)]
pub struct Gateway {
    cfg: GatewayConfig,
    solver: SolverImpl,
    cache: Arc<MatrixCache>,
    sessions: BTreeMap<u64, SessionState>,
    stats: GatewayStats,
}

impl Default for Gateway {
    fn default() -> Self {
        Gateway::new(GatewayConfig::default())
    }
}

impl Gateway {
    /// Gateway with the given configuration and a private
    /// [`MatrixCache`]. A zero `reorder_window` is clamped to 1 (the
    /// smallest meaningful window), so session construction can never
    /// fail mid-ingest over a config typo.
    pub fn new(cfg: GatewayConfig) -> Self {
        Gateway::with_cache(cfg, Arc::new(MatrixCache::new()))
    }

    /// Gateway sharing an existing sensing-matrix cache — how the
    /// sharded gateway's workers (and any co-located gateways) avoid
    /// rebuilding identical Φ per worker.
    pub fn with_cache(mut cfg: GatewayConfig, cache: Arc<MatrixCache>) -> Self {
        cfg.reorder_window = cfg.reorder_window.max(1);
        let solver = match cfg.solver {
            ReconstructionSolver::Fista(f) => SolverImpl::Fista(Fista::new(f)),
            ReconstructionSolver::Omp(o) => SolverImpl::Omp(Omp::new(o)),
        };
        Gateway {
            cfg,
            solver,
            cache,
            sessions: BTreeMap::new(),
            stats: GatewayStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Handle on the sensing-matrix cache this gateway resolves Φ
    /// through.
    pub fn matrix_cache(&self) -> Arc<MatrixCache> {
        Arc::clone(&self.cache)
    }

    /// Counters of the sensing-matrix cache (shared ones include the
    /// traffic of every other gateway on the same cache).
    pub fn cache_stats(&self) -> MatrixCacheStats {
        self.cache.stats()
    }

    /// Sessions the gateway has seen packets (or registrations) for.
    pub fn session_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.sessions.keys().copied()
    }

    /// Opens (or re-opens) a session out of band (control plane), as
    /// an alternative to the in-band handshake message. Re-registering
    /// an existing session resets its link stream — fresh reassembler
    /// at sequence 0, cleared CS state — which is how a node restart
    /// (whose framer restarts at message 0) is recovered: without it,
    /// a long-lived reassembler would treat the reborn stream as stale
    /// stragglers forever. The rhythm/alert history is kept (it is an
    /// audit log of the subject, not of the link).
    ///
    /// # Errors
    ///
    /// Propagates decoder construction failures.
    pub fn register(&mut self, hs: SessionHandshake) -> Result<()> {
        let window = self.cfg.reorder_window;
        let state = self.session_state(hs.session)?;
        state.decoder = SessionDecoder::with_window(hs.session, window)?;
        state.install_handshake(hs);
        Ok(())
    }

    /// Attaches the transmitted original of one lead so reconstructed
    /// windows report PRD against it (evaluation harnesses only — a
    /// production gateway has no original to compare with).
    ///
    /// # Errors
    ///
    /// Propagates decoder construction failures for a new session.
    pub fn attach_reference(&mut self, session: u64, lead: u8, samples: Vec<f64>) -> Result<()> {
        let state = self.session_state(session)?;
        state.references.insert(lead, samples);
        Ok(())
    }

    /// Rhythm/alert state of one session.
    pub fn rhythm(&self, session: u64) -> Option<&RhythmState> {
        self.sessions.get(&session).map(|s| &s.rhythm)
    }

    /// The handshake of one session, when received.
    pub fn handshake(&self, session: u64) -> Option<&SessionHandshake> {
        self.sessions
            .get(&session)
            .and_then(|s| s.handshake.as_ref())
    }

    /// One reconstructed window's samples. Retained only for leads
    /// with an attached reference ([`Gateway::attach_reference`]) —
    /// unreferenced sessions do not accumulate sample history.
    pub fn reconstructed_window(&self, session: u64, lead: u8, window_seq: u32) -> Option<&[f64]> {
        self.sessions
            .get(&session)?
            .windows
            .get(&(lead, window_seq))
            .map(Vec::as_slice)
    }

    /// All reconstructed `(window_seq, samples)` of one lead, in
    /// window order.
    pub fn reconstructed_windows(
        &self,
        session: u64,
        lead: u8,
    ) -> impl Iterator<Item = (u32, &[f64])> + '_ {
        self.sessions.get(&session).into_iter().flat_map(move |s| {
            s.windows
                .range((lead, 0)..=(lead, u32::MAX))
                .map(|((_, seq), w)| (*seq, w.as_slice()))
        })
    }

    /// Ingests one raw packet off the channel: CRC check, session
    /// routing, reassembly, decoding, and whatever state updates the
    /// decoded items imply. Returns the events this packet produced.
    ///
    /// # Errors
    ///
    /// Packet-level rejections are typed errors:
    /// [`LinkError::CrcMismatch`] for corruption (counted in
    /// [`GatewayStats::crc_rejected`]) and truncation/header/conflict
    /// errors from the link layer; a rejected packet never changes
    /// payload-visible state. Message-level problems — a payload that
    /// reassembled but cannot be decoded, or a CS window whose session
    /// has no handshake ([`LinkError::NoHandshake`]) — surface as
    /// [`GatewayEvent::PayloadRejected`] events instead, so the valid
    /// messages released by the same packet are never discarded.
    pub fn ingest(&mut self, raw: &[u8]) -> Result<Vec<GatewayEvent>> {
        self.stats.packets += 1;
        let pkt = match LinkPacket::decode(raw) {
            Ok(p) => p,
            Err(e) => {
                if matches!(e, WbsnError::Link(LinkError::CrcMismatch { .. })) {
                    self.stats.crc_rejected += 1;
                } else {
                    self.stats.rejected += 1;
                }
                return Err(e);
            }
        };
        let state = self.session_state(pkt.session)?;
        let mut items = Vec::new();
        if let Err(e) = state.decoder.accept(&pkt, &mut items) {
            self.stats.rejected += 1;
            return Err(e);
        }
        Ok(self.handle_items(pkt.session, items))
    }

    /// End of stream: drains every session's reassembler and processes
    /// the tails (sessions in id order).
    pub fn flush_sessions(&mut self) -> Vec<GatewayEvent> {
        self.flush_sessions_tagged()
            .into_iter()
            .flat_map(|(_, ev)| ev)
            .collect()
    }

    /// [`Gateway::flush_sessions`] with each session's events grouped
    /// under its id (ids ascending). The sharded gateway merges its
    /// workers' flushes through this form so the merged order is
    /// identical to a single gateway's.
    pub fn flush_sessions_tagged(&mut self) -> Vec<(u64, Vec<GatewayEvent>)> {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        ids.into_iter()
            .map(|id| {
                let mut items = Vec::new();
                if let Some(state) = self.sessions.get_mut(&id) {
                    state.decoder.flush(&mut items);
                }
                (id, self.handle_items(id, items))
            })
            .collect()
    }

    /// Closes one session: drains its reassembler tail, processes it,
    /// and drops all per-session state (decoder, rhythm log, warm
    /// solver state, reconstructed windows). Returns the tail's events,
    /// or `None` for a session this gateway never saw.
    pub fn close_session(&mut self, session: u64) -> Option<Vec<GatewayEvent>> {
        let state = self.sessions.get_mut(&session)?;
        let mut items = Vec::new();
        state.decoder.flush(&mut items);
        let events = self.handle_items(session, items);
        self.sessions.remove(&session);
        Some(events)
    }

    fn session_state(&mut self, session: u64) -> Result<&mut SessionState> {
        let window = self.cfg.reorder_window;
        Ok(match self.sessions.entry(session) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(SessionState::new(session, window)?)
            }
        })
    }

    fn handle_items(&mut self, session: u64, items: Vec<SessionItem>) -> Vec<GatewayEvent> {
        let mut events = Vec::new();
        for item in items {
            match item {
                SessionItem::Lost { first_seq, count } => {
                    self.stats.messages_lost += u64::from(count);
                    events.push(GatewayEvent::MessageLost {
                        session,
                        first_seq,
                        count,
                    });
                }
                SessionItem::Rejected { msg_seq, error } => {
                    self.stats.items_rejected += 1;
                    events.push(GatewayEvent::PayloadRejected {
                        session,
                        msg_seq,
                        error,
                    });
                }
                SessionItem::Handshake(hs) => {
                    if let Some(state) = self.sessions.get_mut(&session) {
                        state.install_handshake(hs);
                        events.push(GatewayEvent::SessionOpened { session });
                    }
                }
                SessionItem::Payload { msg_seq, payload } => {
                    self.stats.payloads += 1;
                    if let Err(error) = self.handle_payload(session, msg_seq, payload, &mut events)
                    {
                        self.stats.items_rejected += 1;
                        events.push(GatewayEvent::PayloadRejected {
                            session,
                            msg_seq,
                            error,
                        });
                    }
                }
            }
        }
        events
    }

    fn handle_payload(
        &mut self,
        session: u64,
        msg_seq: u32,
        payload: Payload,
        events: &mut Vec<GatewayEvent>,
    ) -> Result<()> {
        let cache = Arc::clone(&self.cache);
        let Some(state) = self.sessions.get_mut(&session) else {
            // `ingest` routes through `session_state` before any item
            // reaches here, but a typed error keeps the wire surface
            // panic-free even if that routing ever changes.
            return Err(LinkError::NoHandshake { session }.into());
        };
        match payload {
            Payload::Events {
                n_beats,
                mean_hr_x10,
                af_burden_pct,
                af_active,
                ..
            } => {
                let was_active = state.rhythm.af_active;
                state.rhythm.af_active = af_active;
                state.rhythm.af_burden_pct = af_burden_pct;
                state.rhythm.mean_hr_x10 = mean_hr_x10;
                state.rhythm.beats_reported += u64::from(n_beats);
                state.rhythm.events_seen += 1;
                if af_active && !was_active {
                    state.rhythm.alerts.push(AlertEvent {
                        msg_seq,
                        af_burden_pct,
                    });
                    events.push(GatewayEvent::AfAlert {
                        session,
                        msg_seq,
                        af_burden_pct,
                    });
                } else if !af_active && was_active {
                    events.push(GatewayEvent::AfCleared { session, msg_seq });
                }
            }
            Payload::Beats { beats } => {
                state.rhythm.beats_received += beats.len() as u64;
            }
            Payload::CsWindow {
                lead,
                window_seq,
                measurements,
            } => {
                if !self.cfg.reconstruct_cs {
                    return Ok(());
                }
                let Some(hs) = state.handshake else {
                    return Err(LinkError::NoHandshake { session }.into());
                };
                if state.encoders.len() <= lead as usize {
                    state.encoders.resize(lead as usize + 1, None);
                    state.fista.resize(lead as usize + 1, FistaState::new());
                }
                let enc = match &state.encoders[lead as usize] {
                    Some(enc) => Arc::clone(enc),
                    // Resolve the node's sensing matrix through the
                    // shared cache (lead l seeds with seed + l,
                    // matching the node's CsStage).
                    None => {
                        let enc = cache.get_or_build(MatrixKey {
                            window: hs.cs_window,
                            measurements: hs.cs_measurements,
                            d_per_col: hs.cs_d_per_col,
                            seed: hs.seed,
                            lead,
                        })?;
                        state.encoders[lead as usize] = Some(Arc::clone(&enc));
                        enc
                    }
                };
                state.y_scratch.clear();
                state
                    .y_scratch
                    .extend(measurements.iter().map(|&v| v as i64));
                let warm = if self.cfg.warm_start {
                    Some(&mut state.fista[lead as usize])
                } else {
                    None
                };
                let (xr, iters) = self.solver.reconstruct(&enc, &state.y_scratch, warm)?;
                self.stats.solver_iters += iters as u64;
                let n = hs.cs_window as usize;
                let prd = state.references.get(&lead).and_then(|reference| {
                    let start = window_seq as usize * n;
                    let orig = reference.get(start..start + n)?;
                    Some(prd_percent(orig, &xr))
                });
                // Samples are retained only for leads with an attached
                // reference (the evaluation harness needs them for
                // PRD/replay queries); a production session would
                // otherwise grow ~4 kB per window forever.
                if state.references.contains_key(&lead) {
                    state.windows.insert((lead, window_seq), xr);
                }
                self.stats.windows_reconstructed += 1;
                events.push(GatewayEvent::WindowReconstructed {
                    session,
                    lead,
                    window_seq,
                    prd_percent: prd,
                });
            }
            Payload::RawChunk { .. } => {
                // Raw chunks need no gateway-side processing; they are
                // the signal. Counted via `stats.payloads`.
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_core::level::ProcessingLevel;
    use wbsn_core::link::Uplink;
    use wbsn_core::monitor::MonitorBuilder;
    use wbsn_ecg_synth::noise::NoiseConfig;
    use wbsn_ecg_synth::{RecordBuilder, Rhythm};

    #[test]
    fn af_alert_surfaces_and_logs() {
        let rec = RecordBuilder::new(7)
            .duration_s(60.0)
            .n_leads(3)
            .rhythm(Rhythm::AtrialFibrillation { mean_hr_bpm: 95.0 })
            .noise(NoiseConfig::ambulatory(20.0))
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::Classified)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(1, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(1, &payloads, &mut packets).unwrap();
        let mut gw = Gateway::default();
        let mut events = Vec::new();
        for p in &packets {
            events.extend(gw.ingest(p).unwrap());
        }
        events.extend(gw.flush_sessions());
        assert!(events
            .iter()
            .any(|e| matches!(e, GatewayEvent::AfAlert { session: 1, .. })));
        let rhythm = gw.rhythm(1).unwrap();
        assert!(!rhythm.alerts.is_empty());
        assert!(rhythm.events_seen > 0);
    }

    #[test]
    fn cs_windows_reconstruct_with_prd_against_reference() {
        let rec = RecordBuilder::new(21)
            .duration_s(10.0)
            .n_leads(1)
            .noise(NoiseConfig::clean())
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_compression_ratio(50.0)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(4, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(4, &payloads, &mut packets).unwrap();
        let mut gw = Gateway::default();
        gw.attach_reference(4, 0, rec.lead(0).iter().map(|&v| v as f64).collect())
            .unwrap();
        let mut events = Vec::new();
        for p in &packets {
            events.extend(gw.ingest(p).unwrap());
        }
        events.extend(gw.flush_sessions());
        let prds: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                GatewayEvent::WindowReconstructed {
                    prd_percent: Some(prd),
                    ..
                } => Some(*prd),
                _ => None,
            })
            .collect();
        assert!(prds.len() >= 4, "windows {}", prds.len());
        let avg = prds.iter().sum::<f64>() / prds.len() as f64;
        assert!(avg < 9.0, "avg PRD {avg}%");
        // The reconstructed signal is queryable window by window.
        assert!(gw.reconstructed_window(4, 0, 0).is_some());
        assert_eq!(
            gw.reconstructed_windows(4, 0).count() as u64,
            gw.stats().windows_reconstructed
        );
    }

    #[test]
    fn omp_solver_reconstructs_too() {
        let rec = RecordBuilder::new(21)
            .duration_s(4.1)
            .n_leads(1)
            .noise(NoiseConfig::clean())
            .build();
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_compression_ratio(40.0)
            .build()
            .unwrap();
        let payloads = node.process_record(&rec).unwrap();
        let mut uplink = Uplink::new();
        let mut packets = Vec::new();
        uplink
            .open_session(
                &SessionHandshake::for_config(2, node.config()),
                &mut packets,
            )
            .unwrap();
        uplink.frame(2, &payloads, &mut packets).unwrap();
        let mut gw = Gateway::new(GatewayConfig {
            solver: ReconstructionSolver::Omp(wbsn_cs::omp::OmpConfig::default()),
            ..GatewayConfig::default()
        });
        gw.attach_reference(2, 0, rec.lead(0).iter().map(|&v| v as f64).collect())
            .unwrap();
        let mut prds = Vec::new();
        for p in &packets {
            for ev in gw.ingest(p).unwrap() {
                if let GatewayEvent::WindowReconstructed {
                    prd_percent: Some(prd),
                    ..
                } = ev
                {
                    prds.push(prd);
                }
            }
        }
        assert_eq!(prds.len(), 2);
        // The greedy baseline reconstructs usable windows at a low CR;
        // it is an ablation, not the production decoder, so the bar is
        // looser than FISTA's.
        assert!(prds.iter().all(|&p| p < 40.0), "{prds:?}");
    }

    #[test]
    fn reregistration_recovers_a_restarted_node() {
        let p = Payload::Events {
            n_beats: 4,
            class_counts: [4, 0, 0, 0],
            mean_hr_x10: 650,
            af_burden_pct: 0,
            af_active: false,
        };
        let hs = SessionHandshake {
            session: 3,
            fs_hz: 250,
            n_leads: 3,
            cs_window: 512,
            cs_measurements: 256,
            cs_d_per_col: 4,
            seed: 9,
        };
        let mut gw = Gateway::default();
        // First life of the node: handshake + 5 payloads.
        let mut framer = wbsn_core::link::LinkFramer::new(3);
        let mut packets = Vec::new();
        framer.frame_handshake(&hs, &mut packets).unwrap();
        for _ in 0..5 {
            framer.frame_payload(&p, &mut packets).unwrap();
        }
        for raw in &packets {
            gw.ingest(raw).unwrap();
        }
        assert_eq!(gw.stats().payloads, 5);
        // The node reboots: its framer restarts at message 0. Without
        // re-registration the reborn stream is stale to the old
        // reassembler...
        let mut reborn = wbsn_core::link::LinkFramer::new(3);
        let mut packets = Vec::new();
        reborn.frame_handshake(&hs, &mut packets).unwrap();
        reborn.frame_payload(&p, &mut packets).unwrap();
        for raw in &packets {
            assert!(gw.ingest(raw).unwrap().is_empty());
        }
        assert_eq!(gw.stats().payloads, 5, "stale stream must not decode");
        // ... and with it, the stream decodes again from sequence 0.
        gw.register(hs).unwrap();
        let mut packets = Vec::new();
        let mut reborn = wbsn_core::link::LinkFramer::new(3);
        reborn.frame_handshake(&hs, &mut packets).unwrap();
        reborn.frame_payload(&p, &mut packets).unwrap();
        let mut events = Vec::new();
        for raw in &packets {
            events.extend(gw.ingest(raw).unwrap());
        }
        assert_eq!(gw.stats().payloads, 6);
        assert!(events
            .iter()
            .any(|e| matches!(e, GatewayEvent::SessionOpened { session: 3 })));
    }

    #[test]
    fn cs_without_handshake_is_a_typed_error() {
        let mut node = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_window(256)
            .build()
            .unwrap();
        let payloads = node.push_block(&vec![0i32; 256], 256).unwrap();
        assert!(!payloads.is_empty());
        // Frame the payloads on a session the gateway never got a
        // handshake for.
        let mut framer = wbsn_core::link::LinkFramer::new(8);
        let mut packets = Vec::new();
        for p in &payloads {
            framer.frame_payload(p, &mut packets).unwrap();
        }
        let mut gw = Gateway::default();
        let mut rejections = Vec::new();
        for p in &packets {
            for ev in gw.ingest(p).unwrap() {
                if let GatewayEvent::PayloadRejected { session, error, .. } = ev {
                    rejections.push((session, error));
                }
            }
        }
        assert!(!rejections.is_empty(), "missing handshake went unnoticed");
        assert!(rejections
            .iter()
            .all(|(s, e)| *s == 8
                && matches!(e, WbsnError::Link(LinkError::NoHandshake { session: 8 }))));
        assert_eq!(gw.stats().items_rejected, rejections.len() as u64);
        // The stream itself was otherwise healthy: nothing lost,
        // nothing reconstructed.
        assert_eq!(gw.stats().windows_reconstructed, 0);
    }
}
