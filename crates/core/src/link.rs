//! The wire layer: payloads framed into MTU-sized radio packets
//! uplink, ACK/NACK/directive control frames downlink.
//!
//! The paper's node hands payloads to "a simple medium access control
//! (MAC) scheme (IEEE 802.15.4)"; this module is the layer between the
//! pipeline's [`Payload`]s and that radio. Each payload becomes one
//! link-layer *message*, fragmented into packets that fit the radio's
//! MTU (the 802.15.4 `MAX_PAYLOAD` of 116 bytes by default). Every
//! packet carries a fixed header — session id, message sequence
//! number, fragment index/count, payload kind — and a CRC32 trailer,
//! so the receiving gateway (`wbsn-gateway`) can reassemble streams
//! from many nodes, detect losses and reject corruption with typed
//! [`LinkError`]s instead of ever surfacing a wrong payload.
//!
//! ```text
//!   Payload::encode() ──► LinkFramer ──► [pkt][pkt][pkt] ──► radio
//!                         (per session,   ≤ MTU each,
//!                          msg_seq++)     header + CRC32)
//! ```
//!
//! The byte accounting here is shared with the energy model:
//! [`wire_bytes_for`] is exactly what
//! [`RadioModel::transmit_framed`](wbsn_platform::radio::RadioModel::transmit_framed)
//! prices and exactly what an [`Uplink`] counts, so the bytes the
//! battery pays for are the bytes on the wire.
//!
//! ## Packet format (little-endian)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 1    | payload kind (`0x00` = handshake, else payload tag) |
//! | 1      | 8    | session id |
//! | 9      | 4    | message sequence number |
//! | 13     | 2    | fragment index |
//! | 15     | 2    | fragment count |
//! | 17     | 2    | body length `n` |
//! | 19     | `n`  | body |
//! | 19+`n` | 4    | CRC32 (IEEE) over bytes `0..19+n` |
//!
//! The same packet format carries the **downlink**: kinds
//! `0xF0..=0xFF` are reserved for gateway→node control frames
//! ([`DownlinkFrame`]), of which `0xF0`/`0xF1`/`0xF2` are assigned to
//! cumulative ACKs, selective NACKs and controller directives. The
//! handshake record leads with a [`PROTOCOL_VERSION`] byte so future
//! wire changes are negotiable (typed
//! [`WbsnError::UnsupportedVersion`]) instead of silently
//! mis-decoding.

use crate::monitor::MonitorConfig;
use crate::payload::Payload;
use crate::{Result, WbsnError};
use std::collections::BTreeMap;

/// Fixed per-packet header size in bytes (everything before the body).
pub const LINK_HEADER_BYTES: usize = 19;
/// CRC32 trailer size in bytes.
pub const LINK_TRAILER_BYTES: usize = 4;
/// Total per-packet overhead: header + CRC trailer.
pub const LINK_OVERHEAD_BYTES: usize = LINK_HEADER_BYTES + LINK_TRAILER_BYTES;
/// Default MTU: one packet per 802.15.4 frame
/// ([`wbsn_platform::radio::frame::MAX_PAYLOAD`]).
pub const DEFAULT_MTU: usize = wbsn_platform::radio::frame::MAX_PAYLOAD;
/// Kind byte of a session handshake message; payload messages carry
/// their [`Payload`] tag (`0x01..=0x04`) instead.
pub const KIND_HANDSHAKE: u8 = 0x00;
/// Wire-protocol version this build speaks, announced as the first
/// byte of every [`SessionHandshake`]. A gateway that receives a
/// higher (or lower) version rejects the session with a typed
/// [`WbsnError::UnsupportedVersion`] before creating any state.
pub const PROTOCOL_VERSION: u8 = 1;
/// First kind byte of the reserved downlink/control range
/// (`0xF0..=0xFF`). Uplink payload tags will never be assigned here,
/// so a node can classify a packet by kind alone.
pub const KIND_DOWNLINK_MIN: u8 = 0xF0;
/// Downlink kind: cumulative acknowledgement ([`DownlinkFrame::Ack`]).
pub const KIND_ACK: u8 = 0xF0;
/// Downlink kind: cumulative ack + selective NACK
/// ([`DownlinkFrame::Nack`]).
pub const KIND_NACK: u8 = 0xF1;
/// Downlink kind: link-controller directive
/// ([`DownlinkFrame::Directive`]).
pub const KIND_DIRECTIVE: u8 = 0xF2;
/// Most missing-message ids one NACK frame carries; older gaps wait
/// for the next pump so the downlink stays one packet per session per
/// epoch.
pub const NACK_MAX_MISSING: usize = 16;

/// True for kind bytes in the reserved gateway→node control range.
pub fn is_downlink_kind(kind: u8) -> bool {
    kind >= KIND_DOWNLINK_MIN
}

/// Typed link-layer failures, shared by the node-side framer and the
/// gateway-side reassembly (`wbsn-gateway`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A packet is shorter than its header and length field claim.
    Truncated {
        /// Bytes the parser needed.
        needed: usize,
        /// Bytes it got.
        got: usize,
    },
    /// The CRC32 trailer does not match the packet bytes — the packet
    /// was corrupted in flight and is rejected whole.
    CrcMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// A header field is structurally invalid (zero fragment count,
    /// fragment index out of range, trailing bytes).
    BadHeader {
        /// Explanation.
        detail: String,
    },
    /// Two fragments claimed the same slot of one message with
    /// different contents or inconsistent metadata.
    FragmentConflict {
        /// Message sequence number.
        msg_seq: u32,
        /// Conflicting fragment index.
        frag_index: u16,
    },
    /// A message could not be framed because it would need more
    /// fragments than the 16-bit fragment counter can address.
    Oversized {
        /// Message length in bytes.
        len: usize,
        /// Largest length the MTU supports.
        max: usize,
    },
    /// A compressed window arrived for a session whose handshake
    /// (sensing-matrix seed and shape) was never received.
    NoHandshake {
        /// The session missing its handshake.
        session: u64,
    },
}

impl core::fmt::Display for LinkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinkError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            LinkError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            LinkError::BadHeader { detail } => write!(f, "bad packet header: {detail}"),
            LinkError::FragmentConflict {
                msg_seq,
                frag_index,
            } => {
                write!(f, "conflicting fragment {frag_index} of message {msg_seq}")
            }
            LinkError::Oversized { len, max } => {
                write!(
                    f,
                    "message of {len} bytes exceeds the framable maximum {max}"
                )
            }
            LinkError::NoHandshake { session } => {
                write!(f, "no handshake received for session {session}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// CRC32 (IEEE 802.3, reflected) over `bytes` — the per-packet
/// integrity check. Nibble-table implementation: fast enough for the
/// gateway's ingest hot path, no 1 kB table in node RAM.
pub fn crc32(bytes: &[u8]) -> u32 {
    // 16-entry table of the reflected polynomial 0xEDB88320.
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1db7_1064,
        0x3b6e_20c8,
        0x26d9_30ac,
        0x76dc_4190,
        0x6b6b_51f4,
        0x4db2_6158,
        0x5005_713c,
        0xedb8_8320,
        0xf00f_9344,
        0xd6d6_a3e8,
        0xcb61_b38c,
        0x9b64_c2b0,
        0x86d3_d2d4,
        0xa00a_e278,
        0xbdbd_f21c,
    ];
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0x0F) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (b as u32 >> 4)) & 0x0F) as usize] ^ (crc >> 4);
    }
    !crc
}

/// One link-layer packet: a fragment of one message, with enough
/// header to route, order and reassemble it, and a CRC32 trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkPacket {
    /// Originating session ([`crate::fleet::SessionId::raw`]).
    pub session: u64,
    /// Per-session message sequence number (one message per payload).
    pub msg_seq: u32,
    /// Index of this fragment within the message.
    pub frag_index: u16,
    /// Total fragments of the message.
    pub frag_count: u16,
    /// Message kind: [`KIND_HANDSHAKE`] or the payload's tag byte.
    pub kind: u8,
    /// Fragment body bytes.
    pub body: Vec<u8>,
}

impl LinkPacket {
    /// Encoded size in bytes (header + body + CRC).
    pub fn encoded_len(&self) -> usize {
        LINK_OVERHEAD_BYTES + self.body.len()
    }

    /// Encodes to the on-air packet bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.push(self.kind);
        out.extend(self.session.to_le_bytes());
        out.extend(self.msg_seq.to_le_bytes());
        out.extend(self.frag_index.to_le_bytes());
        out.extend(self.frag_count.to_le_bytes());
        out.extend((self.body.len() as u16).to_le_bytes());
        out.extend(&self.body);
        let crc = crc32(&out);
        out.extend(crc.to_le_bytes());
        out
    }

    /// Decodes and integrity-checks one received packet.
    ///
    /// # Errors
    ///
    /// [`LinkError::Truncated`] when bytes are missing,
    /// [`LinkError::BadHeader`] on structurally invalid fields or
    /// trailing bytes, [`LinkError::CrcMismatch`] when the trailer
    /// does not match — a corrupted packet is always rejected whole,
    /// never decoded into a wrong payload (wrapped in
    /// [`WbsnError::Link`]).
    pub fn decode(bytes: &[u8]) -> Result<LinkPacket> {
        if bytes.len() < LINK_OVERHEAD_BYTES {
            return Err(LinkError::Truncated {
                needed: LINK_OVERHEAD_BYTES,
                got: bytes.len(),
            }
            .into());
        }
        let body_len = u16::from_le_bytes([bytes[17], bytes[18]]) as usize;
        let needed = LINK_OVERHEAD_BYTES + body_len;
        if bytes.len() < needed {
            return Err(LinkError::Truncated {
                needed,
                got: bytes.len(),
            }
            .into());
        }
        if bytes.len() > needed {
            return Err(LinkError::BadHeader {
                detail: format!("{} trailing bytes after the CRC", bytes.len() - needed),
            }
            .into());
        }
        let stored = u32::from_le_bytes([
            bytes[needed - 4],
            bytes[needed - 3],
            bytes[needed - 2],
            bytes[needed - 1],
        ]);
        let computed = crc32(&bytes[..needed - 4]);
        if stored != computed {
            return Err(LinkError::CrcMismatch { stored, computed }.into());
        }
        let frag_index = u16::from_le_bytes([bytes[13], bytes[14]]);
        let frag_count = u16::from_le_bytes([bytes[15], bytes[16]]);
        if frag_count == 0 || frag_index >= frag_count {
            return Err(LinkError::BadHeader {
                detail: format!("fragment {frag_index} of {frag_count}"),
            }
            .into());
        }
        Ok(LinkPacket {
            kind: bytes[0],
            session: u64::from_le_bytes(le_array(bytes, 1)),
            msg_seq: u32::from_le_bytes(le_array(bytes, 9)),
            frag_index,
            frag_count,
            body: bytes[LINK_HEADER_BYTES..needed - 4].to_vec(),
        })
    }
}

/// Copies `N` little-endian bytes starting at `at` into a fixed
/// array, zero-filling when the slice is too short. Decoders check
/// lengths upfront, so the zero-fill branch is unreachable in
/// practice — but wire decoding stays panic-free by construction
/// rather than by `expect`ed slice-length invariants.
fn le_array<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    if let Some(src) = bytes.get(at..at + N) {
        out.copy_from_slice(src);
    }
    out
}

/// Packets needed to carry a `payload_len`-byte message at `mtu`
/// (an empty message still takes one packet).
pub fn fragments_for(payload_len: usize, mtu: usize) -> usize {
    let cap = mtu.saturating_sub(LINK_OVERHEAD_BYTES).max(1);
    payload_len.div_ceil(cap).max(1)
}

/// Total on-wire bytes of a `payload_len`-byte message at `mtu`:
/// the payload plus one [`LINK_OVERHEAD_BYTES`] header+CRC per
/// fragment. This is the quantity the radio energy model prices
/// ([`RadioModel::transmit_framed`](wbsn_platform::radio::RadioModel::transmit_framed))
/// and the [`Uplink`] counts.
pub fn wire_bytes_for(payload_len: usize, mtu: usize) -> usize {
    payload_len + fragments_for(payload_len, mtu) * LINK_OVERHEAD_BYTES
}

/// The session handshake record the node sends (message 0) before any
/// payload: everything the gateway needs to decode the stream and —
/// for CS sessions — regenerate the sensing matrix Φ by seed and run
/// reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionHandshake {
    /// Wire-protocol version ([`PROTOCOL_VERSION`]); encoded as the
    /// first byte so a receiver can reject an unknown version before
    /// trusting any other field.
    pub version: u8,
    /// Session id.
    pub session: u64,
    /// Sampling rate per lead, Hz.
    pub fs_hz: u32,
    /// Configured lead count.
    pub n_leads: u8,
    /// CS window length in samples.
    pub cs_window: u32,
    /// CS measurements per window (`m`).
    pub cs_measurements: u32,
    /// CS sensing-matrix column density.
    pub cs_d_per_col: u8,
    /// Shared sensing-matrix seed (lead `l` uses
    /// `seed.wrapping_add(l)`, matching the node's `CsStage`).
    pub seed: u64,
}

impl SessionHandshake {
    /// Encoded size in bytes.
    pub const ENCODED_LEN: usize = 1 + 8 + 4 + 1 + 4 + 4 + 1 + 8;

    /// Builds the handshake for a session's configuration.
    pub fn for_config(session: u64, cfg: &MonitorConfig) -> Self {
        SessionHandshake {
            version: PROTOCOL_VERSION,
            session,
            fs_hz: cfg.fs_hz,
            n_leads: cfg.n_leads.min(255) as u8,
            cs_window: cfg.cs_window as u32,
            cs_measurements: wbsn_cs::measurements_for_cr(cfg.cs_window, cfg.cs_cr_percent) as u32,
            cs_d_per_col: cfg.cs_d_per_col.min(255) as u8,
            seed: cfg.seed,
        }
    }

    /// Encodes to the fixed-size wire record.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.push(self.version);
        out.extend(self.session.to_le_bytes());
        out.extend(self.fs_hz.to_le_bytes());
        out.push(self.n_leads);
        out.extend(self.cs_window.to_le_bytes());
        out.extend(self.cs_measurements.to_le_bytes());
        out.push(self.cs_d_per_col);
        out.extend(self.seed.to_le_bytes());
        out
    }

    /// Decodes the wire record.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnsupportedVersion`] when the leading version
    /// byte is not [`PROTOCOL_VERSION`] — checked before any length
    /// or field validation, since a future version may change the
    /// record layout. Otherwise [`WbsnError::Truncated`] /
    /// [`WbsnError::Malformed`] on bad input, like
    /// [`Payload::decode`].
    pub fn decode(bytes: &[u8]) -> Result<SessionHandshake> {
        let Some(&version) = bytes.first() else {
            return Err(WbsnError::Truncated {
                what: "session handshake",
                needed: Self::ENCODED_LEN,
                got: 0,
            });
        };
        if version != PROTOCOL_VERSION {
            return Err(WbsnError::UnsupportedVersion {
                got: version,
                supported: PROTOCOL_VERSION,
            });
        }
        if bytes.len() < Self::ENCODED_LEN {
            return Err(WbsnError::Truncated {
                what: "session handshake",
                needed: Self::ENCODED_LEN,
                got: bytes.len(),
            });
        }
        if bytes.len() > Self::ENCODED_LEN {
            return Err(WbsnError::Malformed {
                what: "session handshake",
                detail: format!("{} trailing bytes", bytes.len() - Self::ENCODED_LEN),
            });
        }
        Ok(SessionHandshake {
            version,
            session: u64::from_le_bytes(le_array(bytes, 1)),
            fs_hz: u32::from_le_bytes(le_array(bytes, 9)),
            n_leads: bytes[13],
            cs_window: u32::from_le_bytes(le_array(bytes, 14)),
            cs_measurements: u32::from_le_bytes(le_array(bytes, 18)),
            cs_d_per_col: bytes[22],
            seed: u64::from_le_bytes(le_array(bytes, 23)),
        })
    }
}

/// A control action the gateway's link controller asks the node to
/// apply ([`DownlinkFrame::Directive`]). Applications happen at
/// deterministic stream boundaries through
/// [`DirectiveHandler`](crate::retransmit::DirectiveHandler), never
/// mid-window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveAction {
    /// Switch the CS compression ratio to `cr_x10 / 10` percent
    /// (fixed-point so the wire stays integer; e.g. `659` = 65.9 %).
    SetCr {
        /// Compression ratio in tenths of a percent.
        cr_x10: u16,
    },
    /// Switch the operating mode: `level` indexes
    /// [`ProcessingLevel::ALL`](crate::level::ProcessingLevel::ALL),
    /// `active_leads` is the powered lead count.
    SetMode {
        /// Index into the processing-level ladder.
        level: u8,
        /// Powered acquisition leads.
        active_leads: u8,
    },
    /// Renegotiate the uplink MTU to `mtu` bytes per packet.
    SetMtu {
        /// New per-packet MTU in bytes.
        mtu: u16,
    },
}

// Wire tags of the directive actions.
const DIRECTIVE_SET_CR: u8 = 0x01;
const DIRECTIVE_SET_MODE: u8 = 0x02;
const DIRECTIVE_SET_MTU: u8 = 0x03;

/// One numbered directive: `directive_seq` increases per session so a
/// node can drop duplicates and stale reorderings (latest wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectiveFrame {
    /// Per-session directive sequence number.
    pub directive_seq: u32,
    /// The requested action.
    pub action: DirectiveAction,
}

/// A gateway→node control frame, carried as a single-fragment
/// [`LinkPacket`] whose kind byte is in the reserved downlink range
/// (`0xF0..=0xFF`). The `msg_seq` field carries an independent
/// per-session *downlink* sequence so the node-side channel replay
/// stays deterministic; it does not interact with uplink sequencing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownlinkFrame {
    /// Cumulative acknowledgement: every uplink message with
    /// `msg_seq < cum_ack` was delivered (or given up on) — the node
    /// may drop them from its retransmit buffer.
    Ack {
        /// First sequence number not yet fully received.
        cum_ack: u32,
    },
    /// Cumulative ack plus a bounded list of missing message ids past
    /// it — the selective-retransmission request.
    Nack {
        /// First sequence number not yet fully received.
        cum_ack: u32,
        /// Missing ids in `cum_ack..` (ascending, at most
        /// [`NACK_MAX_MISSING`]).
        missing: Vec<u32>,
    },
    /// A link-controller directive ([`DirectiveFrame`]).
    Directive(DirectiveFrame),
}

impl DownlinkFrame {
    /// The kind byte this frame travels under.
    pub fn kind(&self) -> u8 {
        match self {
            DownlinkFrame::Ack { .. } => KIND_ACK,
            DownlinkFrame::Nack { .. } => KIND_NACK,
            DownlinkFrame::Directive(_) => KIND_DIRECTIVE,
        }
    }

    /// Encodes the frame body (everything inside the link packet).
    pub fn encode_body(&self) -> Vec<u8> {
        match self {
            DownlinkFrame::Ack { cum_ack } => cum_ack.to_le_bytes().to_vec(),
            DownlinkFrame::Nack { cum_ack, missing } => {
                let n = missing.len().min(NACK_MAX_MISSING);
                let mut out = Vec::with_capacity(5 + 4 * n);
                out.extend(cum_ack.to_le_bytes());
                out.push(n as u8);
                for id in missing.iter().take(n) {
                    out.extend(id.to_le_bytes());
                }
                out
            }
            DownlinkFrame::Directive(d) => {
                let mut out = Vec::with_capacity(7);
                out.extend(d.directive_seq.to_le_bytes());
                match d.action {
                    DirectiveAction::SetCr { cr_x10 } => {
                        out.push(DIRECTIVE_SET_CR);
                        out.extend(cr_x10.to_le_bytes());
                    }
                    DirectiveAction::SetMode {
                        level,
                        active_leads,
                    } => {
                        out.push(DIRECTIVE_SET_MODE);
                        out.push(level);
                        out.push(active_leads);
                    }
                    DirectiveAction::SetMtu { mtu } => {
                        out.push(DIRECTIVE_SET_MTU);
                        out.extend(mtu.to_le_bytes());
                    }
                }
                out
            }
        }
    }

    /// Wraps the frame into a single-fragment [`LinkPacket`] for
    /// `session` at downlink sequence `msg_seq`.
    pub fn to_packet(&self, session: u64, msg_seq: u32) -> LinkPacket {
        LinkPacket {
            session,
            msg_seq,
            frag_index: 0,
            frag_count: 1,
            kind: self.kind(),
            body: self.encode_body(),
        }
    }

    /// Encodes straight to on-air bytes (packet header + CRC32).
    pub fn to_wire(&self, session: u64, msg_seq: u32) -> Vec<u8> {
        self.to_packet(session, msg_seq).encode()
    }

    /// Decodes a downlink frame out of a CRC-checked [`LinkPacket`].
    ///
    /// # Errors
    ///
    /// [`LinkError::BadHeader`] when the kind byte is not a known
    /// downlink kind or the packet is fragmented;
    /// [`WbsnError::Truncated`] / [`WbsnError::Malformed`] on body
    /// length or field mismatches.
    pub fn from_packet(pkt: &LinkPacket) -> Result<DownlinkFrame> {
        if !is_downlink_kind(pkt.kind) {
            return Err(LinkError::BadHeader {
                detail: format!("kind {:#04x} is not a downlink frame", pkt.kind),
            }
            .into());
        }
        if pkt.frag_count != 1 {
            return Err(LinkError::BadHeader {
                detail: format!("downlink frame fragmented {}x", pkt.frag_count),
            }
            .into());
        }
        let body = &pkt.body;
        let need = |needed: usize, what: &'static str| -> Result<()> {
            if body.len() < needed {
                Err(WbsnError::Truncated {
                    what,
                    needed,
                    got: body.len(),
                })
            } else {
                Ok(())
            }
        };
        match pkt.kind {
            KIND_ACK => {
                need(4, "ack frame")?;
                if body.len() > 4 {
                    return Err(WbsnError::Malformed {
                        what: "ack frame",
                        detail: format!("{} trailing bytes", body.len() - 4),
                    });
                }
                Ok(DownlinkFrame::Ack {
                    cum_ack: u32::from_le_bytes(le_array(body, 0)),
                })
            }
            KIND_NACK => {
                need(5, "nack frame")?;
                let cum_ack = u32::from_le_bytes(le_array(body, 0));
                let n = body[4] as usize;
                if n > NACK_MAX_MISSING {
                    return Err(WbsnError::Malformed {
                        what: "nack frame",
                        detail: format!("{n} missing ids exceed the cap {NACK_MAX_MISSING}"),
                    });
                }
                let needed = 5 + 4 * n;
                need(needed, "nack frame")?;
                if body.len() > needed {
                    return Err(WbsnError::Malformed {
                        what: "nack frame",
                        detail: format!("{} trailing bytes", body.len() - needed),
                    });
                }
                let missing = (0..n)
                    .map(|i| u32::from_le_bytes(le_array(body, 5 + 4 * i)))
                    .collect();
                Ok(DownlinkFrame::Nack { cum_ack, missing })
            }
            KIND_DIRECTIVE => {
                need(5, "directive frame")?;
                let directive_seq = u32::from_le_bytes(le_array(body, 0));
                let (action, needed) = match body[4] {
                    DIRECTIVE_SET_CR => {
                        need(7, "directive frame")?;
                        (
                            DirectiveAction::SetCr {
                                cr_x10: u16::from_le_bytes(le_array(body, 5)),
                            },
                            7,
                        )
                    }
                    DIRECTIVE_SET_MODE => {
                        need(7, "directive frame")?;
                        (
                            DirectiveAction::SetMode {
                                level: body[5],
                                active_leads: body[6],
                            },
                            7,
                        )
                    }
                    DIRECTIVE_SET_MTU => {
                        need(7, "directive frame")?;
                        (
                            DirectiveAction::SetMtu {
                                mtu: u16::from_le_bytes(le_array(body, 5)),
                            },
                            7,
                        )
                    }
                    other => {
                        return Err(WbsnError::Malformed {
                            what: "directive frame",
                            detail: format!("unknown action tag {other:#04x}"),
                        })
                    }
                };
                if body.len() > needed {
                    return Err(WbsnError::Malformed {
                        what: "directive frame",
                        detail: format!("{} trailing bytes", body.len() - needed),
                    });
                }
                Ok(DownlinkFrame::Directive(DirectiveFrame {
                    directive_seq,
                    action,
                }))
            }
            other => Err(WbsnError::Malformed {
                what: "downlink frame",
                detail: format!("reserved kind {other:#04x} is not assigned in this version"),
            }),
        }
    }

    /// Decodes a downlink frame from raw wire bytes (CRC-checked).
    ///
    /// # Errors
    ///
    /// As [`LinkPacket::decode`] and [`Self::from_packet`].
    pub fn from_wire(bytes: &[u8]) -> Result<DownlinkFrame> {
        DownlinkFrame::from_packet(&LinkPacket::decode(bytes)?)
    }
}

/// Per-session framing state: turns messages into MTU-sized packets
/// with monotonically increasing message sequence numbers.
#[derive(Debug, Clone)]
pub struct LinkFramer {
    session: u64,
    mtu: usize,
    next_msg_seq: u32,
    packets: u64,
    wire_bytes: u64,
}

impl LinkFramer {
    /// Framer for `session` at the default radio MTU
    /// ([`DEFAULT_MTU`]).
    pub fn new(session: u64) -> Self {
        LinkFramer {
            session,
            mtu: DEFAULT_MTU,
            next_msg_seq: 0,
            packets: 0,
            wire_bytes: 0,
        }
    }

    /// Framer with an explicit MTU (must exceed the per-packet
    /// overhead).
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] when `mtu` leaves no room for
    /// body bytes.
    pub fn with_mtu(session: u64, mtu: usize) -> Result<Self> {
        if mtu <= LINK_OVERHEAD_BYTES {
            return Err(WbsnError::InvalidParameter {
                what: "mtu",
                detail: format!("{mtu} does not exceed the packet overhead {LINK_OVERHEAD_BYTES}"),
            });
        }
        Ok(LinkFramer {
            mtu,
            ..LinkFramer::new(session)
        })
    }

    /// Session this framer serves.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// MTU in effect.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Renegotiates the MTU mid-stream (a [`DirectiveAction::SetMtu`]
    /// landing between messages). Already-framed packets are
    /// untouched; the next message fragments at the new size.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] when `mtu` leaves no room for
    /// body bytes; the framer is unchanged on error.
    pub fn set_mtu(&mut self, mtu: usize) -> Result<()> {
        if mtu <= LINK_OVERHEAD_BYTES {
            return Err(WbsnError::InvalidParameter {
                what: "mtu",
                detail: format!("{mtu} does not exceed the packet overhead {LINK_OVERHEAD_BYTES}"),
            });
        }
        self.mtu = mtu;
        Ok(())
    }

    /// Sequence number the next message will carry.
    pub fn next_msg_seq(&self) -> u32 {
        self.next_msg_seq
    }

    /// Packets emitted over the framer's lifetime.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// On-wire bytes emitted over the framer's lifetime (headers and
    /// CRCs included).
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Frames one message of `kind` into packets, appending the
    /// encoded packet bytes to `out`. Returns the message's sequence
    /// number.
    ///
    /// # Errors
    ///
    /// [`LinkError::Oversized`] when the message needs more fragments
    /// than the 16-bit counter can address.
    pub fn frame_message(&mut self, kind: u8, body: &[u8], out: &mut Vec<Vec<u8>>) -> Result<u32> {
        let cap = self.mtu - LINK_OVERHEAD_BYTES;
        let frag_count = fragments_for(body.len(), self.mtu);
        if frag_count > u16::MAX as usize {
            return Err(LinkError::Oversized {
                len: body.len(),
                max: cap * u16::MAX as usize,
            }
            .into());
        }
        // The receiver's in-order release relies on message sequence
        // numbers never wrapping; a session is bounded to 2^32 - 1
        // messages (decades at physiological payload rates) and ends
        // with a typed error instead of silently wrapping into
        // permanent stale-packet loss at the gateway.
        if self.next_msg_seq == u32::MAX {
            return Err(WbsnError::InvalidParameter {
                what: "msg_seq",
                detail: format!(
                    "session {} exhausted its message sequence space",
                    self.session
                ),
            });
        }
        let msg_seq = self.next_msg_seq;
        self.next_msg_seq += 1;
        for frag_index in 0..frag_count {
            let chunk = &body[frag_index * cap..body.len().min((frag_index + 1) * cap)];
            let pkt = LinkPacket {
                session: self.session,
                msg_seq,
                frag_index: frag_index as u16,
                frag_count: frag_count as u16,
                kind,
                body: chunk.to_vec(),
            };
            let bytes = pkt.encode();
            self.packets += 1;
            self.wire_bytes += bytes.len() as u64;
            out.push(bytes);
        }
        Ok(msg_seq)
    }

    /// Frames one payload (encoded with [`Payload::encode`], kind =
    /// its tag byte).
    ///
    /// # Errors
    ///
    /// As [`Self::frame_message`].
    pub fn frame_payload(&mut self, payload: &Payload, out: &mut Vec<Vec<u8>>) -> Result<u32> {
        let body = payload.encode();
        self.frame_message(body[0], &body, out)
    }

    /// Frames the session handshake record ([`KIND_HANDSHAKE`]).
    ///
    /// # Errors
    ///
    /// As [`Self::frame_message`].
    pub fn frame_handshake(
        &mut self,
        hs: &SessionHandshake,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<u32> {
        self.frame_message(KIND_HANDSHAKE, &hs.encode(), out)
    }
}

/// The multi-session uplink front end the fleet's payload output wires
/// through: one [`LinkFramer`] per session, shared MTU, exact wire
/// byte accounting.
///
/// ```
/// use wbsn_core::link::{SessionHandshake, Uplink};
/// use wbsn_core::monitor::MonitorBuilder;
/// use wbsn_core::fleet::NodeFleet;
///
/// let mut fleet = NodeFleet::new();
/// let id = fleet.add_session(MonitorBuilder::new()).unwrap();
/// let mut uplink = Uplink::new();
/// let hs = SessionHandshake::for_config(
///     id.raw(),
///     fleet.session(id).unwrap().config(),
/// );
/// let mut packets = Vec::new();
/// uplink.open_session(&hs, &mut packets).unwrap();
/// assert_eq!(packets.len(), 1); // the handshake fits one packet
///
/// // Ingest a second of signal and put the results on the wire.
/// let results = fleet.ingest_batch(&[(id, &[0i32; 3 * 250][..])]).unwrap();
/// uplink.frame_fleet(&results, &mut packets).unwrap();
/// assert_eq!(uplink.wire_bytes() as usize,
///            packets.iter().map(Vec::len).sum::<usize>());
/// ```
#[derive(Debug, Default)]
pub struct Uplink {
    mtu: Option<usize>,
    framers: BTreeMap<u64, LinkFramer>,
    payload_bytes: u64,
    // Totals of sessions closed by `close_session`, so lifetime wire
    // accounting survives session churn.
    retired_wire_bytes: u64,
    retired_packets: u64,
}

impl Uplink {
    /// Uplink at the default radio MTU.
    pub fn new() -> Self {
        Uplink::default()
    }

    /// Uplink with an explicit per-packet MTU.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] when `mtu` leaves no room for
    /// body bytes.
    pub fn with_mtu(mtu: usize) -> Result<Self> {
        // Validate once via a throwaway framer.
        LinkFramer::with_mtu(0, mtu)?;
        Ok(Uplink {
            mtu: Some(mtu),
            ..Uplink::default()
        })
    }

    /// Registered sessions.
    pub fn len(&self) -> usize {
        self.framers.len()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.framers.is_empty()
    }

    /// Registers a session and frames its handshake record as message
    /// 0, appending the packets to `out`.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] when the session is already
    /// registered.
    pub fn open_session(&mut self, hs: &SessionHandshake, out: &mut Vec<Vec<u8>>) -> Result<()> {
        if self.framers.contains_key(&hs.session) {
            return Err(WbsnError::InvalidParameter {
                what: "session",
                detail: format!("session {} is already on the uplink", hs.session),
            });
        }
        let mut framer = match self.mtu {
            Some(mtu) => LinkFramer::with_mtu(hs.session, mtu)?,
            None => LinkFramer::new(hs.session),
        };
        framer.frame_handshake(hs, out)?;
        self.framers.insert(hs.session, framer);
        Ok(())
    }

    /// Deregisters a session, retiring its byte/packet totals into the
    /// uplink lifetime counters; returns whether it was registered.
    pub fn close_session(&mut self, session: u64) -> bool {
        match self.framers.remove(&session) {
            Some(framer) => {
                self.retired_wire_bytes += framer.wire_bytes();
                self.retired_packets += framer.packets();
                true
            }
            None => false,
        }
    }

    /// Frames one session's payloads onto the wire, appending the
    /// encoded packets to `out`.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for an unregistered session, plus
    /// framing failures.
    pub fn frame(
        &mut self,
        session: u64,
        payloads: &[Payload],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<()> {
        let framer = self
            .framers
            .get_mut(&session)
            .ok_or(WbsnError::UnknownSession { id: session })?;
        for p in payloads {
            framer.frame_payload(p, out)?;
            // Counted only after framing succeeds, so the payload and
            // wire accounting always describe the same traffic.
            self.payload_bytes += p.byte_len() as u64;
        }
        Ok(())
    }

    /// Frames one payload, returning the message sequence number it
    /// was assigned — the handle a
    /// [`RetransmitBuffer`](crate::retransmit::RetransmitBuffer)
    /// records the packets under.
    ///
    /// # Errors
    ///
    /// As [`Self::frame`].
    pub fn frame_one(
        &mut self,
        session: u64,
        payload: &Payload,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<u32> {
        let framer = self
            .framers
            .get_mut(&session)
            .ok_or(WbsnError::UnknownSession { id: session })?;
        let msg_seq = framer.frame_payload(payload, out)?;
        self.payload_bytes += payload.byte_len() as u64;
        Ok(msg_seq)
    }

    /// Re-announces a session's handshake mid-stream (after a CS
    /// compression-ratio renegotiation the gateway must learn the new
    /// measurement count before the next window arrives). The record
    /// is framed as a regular in-sequence message, so ordering with
    /// the surrounding payloads is preserved end to end.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for an unregistered session, plus
    /// framing failures.
    pub fn announce_handshake(
        &mut self,
        hs: &SessionHandshake,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<u32> {
        let framer = self
            .framers
            .get_mut(&hs.session)
            .ok_or(WbsnError::UnknownSession { id: hs.session })?;
        framer.frame_handshake(hs, out)
    }

    /// Renegotiates one session's MTU ([`LinkFramer::set_mtu`]).
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for an unregistered session,
    /// [`WbsnError::InvalidParameter`] for an unusable MTU.
    pub fn set_mtu(&mut self, session: u64, mtu: usize) -> Result<()> {
        self.framers
            .get_mut(&session)
            .ok_or(WbsnError::UnknownSession { id: session })?
            .set_mtu(mtu)
    }

    /// Frames a fleet ingestion result (the
    /// [`NodeFleet::ingest_batch`](crate::fleet::NodeFleet::ingest_batch)
    /// / [`ShardedFleet::ingest_batch`](crate::fleet::ShardedFleet::ingest_batch)
    /// output shape) in batch order.
    ///
    /// # Errors
    ///
    /// As [`Self::frame`]; packets framed before a failing entry stay
    /// in `out`.
    pub fn frame_fleet(
        &mut self,
        results: &[(crate::fleet::SessionId, Vec<Payload>)],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<()> {
        for (id, payloads) in results {
            self.frame(id.raw(), payloads, out)?;
        }
        Ok(())
    }

    /// Application payload bytes accepted so far (before framing).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Total on-wire bytes emitted over the uplink's lifetime (headers
    /// and CRCs included, closed sessions too) — the number the
    /// battery pays for.
    pub fn wire_bytes(&self) -> u64 {
        self.retired_wire_bytes
            + self
                .framers
                .values()
                .map(LinkFramer::wire_bytes)
                .sum::<u64>()
    }

    /// Total packets emitted over the uplink's lifetime (closed
    /// sessions included).
    pub fn packets(&self) -> u64 {
        self.retired_packets + self.framers.values().map(LinkFramer::packets).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Payload {
        Payload::Events {
            n_beats: 12,
            class_counts: [10, 2, 0, 0],
            mean_hr_x10: 731,
            af_burden_pct: 4,
            af_active: false,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn packet_round_trips() {
        let pkt = LinkPacket {
            session: 7,
            msg_seq: 42,
            frag_index: 1,
            frag_count: 3,
            kind: 0x02,
            body: vec![1, 2, 3, 4, 5],
        };
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), pkt.encoded_len());
        assert_eq!(LinkPacket::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let pkt = LinkPacket {
            session: 3,
            msg_seq: 9,
            frag_index: 0,
            frag_count: 1,
            kind: 0x04,
            body: sample_payload().encode(),
        };
        let bytes = pkt.encode();
        for bit in 0..bytes.len() * 8 {
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let res = LinkPacket::decode(&corrupted);
            assert!(res.is_err(), "bit {bit} survived: {res:?}");
        }
    }

    #[test]
    fn framer_fragments_at_the_mtu() {
        let mut f = LinkFramer::with_mtu(1, 40).unwrap(); // 17-byte bodies
        let body = vec![9u8; 50];
        let mut out = Vec::new();
        f.frame_message(0x01, &body, &mut out).unwrap();
        assert_eq!(out.len(), fragments_for(50, 40));
        assert_eq!(out.len(), 3);
        let pkts: Vec<LinkPacket> = out.iter().map(|b| LinkPacket::decode(b).unwrap()).collect();
        assert!(pkts.iter().all(|p| p.frag_count == 3 && p.msg_seq == 0));
        let total: Vec<u8> = pkts.iter().flat_map(|p| p.body.clone()).collect();
        assert_eq!(total, body);
        assert_eq!(
            f.wire_bytes() as usize,
            out.iter().map(Vec::len).sum::<usize>()
        );
        assert_eq!(f.wire_bytes() as usize, wire_bytes_for(50, 40));
    }

    #[test]
    fn wire_accounting_agrees_with_the_radio_model() {
        use wbsn_platform::radio::RadioModel;
        let radio = RadioModel::default();
        // The energy model's framed path and the link framer must
        // agree packet-for-packet and byte-for-byte, so the bytes the
        // battery pays for are exactly the bytes on the wire.
        for len in [1usize, 92, 93, 94, 358, 1000] {
            assert_eq!(
                radio.frames_for_framed(len, LINK_OVERHEAD_BYTES),
                fragments_for(len, DEFAULT_MTU),
                "len {len}"
            );
            let mut framer = LinkFramer::new(0);
            let mut out = Vec::new();
            framer
                .frame_message(0x01, &vec![0u8; len], &mut out)
                .unwrap();
            assert_eq!(
                framer.wire_bytes() as usize,
                wire_bytes_for(len, DEFAULT_MTU),
                "len {len}"
            );
        }
    }

    #[test]
    fn handshake_round_trips() {
        let hs = SessionHandshake {
            version: PROTOCOL_VERSION,
            session: 11,
            fs_hz: 250,
            n_leads: 3,
            cs_window: 512,
            cs_measurements: 175,
            cs_d_per_col: 4,
            seed: 0xCAFE,
        };
        let bytes = hs.encode();
        assert_eq!(bytes.len(), SessionHandshake::ENCODED_LEN);
        assert_eq!(SessionHandshake::decode(&bytes).unwrap(), hs);
        assert!(matches!(
            SessionHandshake::decode(&bytes[..10]),
            Err(WbsnError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_protocol_version_is_rejected_before_anything_else() {
        let hs = SessionHandshake::for_config(9, &crate::monitor::MonitorConfig::default());
        let mut bytes = hs.encode();
        bytes[0] = PROTOCOL_VERSION + 1;
        // Version wins even over truncation: a future version may not
        // share this record's length.
        for cut in [bytes.len(), 10, 1] {
            assert!(matches!(
                SessionHandshake::decode(&bytes[..cut]),
                Err(WbsnError::UnsupportedVersion {
                    got,
                    supported: PROTOCOL_VERSION,
                }) if got == PROTOCOL_VERSION + 1
            ));
        }
        assert!(matches!(
            SessionHandshake::decode(&[]),
            Err(WbsnError::Truncated { .. })
        ));
    }

    #[test]
    fn downlink_frames_round_trip() {
        let frames = [
            DownlinkFrame::Ack { cum_ack: 42 },
            DownlinkFrame::Nack {
                cum_ack: 7,
                missing: vec![9, 11, 12],
            },
            DownlinkFrame::Nack {
                cum_ack: 0,
                missing: vec![],
            },
            DownlinkFrame::Directive(DirectiveFrame {
                directive_seq: 3,
                action: DirectiveAction::SetCr { cr_x10: 659 },
            }),
            DownlinkFrame::Directive(DirectiveFrame {
                directive_seq: 4,
                action: DirectiveAction::SetMode {
                    level: 4,
                    active_leads: 1,
                },
            }),
            DownlinkFrame::Directive(DirectiveFrame {
                directive_seq: 5,
                action: DirectiveAction::SetMtu { mtu: 64 },
            }),
        ];
        for (i, frame) in frames.iter().enumerate() {
            let wire = frame.to_wire(17, i as u32);
            let pkt = LinkPacket::decode(&wire).unwrap();
            assert!(is_downlink_kind(pkt.kind), "{frame:?}");
            assert_eq!(pkt.session, 17);
            assert_eq!(pkt.msg_seq, i as u32);
            assert_eq!(&DownlinkFrame::from_packet(&pkt).unwrap(), frame);
        }
        // Uplink kinds never parse as downlink frames.
        let uplink = LinkPacket {
            session: 1,
            msg_seq: 0,
            frag_index: 0,
            frag_count: 1,
            kind: 0x02,
            body: vec![],
        };
        assert!(DownlinkFrame::from_packet(&uplink).is_err());
    }

    #[test]
    fn nack_missing_list_is_capped_on_both_sides() {
        let frame = DownlinkFrame::Nack {
            cum_ack: 1,
            missing: (0..40).collect(),
        };
        let body = frame.encode_body();
        assert_eq!(body[4] as usize, NACK_MAX_MISSING);
        assert_eq!(body.len(), 5 + 4 * NACK_MAX_MISSING);
        // A forged over-cap count is rejected.
        let mut pkt = frame.to_packet(1, 0);
        pkt.body[4] = (NACK_MAX_MISSING + 1) as u8;
        assert!(matches!(
            DownlinkFrame::from_packet(&pkt),
            Err(WbsnError::Malformed { .. })
        ));
    }

    #[test]
    fn mtu_renegotiation_applies_to_the_next_message() {
        let mut uplink = Uplink::new();
        let hs = SessionHandshake::for_config(4, &crate::monitor::MonitorConfig::default());
        let mut packets = Vec::new();
        uplink.open_session(&hs, &mut packets).unwrap();
        assert!(uplink.set_mtu(4, LINK_OVERHEAD_BYTES).is_err());
        assert!(matches!(
            uplink.set_mtu(99, 64),
            Err(WbsnError::UnknownSession { id: 99 })
        ));
        uplink.set_mtu(4, 40).unwrap(); // 17-byte bodies
        packets.clear();
        let p = sample_payload();
        let seq = uplink.frame_one(4, &p, &mut packets).unwrap();
        assert_eq!(seq, 1); // message 0 was the handshake
        assert_eq!(packets.len(), fragments_for(p.byte_len(), 40));
        assert!(packets.iter().all(|b| b.len() <= 40));
    }

    #[test]
    fn uplink_tracks_sessions_and_bytes() {
        let mut uplink = Uplink::new();
        let hs = SessionHandshake {
            version: PROTOCOL_VERSION,
            session: 5,
            fs_hz: 250,
            n_leads: 3,
            cs_window: 512,
            cs_measurements: 175,
            cs_d_per_col: 4,
            seed: 1,
        };
        let mut packets = Vec::new();
        uplink.open_session(&hs, &mut packets).unwrap();
        assert!(uplink.open_session(&hs, &mut packets).is_err());
        let p = sample_payload();
        uplink
            .frame(5, core::slice::from_ref(&p), &mut packets)
            .unwrap();
        assert!(matches!(
            uplink.frame(6, core::slice::from_ref(&p), &mut packets),
            Err(WbsnError::UnknownSession { id: 6 })
        ));
        assert_eq!(uplink.payload_bytes(), p.byte_len() as u64);
        assert_eq!(
            uplink.wire_bytes() as usize,
            packets.iter().map(Vec::len).sum::<usize>()
        );
        // Closing a session retires its totals instead of erasing them.
        let before = (uplink.wire_bytes(), uplink.packets());
        assert!(uplink.close_session(5));
        assert!(!uplink.close_session(5));
        assert_eq!((uplink.wire_bytes(), uplink.packets()), before);
    }
}
