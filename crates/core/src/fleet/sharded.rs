//! The driver: a multi-threaded sharded fleet.
//!
//! [`ShardedFleet`] owns N worker threads (plain `std::thread`), each
//! running one [`Shard`] behind a per-shard work queue. The control
//! thread routes every operation through the [`ShardRouter`], copies
//! batched ingest data into pooled buffers (recycled by the workers,
//! so steady-state serving allocates no new frame buffers), and merges
//! replies back into the global order the sequential driver would have
//! produced:
//!
//! * ingest results are re-merged by original batch index,
//! * flush results and per-session reports are merged in ascending
//!   session-id order (= global insertion order),
//! * aggregate counters and energy use the exact same fold, in the
//!   exact same order, as [`NodeFleet`](super::NodeFleet).
//!
//! Because sessions are fully isolated and every per-session
//! computation is deterministic, this makes a sharded run
//! **byte-identical** to a sequential run of the same input for any
//! worker count — the property `tests/fleet_determinism.rs` pins.
//!
//! Commands to one shard are processed in submission order, so the
//! single control thread observes every shard as linearizable; the
//! only divergence from sequential semantics is error timing on a
//! failing `ingest_batch`: entries routed to *other* shards that come
//! after the failing entry in batch order may already have been
//! applied when the error is returned (the failing entry's own shard
//! stops exactly like the sequential driver).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::energy::EnergyReport;
use crate::level::{OperatingMode, ProcessingLevel};
use crate::monitor::{ActivityCounters, CardiacMonitor, MonitorBuilder};
use crate::payload::Payload;
use crate::{Result, WbsnError};

use super::router::ShardRouter;
use super::shard::{IngestEntry, IngestOutcome, SessionSnapshot, Shard};
use super::{fold_fleet_energy, FleetEnergyReport, SessionId};

enum ShardCmd {
    Add {
        id: SessionId,
        monitor: Box<CardiacMonitor>,
    },
    Remove {
        id: SessionId,
    },
    PushBlock {
        id: SessionId,
        frames: Vec<i32>,
        n_frames: usize,
    },
    Ingest {
        entries: Vec<IngestEntry>,
    },
    SwitchMode {
        id: SessionId,
        mode: OperatingMode,
    },
    SwitchCsCr {
        id: SessionId,
        cr_percent: f64,
    },
    FlushAll,
    Counters {
        id: SessionId,
    },
    Snapshot,
    Shutdown,
}

enum ShardReply {
    Removed(Option<Box<CardiacMonitor>>),
    Pushed {
        result: Result<Vec<Payload>>,
        recycled: Vec<i32>,
    },
    Ingested(IngestOutcome),
    Switched(Result<Vec<Payload>>),
    CrSwitched(Result<bool>),
    Flushed(Result<Vec<(SessionId, Vec<Payload>)>>),
    Counters(Option<ActivityCounters>),
    Snapshot(Vec<SessionSnapshot>),
}

fn worker_loop(mut shard: Shard, cmds: Receiver<ShardCmd>, replies: Sender<ShardReply>) {
    while let Ok(cmd) = cmds.recv() {
        let reply = match cmd {
            ShardCmd::Add { id, monitor } => {
                shard.insert(id, *monitor);
                continue;
            }
            ShardCmd::Remove { id } => ShardReply::Removed(shard.take(id).map(Box::new)),
            ShardCmd::PushBlock {
                id,
                mut frames,
                n_frames,
            } => {
                let result = shard.push_block(id, &frames, n_frames);
                frames.clear();
                ShardReply::Pushed {
                    result,
                    recycled: frames,
                }
            }
            ShardCmd::Ingest { entries } => ShardReply::Ingested(shard.ingest_entries(entries)),
            ShardCmd::SwitchMode { id, mode } => ShardReply::Switched(shard.switch_mode(id, mode)),
            ShardCmd::SwitchCsCr { id, cr_percent } => {
                ShardReply::CrSwitched(shard.switch_cs_cr(id, cr_percent))
            }
            ShardCmd::FlushAll => ShardReply::Flushed(shard.flush_all()),
            ShardCmd::Counters { id } => ShardReply::Counters(shard.counters_of(id)),
            ShardCmd::Snapshot => ShardReply::Snapshot(shard.snapshots()),
            ShardCmd::Shutdown => break,
        };
        if replies.send(reply).is_err() {
            // Control side is gone; nothing left to serve.
            break;
        }
    }
}

struct Worker {
    cmds: Sender<ShardCmd>,
    replies: Receiver<ShardReply>,
    handle: Option<JoinHandle<()>>,
}

/// Control-side cache of one session's lead configuration.
#[derive(Debug, Clone, Copy)]
struct SessionLeads {
    /// Frame width (samples per frame).
    n_leads: usize,
    /// Leads currently powered.
    active: usize,
}

/// N independent sessions served by N worker threads — the
/// multi-threaded counterpart of [`NodeFleet`](super::NodeFleet) with
/// the same deterministic results (see the module docs).
pub struct ShardedFleet {
    router: ShardRouter,
    workers: Vec<Worker>,
    next_id: u64,
    // Frame width and powered-lead count per live session, so
    // `ingest_batch` can validate every entry's shape upfront — before
    // any samples are shipped — and `switch_level` can keep the lead
    // count, without a worker round trip. Only the control thread
    // issues mode switches, so the cached active count stays accurate.
    // Ordered for the same reason as the router's placements: nothing
    // hash-ordered sits anywhere near report/flush order.
    session_leads: std::collections::BTreeMap<u64, SessionLeads>,
    // Cleared frame buffers returned by workers, reused by the next
    // ingest so steady-state serving allocates nothing per entry.
    frame_pool: Vec<Vec<i32>>,
}

impl core::fmt::Debug for ShardedFleet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedFleet")
            .field("workers", &self.workers.len())
            .field("sessions", &self.router.len())
            .field("loads", &self.router.loads())
            .finish()
    }
}

impl ShardedFleet {
    /// Spawns `n_workers` shard threads (at least 1).
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for zero workers;
    /// [`WbsnError::WorkerLost`] when a thread cannot be spawned.
    pub fn new(n_workers: usize) -> Result<Self> {
        if n_workers == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "n_workers",
                detail: "must be at least 1".into(),
            });
        }
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let (cmd_tx, cmd_rx) = channel();
            let (rep_tx, rep_rx) = channel();
            let handle = std::thread::Builder::new()
                .name(format!("wbsn-shard-{i}"))
                .spawn(move || worker_loop(Shard::new(), cmd_rx, rep_tx))
                .map_err(|_| WbsnError::WorkerLost { shard: i })?;
            workers.push(Worker {
                cmds: cmd_tx,
                replies: rep_rx,
                handle: Some(handle),
            });
        }
        Ok(ShardedFleet {
            router: ShardRouter::new(n_workers),
            workers,
            next_id: 0,
            session_leads: std::collections::BTreeMap::new(),
            frame_pool: Vec::new(),
        })
    }

    /// Number of worker threads (= shards).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.router.len()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.router.is_empty()
    }

    /// Live sessions per shard (index = shard = `id.raw() % workers`).
    pub fn shard_loads(&self) -> &[usize] {
        self.router.loads()
    }

    /// Live session ids in insertion order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.router.ids_in_order()
    }

    fn send(&self, shard: usize, cmd: ShardCmd) -> Result<()> {
        self.workers[shard]
            .cmds
            .send(cmd)
            .map_err(|_| WbsnError::WorkerLost { shard })
    }

    fn recv(&self, shard: usize) -> Result<ShardReply> {
        self.workers[shard]
            .replies
            .recv()
            .map_err(|_| WbsnError::WorkerLost { shard })
    }

    /// Builds and registers a new session; its shard is
    /// `id.raw() % num_workers()` for the whole session lifetime.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures (the fleet is unchanged
    /// on error) and [`WbsnError::WorkerLost`] for a dead shard.
    pub fn add_session(&mut self, builder: MonitorBuilder) -> Result<SessionId> {
        let monitor = builder.build()?;
        self.enroll(monitor)
    }

    /// Builds and registers `n` identically-configured sessions
    /// (all-or-nothing on validation failure).
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures; no sessions are added
    /// on error.
    pub fn add_sessions(&mut self, builder: &MonitorBuilder, n: usize) -> Result<Vec<SessionId>> {
        let monitors: Vec<CardiacMonitor> = (0..n)
            .map(|_| builder.clone().build())
            .collect::<Result<_>>()?;
        monitors.into_iter().map(|m| self.enroll(m)).collect()
    }

    fn enroll(&mut self, monitor: CardiacMonitor) -> Result<SessionId> {
        let id = SessionId::from_raw(self.next_id);
        let shard = ShardRouter::placement(self.router.n_shards(), id);
        let leads = SessionLeads {
            n_leads: monitor.config().n_leads,
            active: monitor.active_leads(),
        };
        self.send(
            shard,
            ShardCmd::Add {
                id,
                monitor: Box::new(monitor),
            },
        )?;
        // Register only after the send succeeded so a dead worker
        // leaves the fleet consistent.
        self.next_id += 1;
        self.router.assign(id);
        self.session_leads.insert(id.raw(), leads);
        Ok(id)
    }

    /// Removes a session, returning its monitor so the caller can
    /// flush it; `Ok(None)` when the id is unknown.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead shard.
    pub fn remove_session(&mut self, id: SessionId) -> Result<Option<CardiacMonitor>> {
        let Some(shard) = self.router.route(id) else {
            return Ok(None);
        };
        self.send(shard, ShardCmd::Remove { id })?;
        match self.recv(shard)? {
            ShardReply::Removed(monitor) => {
                self.router.release(id);
                self.session_leads.remove(&id.raw());
                Ok(monitor.map(|m| *m))
            }
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    fn pooled_copy(&mut self, frames: &[i32]) -> Vec<i32> {
        let mut buf = self.frame_pool.pop().unwrap_or_default();
        buf.extend_from_slice(frames);
        buf
    }

    /// Batched ingestion into one session (see
    /// [`CardiacMonitor::push_block`]).
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, the session's own
    /// ingestion errors, and [`WbsnError::WorkerLost`] for a dead
    /// shard.
    pub fn push_block(
        &mut self,
        id: SessionId,
        frames: &[i32],
        n_frames: usize,
    ) -> Result<Vec<Payload>> {
        let shard = self
            .router
            .route(id)
            .ok_or(WbsnError::UnknownSession { id: id.raw() })?;
        let frames = self.pooled_copy(frames);
        self.send(
            shard,
            ShardCmd::PushBlock {
                id,
                frames,
                n_frames,
            },
        )?;
        match self.recv(shard)? {
            ShardReply::Pushed { result, recycled } => {
                self.frame_pool.push(recycled);
                result
            }
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// Pushes one frame into one session (convenience; batched entry
    /// points are the hot path).
    ///
    /// # Errors
    ///
    /// As [`Self::push_block`].
    pub fn push_frame(&mut self, id: SessionId, frame: &[i32]) -> Result<Vec<Payload>> {
        self.push_block(id, frame, 1)
    }

    /// Cross-session batched ingestion: every entry is routed to its
    /// session's shard and all involved shards run concurrently. Each
    /// entry's sample count must be a multiple of its session's lead
    /// count (the frame count is derived per session).
    ///
    /// Returns one `(id, payloads)` per entry, **in batch order** —
    /// byte-identical to [`NodeFleet::ingest_batch`](super::NodeFleet::ingest_batch)
    /// on the same input, for any worker count.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] and shape mismatches
    /// ([`WbsnError::InvalidParameter`]) are validated upfront, before
    /// any shard sees a sample — a malformed batch leaves every
    /// session untouched. Mid-batch stage failures (none of the
    /// current stages can raise one) abort with the earliest failing
    /// entry in batch order; [`WbsnError::WorkerLost`] reports a dead
    /// worker thread.
    pub fn ingest_batch(
        &mut self,
        batch: &[(SessionId, &[i32])],
    ) -> Result<Vec<(SessionId, Vec<Payload>)>> {
        // Validate every id and every entry's shape before any shard
        // sees a sample, so a malformed batch cannot half-apply.
        let mut routes = Vec::with_capacity(batch.len());
        for &(id, frames) in batch {
            let shard = self
                .router
                .route(id)
                .ok_or(WbsnError::UnknownSession { id: id.raw() })?;
            let n_leads = self
                .session_leads
                .get(&id.raw())
                .ok_or(WbsnError::UnknownSession { id: id.raw() })?
                .n_leads;
            if frames.len() % n_leads != 0 {
                return Err(WbsnError::InvalidParameter {
                    what: "frames",
                    detail: format!(
                        "entry for {id} has {} samples, not a multiple of its {n_leads} leads",
                        frames.len()
                    ),
                });
            }
            routes.push(shard);
        }
        let mut per_shard: Vec<Vec<IngestEntry>> = Vec::new();
        per_shard.resize_with(self.workers.len(), Vec::new);
        for (batch_idx, (&(id, frames), &shard)) in batch.iter().zip(&routes).enumerate() {
            let frames = self.pooled_copy(frames);
            per_shard[shard].push(IngestEntry {
                batch_idx,
                id,
                frames,
            });
        }
        let involved: Vec<usize> = (0..self.workers.len())
            .filter(|&s| !per_shard[s].is_empty())
            .collect();
        // Dispatch to every reachable shard, then drain one reply per
        // *dispatched* shard even when something fails in between —
        // leaving a reply queued would desynchronize the per-shard
        // command/reply protocol for every later call.
        let mut lost: Option<WbsnError> = None;
        let mut dispatched = Vec::with_capacity(involved.len());
        for &shard in &involved {
            let entries = core::mem::take(&mut per_shard[shard]);
            match self.send(shard, ShardCmd::Ingest { entries }) {
                Ok(()) => dispatched.push(shard),
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        let mut merged: Vec<Option<(SessionId, Vec<Payload>)>> = Vec::with_capacity(batch.len());
        merged.resize_with(batch.len(), || None);
        let mut first_error: Option<(usize, WbsnError)> = None;
        for &shard in &dispatched {
            match self.recv(shard) {
                Ok(ShardReply::Ingested(IngestOutcome {
                    results,
                    recycled,
                    error,
                })) => {
                    for (batch_idx, id, payloads) in results {
                        merged[batch_idx] = Some((id, payloads));
                    }
                    self.frame_pool.extend(recycled);
                    if let Some((idx, err)) = error {
                        if first_error.as_ref().is_none_or(|(i, _)| idx < *i) {
                            first_error = Some((idx, err));
                        }
                    }
                }
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        if let Some(e) = lost {
            return Err(e);
        }
        if let Some((_, err)) = first_error {
            return Err(err);
        }
        // A hole means the entry's shard never reported that batch
        // index — surface it as a lost worker, not a panic.
        merged
            .into_iter()
            .zip(&routes)
            .map(|(slot, &shard)| slot.ok_or(WbsnError::WorkerLost { shard }))
            .collect()
    }

    /// Switches one session's operating mode live — the per-session
    /// reconfigure command of the power governor
    /// ([`crate::governor`]), routed to the session's shard like any
    /// other command: commands to one shard execute in submission
    /// order, so a switch interleaved with ingests produces exactly
    /// the payload stream the sequential driver produces for the same
    /// command order (pinned by `tests/fleet_determinism.rs`). Returns
    /// the boundary flush payloads.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, the session's own
    /// mode validation errors, and [`WbsnError::WorkerLost`] for a
    /// dead shard.
    pub fn switch_mode(&mut self, id: SessionId, mode: OperatingMode) -> Result<Vec<Payload>> {
        let shard = self
            .router
            .route(id)
            .ok_or(WbsnError::UnknownSession { id: id.raw() })?;
        self.send(shard, ShardCmd::SwitchMode { id, mode })?;
        match self.recv(shard)? {
            ShardReply::Switched(result) => {
                let payloads = result?;
                if let Some(leads) = self.session_leads.get_mut(&id.raw()) {
                    leads.active = mode.active_leads;
                }
                Ok(payloads)
            }
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// Renegotiates one session's CS compression ratio live — a
    /// gateway downlink
    /// [`SetCr`](crate::link::DirectiveAction::SetCr) directive routed
    /// deterministically to the owning shard, exactly like
    /// [`Self::switch_mode`]: commands to one shard execute in
    /// submission order, so a renegotiation interleaved with ingests
    /// produces the payload stream the sequential driver produces for
    /// the same command order. Returns whether the running stage
    /// applied it now.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, ratio validation
    /// errors, and [`WbsnError::WorkerLost`] for a dead shard.
    pub fn switch_cs_cr(&mut self, id: SessionId, cr_percent: f64) -> Result<bool> {
        let shard = self
            .router
            .route(id)
            .ok_or(WbsnError::UnknownSession { id: id.raw() })?;
        self.send(shard, ShardCmd::SwitchCsCr { id, cr_percent })?;
        match self.recv(shard)? {
            ShardReply::CrSwitched(result) => result,
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// Switches one session's processing level, keeping its powered
    /// lead count (see [`Self::switch_mode`]).
    ///
    /// # Errors
    ///
    /// As [`Self::switch_mode`].
    pub fn switch_level(&mut self, id: SessionId, level: ProcessingLevel) -> Result<Vec<Payload>> {
        let active = self
            .session_leads
            .get(&id.raw())
            .ok_or(WbsnError::UnknownSession { id: id.raw() })?
            .active;
        self.switch_mode(
            id,
            OperatingMode {
                level,
                active_leads: active,
            },
        )
    }

    /// Flushes every session, returning whatever payloads were still
    /// buffered, tagged by session (insertion order, non-empty only —
    /// identical to the sequential driver).
    ///
    /// # Errors
    ///
    /// The first stage failure within a shard aborts that shard's
    /// sweep; one such error (deterministically chosen) is returned.
    pub fn flush_all(&mut self) -> Result<Vec<(SessionId, Vec<Payload>)>> {
        let (dispatched, mut lost) = self.broadcast(|| ShardCmd::FlushAll);
        let mut out: Vec<(SessionId, Vec<Payload>)> = Vec::new();
        let mut first_error = None;
        for shard in dispatched {
            match self.recv(shard) {
                Ok(ShardReply::Flushed(Ok(tagged))) => out.extend(tagged),
                Ok(ShardReply::Flushed(Err(e))) => {
                    // Keep the lowest shard's error: deterministic,
                    // since each shard's sweep is deterministic.
                    first_error.get_or_insert(e);
                }
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        if let Some(e) = lost {
            return Err(e);
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Ascending id = global insertion order.
        out.sort_unstable_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Sends one command to every reachable worker; returns the shards
    /// actually dispatched to (each owes exactly one reply, which the
    /// caller must drain even on failure) plus the first send error.
    fn broadcast(&self, make_cmd: impl Fn() -> ShardCmd) -> (Vec<usize>, Option<WbsnError>) {
        let mut dispatched = Vec::with_capacity(self.workers.len());
        let mut lost = None;
        for shard in 0..self.workers.len() {
            match self.send(shard, make_cmd()) {
                Ok(()) => dispatched.push(shard),
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        (dispatched, lost)
    }

    /// Point-in-time per-session snapshots across the whole fleet, in
    /// insertion order.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead shard.
    pub fn snapshots(&self) -> Result<Vec<SessionSnapshot>> {
        let (dispatched, mut lost) = self.broadcast(|| ShardCmd::Snapshot);
        let mut all = Vec::with_capacity(self.router.len());
        for shard in dispatched {
            match self.recv(shard) {
                Ok(ShardReply::Snapshot(s)) => all.extend(s),
                Ok(_) => {
                    lost.get_or_insert(WbsnError::WorkerLost { shard });
                }
                Err(e) => {
                    lost.get_or_insert(e);
                }
            }
        }
        if let Some(e) = lost {
            return Err(e);
        }
        all.sort_unstable_by_key(|s| s.id);
        Ok(all)
    }

    /// Counters of one session.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] / [`WbsnError::WorkerLost`].
    pub fn session_counters(&self, id: SessionId) -> Result<ActivityCounters> {
        let shard = self
            .router
            .route(id)
            .ok_or(WbsnError::UnknownSession { id: id.raw() })?;
        self.send(shard, ShardCmd::Counters { id })?;
        match self.recv(shard)? {
            ShardReply::Counters(counters) => {
                counters.ok_or(WbsnError::UnknownSession { id: id.raw() })
            }
            _ => Err(WbsnError::WorkerLost { shard }),
        }
    }

    /// Element-wise sum of every session's [`ActivityCounters`], in
    /// the same fold order as the sequential driver.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead shard.
    pub fn aggregate_counters(&self) -> Result<ActivityCounters> {
        Ok(self
            .snapshots()?
            .iter()
            .fold(ActivityCounters::default(), |acc, s| {
                acc.merged(&s.counters)
            }))
    }

    /// Per-session energy reports (insertion order), priced on the
    /// default node model.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead shard.
    pub fn session_energy_reports(&self) -> Result<Vec<(SessionId, EnergyReport)>> {
        Ok(self
            .snapshots()?
            .into_iter()
            .map(|s| (s.id, s.energy))
            .collect())
    }

    /// Aggregated fleet energy report — bit-identical to
    /// [`NodeFleet::energy_report`](super::NodeFleet::energy_report)
    /// for the same sessions and input.
    ///
    /// # Errors
    ///
    /// [`WbsnError::WorkerLost`] for a dead shard.
    pub fn energy_report(&self) -> Result<FleetEnergyReport> {
        Ok(fold_fleet_energy(&self.snapshots()?))
    }
}

impl Drop for ShardedFleet {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            let _ = worker.cmds.send(ShardCmd::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}
