//! The shard: a single-threaded group of sessions.
//!
//! A [`Shard`] owns a subset of a fleet's sessions and runs them on
//! whatever thread is driving it — it is the former `NodeFleet` body
//! factored out so that the sequential [`crate::fleet::NodeFleet`]
//! driver and the multi-threaded [`crate::fleet::ShardedFleet`] driver
//! share one implementation of session storage, ingestion, flushing
//! and reporting. Ids are assigned by the driver, not the shard; the
//! shard only stores sessions sorted by id, which makes lookup a
//! binary search and iteration deterministic insertion order (ids are
//! handed out monotonically and never reused).

use crate::energy::{CycleCosts, EnergyReport};
use crate::level::OperatingMode;
use crate::monitor::{ActivityCounters, CardiacMonitor};
use crate::payload::Payload;
use crate::{Result, WbsnError};
use wbsn_platform::node::NodeModel;

use super::SessionId;

struct Session {
    id: SessionId,
    monitor: CardiacMonitor,
}

impl core::fmt::Debug for Session {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("level", &self.monitor.config().level)
            .finish()
    }
}

/// Point-in-time view of one session: its counters plus the energy
/// report priced on the default node model. Snapshots are plain data,
/// so shard workers can hand them across threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSnapshot {
    /// The session.
    pub id: SessionId,
    /// Activity accumulated so far.
    pub counters: ActivityCounters,
    /// Energy report priced on the default node model.
    pub energy: EnergyReport,
}

/// One ingest-batch entry routed to a shard: the original batch index
/// (for deterministic re-merging), the target session, and an owned
/// copy of the interleaved frames (buffers are recycled through the
/// driver's pool).
#[derive(Debug)]
pub(crate) struct IngestEntry {
    pub batch_idx: usize,
    pub id: SessionId,
    pub frames: Vec<i32>,
}

/// What a shard produced for one ingest command.
#[derive(Debug)]
pub(crate) struct IngestOutcome {
    /// `(batch_idx, id, payloads)` for every entry processed, in batch
    /// order.
    pub results: Vec<(usize, SessionId, Vec<Payload>)>,
    /// The entries' frame buffers, cleared, for pool reuse.
    pub recycled: Vec<Vec<i32>>,
    /// First failure in batch order; entries after it were skipped.
    pub error: Option<(usize, WbsnError)>,
}

/// A single-threaded group of sessions — the unit of work a fleet
/// driver schedules.
#[derive(Debug, Default)]
pub struct Shard {
    // Sorted by id; ids are assigned monotonically by the driver, so
    // insertion order and ascending-id order coincide.
    sessions: Vec<Session>,
}

impl Shard {
    /// Empty shard.
    pub fn new() -> Self {
        Shard::default()
    }

    /// Empty shard with room for `n` sessions.
    pub fn with_capacity(n: usize) -> Self {
        Shard {
            sessions: Vec::with_capacity(n),
        }
    }

    /// Number of sessions on this shard.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when the shard holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Session ids in insertion (ascending-id) order.
    pub fn session_ids(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.sessions.iter().map(|s| s.id)
    }

    /// True when `id` lives on this shard.
    pub fn contains(&self, id: SessionId) -> bool {
        self.index_of(id).is_ok()
    }

    /// Stores a session under a driver-assigned id. Re-inserting an id
    /// replaces the previous session (drivers never do; ids are unique
    /// by construction).
    pub fn insert(&mut self, id: SessionId, monitor: CardiacMonitor) {
        match self.index_of(id) {
            Ok(i) => self.sessions[i] = Session { id, monitor },
            Err(i) => self.sessions.insert(i, Session { id, monitor }),
        }
    }

    /// Removes a session, returning its monitor so the caller can
    /// flush it; `None` when the id is not on this shard.
    pub fn take(&mut self, id: SessionId) -> Option<CardiacMonitor> {
        let idx = self.index_of(id).ok()?;
        Some(self.sessions.remove(idx).monitor)
    }

    /// Read access to one session.
    pub fn get(&self, id: SessionId) -> Option<&CardiacMonitor> {
        self.index_of(id).ok().map(|i| &self.sessions[i].monitor)
    }

    /// Mutable access to one session.
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut CardiacMonitor> {
        self.index_of(id)
            .ok()
            .map(move |i| &mut self.sessions[i].monitor)
    }

    fn index_of(&self, id: SessionId) -> core::result::Result<usize, usize> {
        self.sessions.binary_search_by_key(&id, |s| s.id)
    }

    fn monitor_mut(&mut self, id: SessionId) -> Result<&mut CardiacMonitor> {
        match self.index_of(id) {
            Ok(i) => Ok(&mut self.sessions[i].monitor),
            Err(_) => Err(WbsnError::UnknownSession { id: id.raw() }),
        }
    }

    /// Pushes one frame into one session.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus the
    /// session's own ingestion errors.
    pub fn push_frame(&mut self, id: SessionId, frame: &[i32]) -> Result<Vec<Payload>> {
        self.monitor_mut(id)?.try_push(frame)
    }

    /// Batched ingestion into one session (see
    /// [`CardiacMonitor::push_block`]). Routes through the stage's
    /// block kernel: in the steady state (warm session, no payload
    /// due) this performs **zero heap allocations per frame** — pinned
    /// by the counting-allocator harness in
    /// `tests/alloc_steady_state.rs`.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus the
    /// session's own ingestion errors.
    pub fn push_block(
        &mut self,
        id: SessionId,
        frames: &[i32],
        n_frames: usize,
    ) -> Result<Vec<Payload>> {
        self.monitor_mut(id)?.push_block(frames, n_frames)
    }

    /// Switches one session's operating mode live — the per-session
    /// reconfigure command the power governor issues through the
    /// serving layer. Returns the boundary flush payloads (see
    /// [`CardiacMonitor::switch_mode`] for the determinism contract).
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus the
    /// session's own mode-switch validation errors.
    pub fn switch_mode(&mut self, id: SessionId, mode: OperatingMode) -> Result<Vec<Payload>> {
        self.monitor_mut(id)?.switch_mode(mode)
    }

    /// Renegotiates one session's CS compression ratio live — the
    /// application path of a gateway downlink
    /// [`SetCr`](crate::link::DirectiveAction::SetCr) directive routed
    /// to the owning shard. Returns whether the running stage applied
    /// it now (see [`CardiacMonitor::switch_cs_cr`]).
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus ratio
    /// validation errors.
    pub fn switch_cs_cr(&mut self, id: SessionId, cr_percent: f64) -> Result<bool> {
        self.monitor_mut(id)?.switch_cs_cr(cr_percent)
    }

    /// Ingests one cross-session entry: the frame count is derived
    /// from the session's configured lead count (`push_block` rejects
    /// buffers that are not an exact multiple).
    pub(crate) fn ingest_one(&mut self, id: SessionId, frames: &[i32]) -> Result<Vec<Payload>> {
        let monitor = self.monitor_mut(id)?;
        let n_frames = frames.len() / monitor.config().n_leads;
        monitor.push_block(frames, n_frames)
    }

    /// Runs a routed slice of an ingest batch (entries arrive in batch
    /// order). Processing stops at the first failing entry, mirroring
    /// the sequential driver; every frame buffer is cleared and
    /// returned for reuse either way.
    pub(crate) fn ingest_entries(&mut self, entries: Vec<IngestEntry>) -> IngestOutcome {
        let mut results = Vec::with_capacity(entries.len());
        let mut recycled = Vec::with_capacity(entries.len());
        let mut error: Option<(usize, WbsnError)> = None;
        for mut e in entries {
            if error.is_none() {
                match self.ingest_one(e.id, &e.frames) {
                    Ok(payloads) => results.push((e.batch_idx, e.id, payloads)),
                    Err(err) => error = Some((e.batch_idx, err)),
                }
            }
            e.frames.clear();
            recycled.push(e.frames);
        }
        IngestOutcome {
            results,
            recycled,
            error,
        }
    }

    /// Flushes every session, returning whatever payloads were still
    /// buffered, tagged by session (insertion order, non-empty only).
    ///
    /// # Errors
    ///
    /// The first stage failure aborts the sweep.
    pub fn flush_all(&mut self) -> Result<Vec<(SessionId, Vec<Payload>)>> {
        let mut out = Vec::with_capacity(self.sessions.len());
        for s in &mut self.sessions {
            let payloads = s.monitor.flush()?;
            if !payloads.is_empty() {
                out.push((s.id, payloads));
            }
        }
        Ok(out)
    }

    /// Counters of one session, without pricing energy.
    pub fn counters_of(&self, id: SessionId) -> Option<ActivityCounters> {
        self.get(id).map(CardiacMonitor::counters)
    }

    /// Element-wise sum of the shard's [`ActivityCounters`] in
    /// insertion order (`seconds` counts session-seconds).
    pub fn aggregate_counters(&self) -> ActivityCounters {
        self.sessions
            .iter()
            .fold(ActivityCounters::default(), |acc, s| {
                acc.merged(&s.monitor.counters())
            })
    }

    /// Per-session snapshots (counters + energy on the default node
    /// model), in insertion order.
    pub fn snapshots(&self) -> Vec<SessionSnapshot> {
        let node = NodeModel::default();
        let costs = CycleCosts::default();
        self.sessions
            .iter()
            .map(|s| {
                let cfg = s.monitor.config();
                let counters = s.monitor.counters();
                // Price at the powered lead count, exactly like
                // `CardiacMonitor::energy_report` — gated leads draw
                // no AFE/ADC energy.
                let energy = crate::energy::report(
                    cfg.level,
                    &counters,
                    s.monitor.active_leads(),
                    cfg.fs_hz as f64,
                    &node,
                    &costs,
                );
                SessionSnapshot {
                    id: s.id,
                    counters,
                    energy,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorBuilder;

    #[test]
    fn insert_keeps_sessions_sorted_by_id() {
        let mut shard = Shard::new();
        for raw in [4u64, 0, 2] {
            shard.insert(
                SessionId::from_raw(raw),
                MonitorBuilder::new().build().unwrap(),
            );
        }
        let ids: Vec<u64> = shard.session_ids().map(SessionId::raw).collect();
        assert_eq!(ids, vec![0, 2, 4]);
        assert!(shard.contains(SessionId::from_raw(2)));
        assert!(!shard.contains(SessionId::from_raw(3)));
    }

    #[test]
    fn take_removes_and_returns_the_monitor() {
        let mut shard = Shard::new();
        let id = SessionId::from_raw(7);
        shard.insert(id, MonitorBuilder::new().build().unwrap());
        shard.push_block(id, &[0; 9], 3).unwrap();
        let monitor = shard.take(id).unwrap();
        assert_eq!(monitor.counters().samples_in, 9);
        assert!(shard.is_empty());
        assert!(matches!(
            shard.push_frame(id, &[0, 0, 0]),
            Err(WbsnError::UnknownSession { id: 7 })
        ));
    }

    #[test]
    fn ingest_entries_stops_at_the_first_error_and_recycles_buffers() {
        let mut shard = Shard::new();
        let a = SessionId::from_raw(0);
        let b = SessionId::from_raw(1);
        shard.insert(a, MonitorBuilder::new().build().unwrap());
        shard.insert(b, MonitorBuilder::new().build().unwrap());
        let entries = vec![
            IngestEntry {
                batch_idx: 0,
                id: a,
                frames: vec![0; 9],
            },
            IngestEntry {
                batch_idx: 1,
                id: b,
                frames: vec![0; 10], // not a multiple of 3 leads
            },
            IngestEntry {
                batch_idx: 2,
                id: a,
                frames: vec![0; 9],
            },
        ];
        let out = shard.ingest_entries(entries);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.recycled.len(), 3);
        assert!(out.recycled.iter().all(Vec::is_empty));
        let (idx, _) = out.error.expect("entry 1 must fail");
        assert_eq!(idx, 1);
        // Entry 2 was skipped: only entry 0's samples landed.
        assert_eq!(shard.get(a).unwrap().counters().samples_in, 9);
    }
}
