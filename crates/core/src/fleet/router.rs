//! The router: a stable `SessionId → shard` mapping.
//!
//! Placement is the pure function `id.raw() % n_shards` — because raw
//! ids are handed out monotonically and never reused, the mapping is
//! stable across the whole life of a fleet: adding or removing other
//! sessions never moves an existing session to a different shard, and
//! a stream of enrolments spreads round-robin over the shards. The
//! router also records which ids are live so drivers can answer
//! membership queries (`len`, unknown-id validation, global id order)
//! without asking the shards.

use std::collections::BTreeMap;

use super::SessionId;

/// Stable `SessionId → shard` mapping plus the live-id registry a
/// fleet driver consults before touching any shard.
#[derive(Debug)]
pub struct ShardRouter {
    n_shards: usize,
    // raw id -> shard index, for every live session. Ordered so that
    // `ids_in_order` (which feeds report and flush order) is the plain
    // key sequence rather than a post-hoc sort of hashed buckets.
    placements: BTreeMap<u64, usize>,
    loads: Vec<usize>,
}

impl ShardRouter {
    /// Router over `n_shards` shards (clamped to at least 1).
    pub fn new(n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        ShardRouter {
            n_shards,
            placements: BTreeMap::new(),
            loads: vec![0; n_shards],
        }
    }

    /// Number of shards routed over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Live sessions across all shards.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// The pure placement function: `id.raw() % n_shards`.
    pub fn placement(n_shards: usize, id: SessionId) -> usize {
        (id.raw() % n_shards.max(1) as u64) as usize
    }

    /// Registers a new session and returns its shard.
    pub fn assign(&mut self, id: SessionId) -> usize {
        let shard = Self::placement(self.n_shards, id);
        if self.placements.insert(id.raw(), shard).is_none() {
            self.loads[shard] += 1;
        }
        shard
    }

    /// Shard of a live session; `None` for unknown/removed ids.
    pub fn route(&self, id: SessionId) -> Option<usize> {
        self.placements.get(&id.raw()).copied()
    }

    /// Unregisters a session, returning the shard it lived on.
    pub fn release(&mut self, id: SessionId) -> Option<usize> {
        let shard = self.placements.remove(&id.raw())?;
        self.loads[shard] -= 1;
        Some(shard)
    }

    /// Live sessions per shard.
    pub fn loads(&self) -> &[usize] {
        &self.loads
    }

    /// Every live id, ascending (= global insertion order, since ids
    /// are monotonic).
    pub fn ids_in_order(&self) -> Vec<SessionId> {
        self.placements
            .keys()
            .copied()
            .map(SessionId::from_raw)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_stable_under_churn() {
        let mut router = ShardRouter::new(4);
        let ids: Vec<SessionId> = (0..16).map(SessionId::from_raw).collect();
        let before: Vec<usize> = ids.iter().map(|&id| router.assign(id)).collect();
        // Remove half the fleet; survivors must not move.
        for &id in ids.iter().step_by(2) {
            router.release(id);
        }
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(router.route(id), Some(before[i]), "session {id} moved");
                assert_eq!(ShardRouter::placement(4, id), before[i]);
            } else {
                assert_eq!(router.route(id), None);
            }
        }
        assert_eq!(router.len(), 8);
    }

    #[test]
    fn monotonic_ids_spread_round_robin() {
        let mut router = ShardRouter::new(3);
        for raw in 0..9 {
            router.assign(SessionId::from_raw(raw));
        }
        assert_eq!(router.loads(), &[3, 3, 3]);
        assert_eq!(
            router.ids_in_order(),
            (0..9).map(SessionId::from_raw).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let router = ShardRouter::new(0);
        assert_eq!(router.n_shards(), 1);
        assert_eq!(ShardRouter::placement(0, SessionId::from_raw(5)), 0);
    }
}
