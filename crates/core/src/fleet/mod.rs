//! The serving layer: many monitoring sessions in one process.
//!
//! A base station (or a cloud replay service) terminates the streams
//! of many wearable nodes at once. The layer is split into three
//! explicit pieces:
//!
//! * **[`Shard`]** ([`shard`]) — a single-threaded group of sessions:
//!   storage sorted by id, per-session ingestion, flushing, and
//!   counter/energy snapshots. The unit of work a driver schedules.
//! * **[`ShardRouter`]** ([`router`]) — the stable
//!   `SessionId → shard` mapping: placement is `id.raw() % n_shards`,
//!   and because raw ids are monotonic and never reused it survives
//!   any sequence of adds and removes without moving a session.
//! * **Drivers** — [`NodeFleet`] runs one shard inline on the calling
//!   thread; [`ShardedFleet`] ([`sharded`]) runs N shards on N worker
//!   threads behind per-shard work queues.
//!
//! ## The determinism guarantee
//!
//! Sessions are fully isolated and every per-session computation is
//! deterministic, so **a fleet produces byte-identical payloads to
//! the same monitors run sequentially — regardless of driver and
//! worker count**. Cross-session results are always merged in a fixed
//! global order (batch order for ingestion, ascending session id —
//! which equals insertion order — for flushes and reports), and both
//! drivers share the exact same aggregation folds, so aggregated
//! counters and energy reports are bit-identical too. The property is
//! pinned by `tests/fleet_determinism.rs`.
//!
//! ```
//! use wbsn_core::fleet::NodeFleet;
//! use wbsn_core::monitor::MonitorBuilder;
//! use wbsn_core::level::ProcessingLevel;
//!
//! let mut fleet = NodeFleet::new();
//! let id = fleet
//!     .add_session(MonitorBuilder::new().level(ProcessingLevel::RawStreaming))
//!     .unwrap();
//! let payloads = fleet.push_block(id, &[0; 3 * 250], 250).unwrap();
//! assert!(!payloads.is_empty());
//! let report = fleet.energy_report();
//! assert_eq!(report.sessions, 1);
//! ```
//!
//! Scaling across cores is one line away:
//!
//! ```
//! use wbsn_core::fleet::ShardedFleet;
//! use wbsn_core::monitor::MonitorBuilder;
//!
//! let mut fleet = ShardedFleet::new(4).unwrap();
//! let ids = fleet.add_sessions(&MonitorBuilder::new(), 8).unwrap();
//! let frames = [0i32; 3 * 250];
//! let batch: Vec<_> = ids.iter().map(|&id| (id, &frames[..])).collect();
//! let results = fleet.ingest_batch(&batch).unwrap();
//! assert_eq!(results.len(), 8);
//! ```

pub mod router;
pub mod shard;
pub mod sharded;

pub use router::ShardRouter;
pub use shard::{SessionSnapshot, Shard};
pub use sharded::ShardedFleet;

use crate::energy::EnergyReport;
use crate::level::{OperatingMode, ProcessingLevel};
use crate::monitor::{ActivityCounters, CardiacMonitor, MonitorBuilder};
use crate::payload::Payload;
use crate::{Result, WbsnError};

/// Opaque, process-unique session handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// Raw id value, stable for logging and sharding: ids are handed
    /// out monotonically and never reused, and a [`ShardedFleet`]
    /// places a session on shard `raw % num_workers` for its whole
    /// lifetime.
    pub fn raw(self) -> u64 {
        self.0
    }

    pub(crate) fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }
}

impl core::fmt::Display for SessionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Aggregated fleet energy view (sums and extremes over the sessions'
/// individual [`EnergyReport`]s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEnergyReport {
    /// Sessions aggregated.
    pub sessions: usize,
    /// Element-wise summed activity (`seconds` counts session-seconds).
    pub counters: ActivityCounters,
    /// Sum of per-session average node power, mW.
    pub total_power_mw: f64,
    /// Mean per-session average node power, mW.
    pub mean_power_mw: f64,
    /// Shortest projected battery lifetime over the fleet, days.
    pub min_lifetime_days: f64,
}

/// The one fleet-level aggregation fold, shared by both drivers so
/// their reports are bit-identical: `snapshots` must be in ascending
/// session-id (= insertion) order.
pub(crate) fn fold_fleet_energy(snapshots: &[SessionSnapshot]) -> FleetEnergyReport {
    let sessions = snapshots.len();
    let counters = snapshots
        .iter()
        .fold(ActivityCounters::default(), |acc, s| {
            acc.merged(&s.counters)
        });
    let total_power_mw: f64 = snapshots
        .iter()
        .map(|s| s.energy.breakdown.avg_power_mw())
        .sum();
    let min_lifetime_days = snapshots
        .iter()
        .map(|s| s.energy.lifetime_days)
        .fold(f64::INFINITY, f64::min);
    FleetEnergyReport {
        sessions,
        counters,
        total_power_mw,
        mean_power_mw: if sessions == 0 {
            0.0
        } else {
            total_power_mw / sessions as f64
        },
        min_lifetime_days: if sessions == 0 {
            0.0
        } else {
            min_lifetime_days
        },
    }
}

/// N independent monitoring sessions behind one ingestion front end,
/// run inline on the calling thread — the sequential driver over a
/// single [`Shard`], and the reference the multi-threaded
/// [`ShardedFleet`] is byte-compared against.
#[derive(Debug, Default)]
pub struct NodeFleet {
    shard: Shard,
    next_id: u64,
}

impl NodeFleet {
    /// Empty fleet.
    pub fn new() -> Self {
        NodeFleet::default()
    }

    /// Empty fleet with room for `n` sessions.
    pub fn with_capacity(n: usize) -> Self {
        NodeFleet {
            shard: Shard::with_capacity(n),
            next_id: 0,
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }

    /// Live session ids in insertion order.
    pub fn session_ids(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.shard.session_ids()
    }

    /// Builds and registers a new session.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures; the fleet is unchanged
    /// on error.
    pub fn add_session(&mut self, builder: MonitorBuilder) -> Result<SessionId> {
        let monitor = builder.build()?;
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.shard.insert(id, monitor);
        Ok(id)
    }

    /// Builds and registers `n` identically-configured sessions.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures; no sessions are added
    /// on error.
    pub fn add_sessions(&mut self, builder: &MonitorBuilder, n: usize) -> Result<Vec<SessionId>> {
        // Build everything first so a failure adds nothing.
        let monitors: Vec<CardiacMonitor> = (0..n)
            .map(|_| builder.clone().build())
            .collect::<Result<_>>()?;
        Ok(monitors
            .into_iter()
            .map(|monitor| {
                let id = SessionId(self.next_id);
                self.next_id += 1;
                self.shard.insert(id, monitor);
                id
            })
            .collect())
    }

    /// Removes a session, returning its monitor so the caller can
    /// flush it; `None` when the id is unknown.
    pub fn remove_session(&mut self, id: SessionId) -> Option<CardiacMonitor> {
        self.shard.take(id)
    }

    /// Read access to one session.
    pub fn session(&self, id: SessionId) -> Option<&CardiacMonitor> {
        self.shard.get(id)
    }

    /// Mutable access to one session.
    pub fn session_mut(&mut self, id: SessionId) -> Option<&mut CardiacMonitor> {
        self.shard.get_mut(id)
    }

    /// Pushes one frame into one session.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus the
    /// session's own ingestion errors.
    pub fn push_frame(&mut self, id: SessionId, frame: &[i32]) -> Result<Vec<Payload>> {
        self.shard.push_frame(id, frame)
    }

    /// Batched ingestion into one session (see
    /// [`CardiacMonitor::push_block`]).
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus the
    /// session's own ingestion errors.
    pub fn push_block(
        &mut self,
        id: SessionId,
        frames: &[i32],
        n_frames: usize,
    ) -> Result<Vec<Payload>> {
        self.shard.push_block(id, frames, n_frames)
    }

    /// Cross-session batched ingestion: entries are processed in batch
    /// order; each entry's sample count must be a multiple of its
    /// session's lead count (the frame count is derived per session).
    /// Returns one `(id, payloads)` per entry, in batch order.
    ///
    /// ```
    /// use wbsn_core::fleet::{NodeFleet, SessionId};
    /// use wbsn_core::monitor::MonitorBuilder;
    /// use wbsn_core::level::ProcessingLevel;
    ///
    /// let mut fleet = NodeFleet::new();
    /// let ids = fleet
    ///     .add_sessions(
    ///         &MonitorBuilder::new().level(ProcessingLevel::RawStreaming),
    ///         3,
    ///     )
    ///     .unwrap();
    /// // One second of zeroed 3-lead signal for every session.
    /// let frames = [0i32; 3 * 250];
    /// let batch: Vec<(SessionId, &[i32])> =
    ///     ids.iter().map(|&id| (id, &frames[..])).collect();
    /// let results = fleet.ingest_batch(&batch).unwrap();
    /// assert_eq!(results.len(), 3);
    /// assert!(results.iter().all(|(_, payloads)| !payloads.is_empty()));
    /// ```
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] and shape mismatches
    /// ([`WbsnError::InvalidParameter`]) are validated upfront, before
    /// any samples land — a malformed batch leaves every session
    /// untouched. A mid-batch stage failure (none of the current
    /// stages can raise one) aborts with earlier entries applied.
    pub fn ingest_batch(
        &mut self,
        batch: &[(SessionId, &[i32])],
    ) -> Result<Vec<(SessionId, Vec<Payload>)>> {
        for &(id, frames) in batch {
            let monitor = self
                .shard
                .get(id)
                .ok_or(WbsnError::UnknownSession { id: id.raw() })?;
            let n_leads = monitor.config().n_leads;
            if frames.len() % n_leads != 0 {
                return Err(WbsnError::InvalidParameter {
                    what: "frames",
                    detail: format!(
                        "entry for {id} has {} samples, not a multiple of its {n_leads} leads",
                        frames.len()
                    ),
                });
            }
        }
        batch
            .iter()
            .map(|&(id, frames)| self.shard.ingest_one(id, frames).map(|p| (id, p)))
            .collect()
    }

    /// Switches one session's operating mode live — the per-session
    /// reconfigure command of the power governor
    /// ([`crate::governor`]). Returns the boundary flush payloads; the
    /// switched session is bit-identical to a fresh one at the new
    /// mode from the same boundary (see
    /// [`CardiacMonitor::switch_mode`]), so fleet determinism is
    /// preserved for any driver and worker count.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus mode
    /// validation errors (the session is untouched on error).
    pub fn switch_mode(&mut self, id: SessionId, mode: OperatingMode) -> Result<Vec<Payload>> {
        self.shard.switch_mode(id, mode)
    }

    /// Renegotiates one session's CS compression ratio live — the
    /// node-side application of a gateway downlink
    /// [`SetCr`](crate::link::DirectiveAction::SetCr) directive,
    /// routed to the owning session. Returns whether the running
    /// stage applied it now (see [`CardiacMonitor::switch_cs_cr`]).
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus ratio
    /// validation errors (the session is untouched on error).
    pub fn switch_cs_cr(&mut self, id: SessionId, cr_percent: f64) -> Result<bool> {
        self.shard.switch_cs_cr(id, cr_percent)
    }

    /// Switches one session's processing level, keeping its powered
    /// lead count (see [`Self::switch_mode`]).
    ///
    /// # Errors
    ///
    /// As [`Self::switch_mode`].
    pub fn switch_level(&mut self, id: SessionId, level: ProcessingLevel) -> Result<Vec<Payload>> {
        let active = self
            .shard
            .get(id)
            .ok_or(WbsnError::UnknownSession { id: id.raw() })?
            .active_leads();
        self.shard.switch_mode(
            id,
            OperatingMode {
                level,
                active_leads: active,
            },
        )
    }

    /// Flushes every session, returning whatever payloads were still
    /// buffered, tagged by session.
    ///
    /// # Errors
    ///
    /// The first stage failure aborts the sweep.
    pub fn flush_all(&mut self) -> Result<Vec<(SessionId, Vec<Payload>)>> {
        self.shard.flush_all()
    }

    /// Element-wise sum of every session's [`ActivityCounters`]
    /// (`seconds` therefore counts session-seconds).
    pub fn aggregate_counters(&self) -> ActivityCounters {
        self.shard.aggregate_counters()
    }

    /// Per-session energy reports (insertion order), priced on the
    /// default node model.
    pub fn session_energy_reports(&self) -> Vec<(SessionId, EnergyReport)> {
        self.shard
            .snapshots()
            .into_iter()
            .map(|s| (s.id, s.energy))
            .collect()
    }

    /// Aggregated fleet energy report on the default node model.
    pub fn energy_report(&self) -> FleetEnergyReport {
        fold_fleet_energy(&self.shard.snapshots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::ProcessingLevel;
    use wbsn_ecg_synth::noise::NoiseConfig;
    use wbsn_ecg_synth::RecordBuilder;

    fn interleaved(seed: u64, secs: f64) -> (Vec<i32>, usize) {
        let rec = RecordBuilder::new(seed)
            .duration_s(secs)
            .n_leads(3)
            .noise(NoiseConfig::ambulatory(22.0))
            .build();
        let n = rec.n_samples();
        let mut buf = Vec::with_capacity(n * 3);
        for i in 0..n {
            for l in 0..3 {
                buf.push(rec.lead(l)[i]);
            }
        }
        (buf, n)
    }

    #[test]
    fn sessions_are_isolated_and_removable() {
        let mut fleet = NodeFleet::new();
        let a = fleet
            .add_session(MonitorBuilder::new().level(ProcessingLevel::RawStreaming))
            .unwrap();
        let b = fleet
            .add_session(MonitorBuilder::new().level(ProcessingLevel::Delineated))
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(fleet.len(), 2);
        let (buf, n) = interleaved(3, 2.0);
        fleet.push_block(a, &buf, n).unwrap();
        assert_eq!(
            fleet.session(a).unwrap().counters().samples_in,
            3 * n as u64
        );
        assert_eq!(fleet.session(b).unwrap().counters().samples_in, 0);
        let removed = fleet.remove_session(a).unwrap();
        assert_eq!(removed.counters().samples_in, 3 * n as u64);
        assert_eq!(fleet.len(), 1);
        assert!(matches!(
            fleet.push_frame(a, &[0, 0, 0]),
            Err(WbsnError::UnknownSession { .. })
        ));
    }

    #[test]
    fn add_sessions_is_all_or_nothing() {
        let mut fleet = NodeFleet::new();
        let bad = MonitorBuilder::new().n_leads(0);
        assert!(fleet.add_sessions(&bad, 5).is_err());
        assert!(fleet.is_empty());
        let ids = fleet.add_sessions(&MonitorBuilder::new(), 5).unwrap();
        assert_eq!(ids.len(), 5);
        assert_eq!(fleet.len(), 5);
    }

    #[test]
    fn aggregate_counters_sum_sessions() {
        let mut fleet = NodeFleet::new();
        let ids = fleet.add_sessions(&MonitorBuilder::new(), 4).unwrap();
        let (buf, n) = interleaved(8, 4.0);
        for &id in &ids {
            fleet.push_block(id, &buf, n).unwrap();
        }
        fleet.flush_all().unwrap();
        let agg = fleet.aggregate_counters();
        assert_eq!(agg.samples_in, 4 * 3 * n as u64);
        assert!((agg.seconds - 4.0 * 4.0).abs() < 0.1);
        let one = fleet.session(ids[0]).unwrap().counters();
        assert_eq!(agg.beats, 4 * one.beats);
    }

    #[test]
    fn energy_report_aggregates() {
        let mut fleet = NodeFleet::new();
        let ids = fleet.add_sessions(&MonitorBuilder::new(), 3).unwrap();
        let (buf, n) = interleaved(9, 10.0);
        for &id in &ids {
            fleet.push_block(id, &buf, n).unwrap();
        }
        let report = fleet.energy_report();
        assert_eq!(report.sessions, 3);
        assert!(report.total_power_mw > 0.0);
        assert!(
            (report.mean_power_mw - report.total_power_mw / 3.0).abs() < 1e-12,
            "mean {}",
            report.mean_power_mw
        );
        assert!(report.min_lifetime_days > 0.0);
    }

    #[test]
    fn empty_fleet_reports_zero() {
        let fleet = NodeFleet::new();
        let report = fleet.energy_report();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.mean_power_mw, 0.0);
        assert_eq!(report.min_lifetime_days, 0.0);
        assert_eq!(fleet.aggregate_counters(), ActivityCounters::default());
    }

    #[test]
    fn ingest_batch_matches_per_session_push_block() {
        let (buf, n) = interleaved(21, 3.0);
        let mut a = NodeFleet::new();
        let mut b = NodeFleet::new();
        let ids_a = a.add_sessions(&MonitorBuilder::new(), 3).unwrap();
        let ids_b = b.add_sessions(&MonitorBuilder::new(), 3).unwrap();
        let batch: Vec<(SessionId, &[i32])> = ids_a.iter().map(|&id| (id, &buf[..])).collect();
        let batched = a.ingest_batch(&batch).unwrap();
        for (i, &id) in ids_b.iter().enumerate() {
            let direct = b.push_block(id, &buf, n).unwrap();
            assert_eq!(batched[i].1, direct);
        }
        assert_eq!(a.aggregate_counters(), b.aggregate_counters());
    }

    #[test]
    fn ingest_batch_rejects_unknown_ids_before_ingesting() {
        let (buf, _) = interleaved(22, 1.0);
        let mut fleet = NodeFleet::new();
        let id = fleet.add_session(MonitorBuilder::new()).unwrap();
        let ghost = SessionId::from_raw(99);
        let batch: Vec<(SessionId, &[i32])> = vec![(id, &buf[..]), (ghost, &buf[..])];
        assert!(matches!(
            fleet.ingest_batch(&batch),
            Err(WbsnError::UnknownSession { id: 99 })
        ));
        // Nothing landed, not even the valid first entry.
        assert_eq!(fleet.session(id).unwrap().counters().samples_in, 0);
    }

    #[test]
    fn ingest_batch_rejects_bad_shapes_before_ingesting() {
        let mut fleet = NodeFleet::new();
        let ids = fleet.add_sessions(&MonitorBuilder::new(), 2).unwrap();
        let good = [0i32; 9];
        let bad = [0i32; 10]; // not a multiple of 3 leads
        let batch: Vec<(SessionId, &[i32])> = vec![(ids[0], &good[..]), (ids[1], &bad[..])];
        assert!(matches!(
            fleet.ingest_batch(&batch),
            Err(WbsnError::InvalidParameter { what: "frames", .. })
        ));
        // The malformed batch left every session untouched — no
        // payloads were produced and then lost to the abort.
        assert_eq!(fleet.session(ids[0]).unwrap().counters().samples_in, 0);
        assert_eq!(fleet.session(ids[1]).unwrap().counters().samples_in, 0);
    }

    #[test]
    fn fleet_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CardiacMonitor>();
        assert_send::<MonitorBuilder>();
        assert_send::<Payload>();
        assert_send::<Shard>();
        assert_send::<NodeFleet>();
        assert_send::<ShardedFleet>();
        assert_send::<crate::stage::RawForwarder>();
        assert_send::<crate::stage::CsStage>();
        assert_send::<crate::stage::DelineationStage>();
        assert_send::<crate::stage::ClassifyStage>();
        assert_send::<Box<dyn crate::stage::PipelineStage>>();
    }
}
