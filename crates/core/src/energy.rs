//! Per-stage cycle accounting and node energy reports.
//!
//! Converts the monitor's [`ActivityCounters`] into a
//! [`WorkloadProfile`] for the `wbsn-platform` node model. Cycle costs
//! per operation follow the MSP430-class instruction timing the paper's
//! platforms use (1–5 cycles per integer op; memory-bound DSP loops
//! average ≈4 cycles per elementary operation).

use crate::level::{OperatingMode, ProcessingLevel};
use crate::monitor::{ActivityCounters, MonitorConfig};
use wbsn_platform::node::{EnergyBreakdown, NodeModel, WorkloadProfile};

/// Cycle-cost constants for the processing stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleCosts {
    /// Cycles per acquired sample for buffering/packing.
    pub pack_per_sample: f64,
    /// Cycles per sample for the morphological conditioning filter
    /// (12 sliding-window passes ≈ 52 ops).
    pub filter_per_sample: f64,
    /// Cycles per combined sample for RMS lead combination
    /// (squares + integer sqrt amortized).
    pub rms_per_sample: f64,
    /// Cycles per sample for QRS detection + à-trous transform.
    pub delineation_per_sample: f64,
    /// Cycles per delineated beat for the fiducial searches.
    pub delineation_per_beat: f64,
    /// Cycles per signed addition in the CS encoder.
    pub cs_per_add: f64,
    /// Cycles per classified beat (projection + PWL memberships).
    pub classify_per_beat: f64,
    /// Cycles per AF window (RR metrics + fuzzy rules).
    pub af_per_window: f64,
}

impl Default for CycleCosts {
    fn default() -> Self {
        CycleCosts {
            pack_per_sample: 12.0,
            filter_per_sample: 210.0,
            rms_per_sample: 60.0,
            delineation_per_sample: 180.0,
            delineation_per_beat: 2600.0,
            cs_per_add: 4.0,
            classify_per_beat: 9000.0,
            af_per_window: 1200.0,
        }
    }
}

/// A complete node energy report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Level the report was computed for.
    pub level: ProcessingLevel,
    /// Derived workload profile (per second).
    pub workload: WorkloadProfile,
    /// Component breakdown (J/s == W).
    pub breakdown: EnergyBreakdown,
    /// MCU duty cycle at the energy-optimal operating point.
    pub duty_cycle: f64,
    /// MCU duty cycle at the 8 MHz reference clock (the paper's "7%
    /// of the duty cycle" is quoted at this class of clock).
    pub duty_cycle_8mhz: f64,
    /// Battery lifetime in days.
    pub lifetime_days: f64,
}

/// Derives the per-second workload from accumulated counters.
pub fn workload_from_counters(
    level: ProcessingLevel,
    c: &ActivityCounters,
    n_leads: usize,
    fs_hz: f64,
    costs: &CycleCosts,
) -> WorkloadProfile {
    let secs = c.seconds.max(1e-9);
    let samples_per_s = c.samples_in as f64 / secs; // all leads
    let mut cycles = costs.pack_per_sample * samples_per_s;
    if level.compresses() {
        cycles += costs.cs_per_add * c.cs_adds as f64 / secs;
    }
    if level.delineates() {
        // Filtering + combination + transform run on every sample.
        cycles += costs.filter_per_sample * samples_per_s;
        cycles += costs.rms_per_sample * (samples_per_s / n_leads as f64);
        cycles += costs.delineation_per_sample * (samples_per_s / n_leads as f64);
        cycles += costs.delineation_per_beat * c.beats as f64 / secs;
    }
    if level == ProcessingLevel::Classified {
        cycles += costs.classify_per_beat * c.classified_beats.max(c.beats) as f64 / secs;
        cycles += costs.af_per_window * c.af_windows as f64 / secs;
    }
    WorkloadProfile {
        n_leads,
        fs_hz,
        app_cycles_per_s: cycles,
        radio_payload_bytes_per_s: c.payload_bytes as f64 / secs,
        radio_wakeups_per_s: (c.payloads as f64 / secs).clamp(0.05, 4.0),
    }
}

/// Prices a workload on a node model.
pub fn report(
    level: ProcessingLevel,
    counters: &ActivityCounters,
    n_leads: usize,
    fs_hz: f64,
    node: &NodeModel,
    costs: &CycleCosts,
) -> EnergyReport {
    let workload = workload_from_counters(level, counters, n_leads, fs_hz, costs);
    let breakdown = node.breakdown(&workload);
    let total_cycles = workload.app_cycles_per_s + node.rtos.cycles_per_s();
    EnergyReport {
        level,
        workload,
        breakdown,
        duty_cycle: node.duty_cycle(&workload),
        duty_cycle_8mhz: (total_cycles / 8e6).min(1.0),
        lifetime_days: node.lifetime_days(&workload),
    }
}

impl crate::monitor::CardiacMonitor {
    /// Energy report for the activity observed so far, on the default
    /// SmartCardia-class node model, priced at the *current* operating
    /// mode (level + powered leads). For a session whose mode changed
    /// mid-stream this is an approximation over mixed history; the
    /// [governor](crate::governor) prices each constant-mode epoch
    /// exactly instead.
    pub fn energy_report(&self) -> EnergyReport {
        report(
            self.config().level,
            &self.counters(),
            self.active_leads(),
            self.config().fs_hz as f64,
            &NodeModel::default(),
            &CycleCosts::default(),
        )
    }
}

/// Predicts the steady-state per-second workload of running one
/// candidate operating mode, **before** switching to it — the pricing
/// input of the [governor](crate::governor): for each candidate
/// [`OperatingMode`] it derives the expected MCU cycles, radio bytes
/// and radio wake-ups from the session configuration and the observed
/// beat rate, so candidates can be compared on projected battery
/// lifetime and radio budget without running them.
///
/// The derivation mirrors [`workload_from_counters`] with expected
/// activity substituted for measured counters:
///
/// * raw streaming emits one chunk per powered lead per second,
/// * CS emits `fs / window` windows of `m(CR)` 16-bit measurements
///   per powered lead and spends `d_per_col` additions per sample,
/// * delineation emits one `Beats` payload per `beats_per_payload`
///   beats at the observed beat rate,
/// * classification emits one `Events` payload per `event_interval_s`.
pub fn predicted_workload(
    mode: OperatingMode,
    cfg: &MonitorConfig,
    beats_per_s: f64,
    costs: &CycleCosts,
) -> WorkloadProfile {
    let level = mode.level;
    let n_leads = mode.active_leads;
    let fs_hz = cfg.fs_hz as f64;
    let samples_per_s = fs_hz * n_leads as f64;
    let beats_per_s = beats_per_s.max(0.0);
    let mut cycles = costs.pack_per_sample * samples_per_s;
    let (payload_len, payloads_per_s) = predicted_emission(mode, cfg, beats_per_s);
    let bytes_per_s = payload_len as f64 * payloads_per_s;
    if level.compresses() {
        cycles += costs.cs_per_add * cfg.cs_d_per_col as f64 * samples_per_s;
    }
    if level.delineates() {
        cycles += costs.filter_per_sample * samples_per_s;
        cycles += (costs.rms_per_sample + costs.delineation_per_sample) * fs_hz;
        cycles += costs.delineation_per_beat * beats_per_s;
    }
    if level == ProcessingLevel::Classified {
        cycles += costs.classify_per_beat * beats_per_s;
        cycles += costs.af_per_window * beats_per_s;
    }
    WorkloadProfile {
        n_leads,
        fs_hz,
        app_cycles_per_s: cycles,
        radio_payload_bytes_per_s: bytes_per_s,
        radio_wakeups_per_s: payloads_per_s.clamp(0.05, 4.0),
    }
}

/// Predicted steady-state payload emission of one candidate mode:
/// `(bytes per payload, payloads per second)`. Every level emits
/// fixed-size payloads at a predictable rate, so the pair is enough to
/// derive both the application byte rate
/// (`len × rate`, what [`predicted_workload`] reports) and the on-wire
/// byte rate after per-payload link framing
/// (`link::wire_bytes_for(len, mtu) × rate`, what the
/// [governor](crate::governor)'s radio budget prices).
pub fn predicted_emission(
    mode: OperatingMode,
    cfg: &MonitorConfig,
    beats_per_s: f64,
) -> (usize, f64) {
    let n_leads = mode.active_leads;
    let fs_hz = cfg.fs_hz as f64;
    match mode.level {
        ProcessingLevel::RawStreaming => {
            // One 1 s chunk per lead: 4-byte header + 12-bit packing.
            let chunk = 4 + 3 * (cfg.fs_hz as usize).div_ceil(2);
            (chunk, n_leads as f64)
        }
        ProcessingLevel::CompressedSingleLead | ProcessingLevel::CompressedMultiLead => {
            let m = wbsn_cs::measurements_for_cr(cfg.cs_window, cfg.cs_cr_percent);
            let windows_per_s = fs_hz / cfg.cs_window as f64 * n_leads as f64;
            (8 + 2 * m, windows_per_s)
        }
        ProcessingLevel::Delineated => {
            let payloads = beats_per_s.max(0.0) / cfg.beats_per_payload as f64;
            (3 + 12 * cfg.beats_per_payload, payloads)
        }
        ProcessingLevel::Classified => (25, 1.0 / cfg.event_interval_s.max(1e-9)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::CardiacMonitor;
    use wbsn_ecg_synth::noise::NoiseConfig;
    use wbsn_ecg_synth::RecordBuilder;

    fn report_for(level: ProcessingLevel) -> EnergyReport {
        let rec = RecordBuilder::new(5)
            .duration_s(30.0)
            .n_leads(3)
            .noise(NoiseConfig::ambulatory(22.0))
            .build();
        let mut m = CardiacMonitor::builder().level(level).build().unwrap();
        let _ = m.process_record(&rec).unwrap();
        m.energy_report()
    }

    #[test]
    fn raw_streaming_power_is_radio_dominated_milliwatts() {
        let r = report_for(ProcessingLevel::RawStreaming);
        let (radio, ..) = r.breakdown.shares();
        assert!(radio > 0.5, "radio share {radio}");
        assert!(r.breakdown.avg_power_mw() > 1.0);
    }

    #[test]
    fn every_abstraction_step_cuts_total_power() {
        let mut last = f64::INFINITY;
        for level in [
            ProcessingLevel::RawStreaming,
            ProcessingLevel::CompressedSingleLead,
            ProcessingLevel::Delineated,
            ProcessingLevel::Classified,
        ] {
            let r = report_for(level);
            let p = r.breakdown.total_j();
            assert!(p < last, "{level}: {p} not below {last}");
            last = p;
        }
    }

    #[test]
    fn classified_level_reaches_week_scale_lifetime() {
        let r = report_for(ProcessingLevel::Classified);
        assert!(
            r.lifetime_days > 5.0,
            "lifetime {} days at {} mW",
            r.lifetime_days,
            r.breakdown.avg_power_mw()
        );
    }

    #[test]
    fn delineation_duty_cycle_is_single_digit_percent_at_8mhz() {
        let r = report_for(ProcessingLevel::Delineated);
        // The paper quotes ≈7% at this clock class.
        assert!(
            r.duty_cycle_8mhz > 0.01 && r.duty_cycle_8mhz < 0.12,
            "duty@8MHz {}",
            r.duty_cycle_8mhz
        );
        // At the energy-optimal (slower) point the duty is naturally higher.
        assert!(r.duty_cycle < 0.6, "duty {}", r.duty_cycle);
    }

    #[test]
    fn compression_reduces_radio_but_adds_cycles() {
        let raw = report_for(ProcessingLevel::RawStreaming);
        let cs = report_for(ProcessingLevel::CompressedSingleLead);
        assert!(cs.breakdown.radio_j < raw.breakdown.radio_j);
        assert!(cs.workload.app_cycles_per_s > raw.workload.app_cycles_per_s);
    }
}
