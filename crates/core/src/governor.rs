//! The closed-loop power governor: runtime selection of the operating
//! mode.
//!
//! The paper's central trade-off — MCU cycles against radio bytes,
//! settled by *choosing a processing level* — is static in Figure 6:
//! each curve is one level run forever. Real wearables close the loop
//! on-device instead: related systems duty-cycle acquisition around
//! signal condition and gate their compressors by payload budget. This
//! module is that loop:
//!
//! ```text
//!        frames ──► CardiacMonitor ──► payloads ──► radio
//!                        ▲    │
//!            switch_mode │    │ counters / payloads (per epoch)
//!                        │    ▼
//!   PowerGovernor ◄── EpochObservation ◄── rhythm sentinel
//!        ▲                                  battery state
//!        └── predicted_workload per candidate mode (energy.rs)
//! ```
//!
//! Once per **epoch** (a fixed number of frames), the controller reads
//! what happened — beats, AF activity, ectopy, radio bytes — drains
//! the modeled [`BatteryState`] by the epoch's priced energy, and
//! re-decides the session's [`OperatingMode`]:
//!
//! * **Rhythm demand.** An AF episode or a high ectopic rate
//!   *escalates fidelity* (down the abstraction ladder, all leads
//!   powered) so the clinician gets diagnostic detail; sustained quiet
//!   *de-escalates* toward the cheapest mode, shedding radio bytes,
//!   MCU cycles and per-lead analog front-end bias.
//! * **Battery supply.** Candidate modes are priced with
//!   [`predicted_workload`](crate::energy::predicted_workload) on the
//!   node model; modes whose projected lifetime misses the mission
//!   target are rejected, and low / critical state-of-charge caps or
//!   forces the tier.
//! * **Radio budget.** Candidates whose predicted payload rate exceeds
//!   the configured bytes-per-second budget are rejected.
//! * **Hysteresis.** Escalations are immediate (clinical
//!   responsiveness); de-escalations require a sustained quiet run
//!   *and* a minimum dwell since the last switch, so a flickering AF
//!   flag can never make the mode oscillate — pinned by the property
//!   tests in `tests/governor_properties.rs`.
//!
//! Decisions are pure functions of the governor state and the
//! observation, so governed sessions keep the fleet's determinism
//! guarantee: the same frames produce the same switches, payloads and
//! counters on every driver.
//!
//! [`GovernedMonitor`] packages the loop around one
//! [`CardiacMonitor`]; the serving layer applies the same switches
//! through [`NodeFleet::switch_mode`](crate::fleet::NodeFleet::switch_mode)
//! / [`ShardedFleet::switch_mode`](crate::fleet::ShardedFleet::switch_mode).

use crate::energy::{workload_from_counters, CycleCosts};
use crate::level::{OperatingMode, ProcessingLevel};
use crate::monitor::{ActivityCounters, CardiacMonitor, MonitorBuilder, MonitorConfig};
use crate::payload::Payload;
use crate::{Result, WbsnError};
use wbsn_classify::af::{AfBeat, AfConfig, AfDetector};
use wbsn_platform::battery::BatteryState;
use wbsn_platform::node::NodeModel;

/// The governor's three fidelity tiers, cheapest first. Each tier maps
/// to one configured [`OperatingMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FidelityTier {
    /// Quiet signal, battery preserved: the cheapest configured mode
    /// (single-lead classification by default).
    Economy,
    /// Recent activity or cautious start: full-lead classification.
    Vigilant,
    /// AF episode or heavy ectopy: full-lead diagnostic fidelity.
    Alert,
}

impl FidelityTier {
    fn step_down(self) -> FidelityTier {
        match self {
            FidelityTier::Alert => FidelityTier::Vigilant,
            _ => FidelityTier::Economy,
        }
    }
}

/// Why the governor switched modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchReason {
    /// AF episode or ectopic burden demanded diagnostic fidelity.
    RhythmEscalation,
    /// Sustained quiet rhythm allowed stepping down a tier.
    RhythmRecovery,
    /// State of charge fell below the low-battery threshold.
    LowBattery,
    /// State of charge fell below the critical threshold.
    CriticalBattery,
    /// Projected lifetime at the richer mode missed the mission target.
    MissionGuard,
    /// Predicted radio bytes exceeded the configured budget.
    RadioBudget,
    /// A gateway downlink directive
    /// ([`crate::link::DirectiveAction::SetMode`]) requested the
    /// change — the distributed half of the control loop, reacting to
    /// receiver-side reality instead of local state.
    Directive,
}

/// Tunable policy of the [`PowerGovernor`].
///
/// ```
/// use wbsn_core::governor::GovernorConfig;
/// use wbsn_core::level::{OperatingMode, ProcessingLevel};
///
/// // Default policy for a 3-lead session: single-lead classification
/// // when quiet, full-lead delineation during an AF episode.
/// let cfg = GovernorConfig::for_leads(3);
/// assert_eq!(cfg.economy_mode.active_leads, 1);
/// assert_eq!(cfg.alert_mode.level, ProcessingLevel::Delineated);
///
/// // A pinned policy never switches — the static baseline the
/// // governor is compared against.
/// let raw = GovernorConfig::pinned(OperatingMode::new(
///     ProcessingLevel::RawStreaming,
///     3,
/// ));
/// assert_eq!(raw.economy_mode, raw.alert_mode);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// Seconds per decision epoch.
    pub epoch_s: f64,
    /// Mode during AF episodes / heavy ectopy (diagnostic fidelity).
    pub alert_mode: OperatingMode,
    /// Mode while recently active or starting up.
    pub vigilant_mode: OperatingMode,
    /// Mode for sustained quiet signal (maximum economy).
    pub economy_mode: OperatingMode,
    /// Ectopic-beat fraction above which an epoch counts as active.
    pub ectopic_threshold: f64,
    /// Consecutive active epochs required to escalate (1 = immediate).
    pub escalate_after: u32,
    /// Consecutive quiet epochs required to step down one tier.
    pub deescalate_after: u32,
    /// Minimum epochs between a switch and any later de-escalation.
    pub min_dwell_epochs: u32,
    /// Radio budget: candidate modes predicted to exceed this
    /// **on-wire** byte rate (application payloads plus per-packet
    /// link framing overhead, bytes/s) are rejected — the same bytes
    /// the uplink framer ([`crate::link`]) emits and the battery pays
    /// for.
    pub radio_budget_bytes_per_s: f64,
    /// Link MTU the uplink frames payloads at — used for the wire-byte
    /// pricing above and the battery books, so the governor counts the
    /// same bytes as the deployment's [`crate::link::Uplink`]. Must
    /// exceed [`crate::link::LINK_OVERHEAD_BYTES`].
    pub link_mtu: usize,
    /// State of charge below which the tier is capped at `Vigilant`.
    pub low_soc: f64,
    /// State of charge below which the tier is forced to `Economy`.
    pub critical_soc: f64,
    /// Mission length in days the battery must survive; richer modes
    /// whose projected lifetime falls short are rejected.
    pub target_days: f64,
}

impl GovernorConfig {
    /// Default policy for a session with `n_leads` configured leads:
    /// escalate to full-lead delineation on AF, recover through
    /// full-lead classification, idle at single-lead classification.
    pub fn for_leads(n_leads: usize) -> Self {
        GovernorConfig {
            epoch_s: 10.0,
            alert_mode: OperatingMode::new(ProcessingLevel::Delineated, n_leads),
            vigilant_mode: OperatingMode::new(ProcessingLevel::Classified, n_leads),
            economy_mode: OperatingMode::new(ProcessingLevel::Classified, 1),
            ectopic_threshold: 0.15,
            escalate_after: 1,
            deescalate_after: 6,
            min_dwell_epochs: 3,
            radio_budget_bytes_per_s: 600.0,
            link_mtu: crate::link::DEFAULT_MTU,
            low_soc: 0.30,
            critical_soc: 0.10,
            target_days: 7.0,
        }
    }

    /// A degenerate policy pinned to one mode — every tier maps to
    /// `mode`, so the governor never switches. This is how the static
    /// levels of the paper's Figure 6 are reproduced inside the same
    /// epoch-priced harness, making lifetime comparisons exact.
    pub fn pinned(mode: OperatingMode) -> Self {
        GovernorConfig {
            alert_mode: mode,
            vigilant_mode: mode,
            economy_mode: mode,
            // A pinned governor never rejects its only mode.
            radio_budget_bytes_per_s: f64::INFINITY,
            low_soc: 0.0,
            critical_soc: 0.0,
            target_days: 0.0,
            ..GovernorConfig::for_leads(mode.active_leads)
        }
    }

    /// The mode a tier maps to under this policy.
    pub fn mode_of(&self, tier: FidelityTier) -> OperatingMode {
        match tier {
            FidelityTier::Economy => self.economy_mode,
            FidelityTier::Vigilant => self.vigilant_mode,
            FidelityTier::Alert => self.alert_mode,
        }
    }

    fn validate(&self) -> Result<()> {
        if !self.epoch_s.is_finite() || self.epoch_s <= 0.0 {
            return Err(WbsnError::InvalidParameter {
                what: "epoch_s",
                detail: format!("{} must be positive", self.epoch_s),
            });
        }
        if self.escalate_after == 0 || self.deescalate_after == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "escalate_after/deescalate_after",
                detail: "hysteresis runs must be at least 1 epoch".into(),
            });
        }
        if self.link_mtu <= crate::link::LINK_OVERHEAD_BYTES {
            return Err(WbsnError::InvalidParameter {
                what: "link_mtu",
                detail: format!(
                    "{} does not exceed the per-packet link overhead {}",
                    self.link_mtu,
                    crate::link::LINK_OVERHEAD_BYTES
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.low_soc)
            || !(0.0..=1.0).contains(&self.critical_soc)
            || self.critical_soc > self.low_soc
        {
            return Err(WbsnError::InvalidParameter {
                what: "low_soc/critical_soc",
                detail: "need 0 <= critical_soc <= low_soc <= 1".into(),
            });
        }
        Ok(())
    }
}

impl Default for GovernorConfig {
    /// The 3-lead policy of [`GovernorConfig::for_leads`].
    fn default() -> Self {
        GovernorConfig::for_leads(3)
    }
}

/// What the controller saw during one epoch — the pure input of
/// [`PowerGovernor::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochObservation {
    /// Signal seconds covered by the epoch.
    pub seconds: f64,
    /// Beats delineated during the epoch (0 at non-delineating modes).
    pub beats: u64,
    /// Whether an AF episode is currently flagged.
    pub af_active: bool,
    /// Fraction of the epoch's classified beats that were ectopic.
    pub ectopic_ratio: f64,
    /// Battery state of charge (0..=1).
    pub soc: f64,
}

/// One decision of the governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorDecision {
    /// The mode the session should run from now on.
    pub mode: OperatingMode,
    /// The tier behind that mode.
    pub tier: FidelityTier,
    /// True when the mode differs from the previous epoch's.
    pub changed: bool,
    /// Why the mode changed (`None` when unchanged).
    pub reason: Option<SwitchReason>,
}

/// The deterministic per-session controller: consumes one
/// [`EpochObservation`] per epoch and outputs the [`OperatingMode`] to
/// run next. Pure state machine — no clocks, no randomness — so
/// governed sessions replay bit-identically.
#[derive(Debug, Clone)]
pub struct PowerGovernor {
    cfg: GovernorConfig,
    monitor_cfg: MonitorConfig,
    node: NodeModel,
    costs: CycleCosts,
    tier: FidelityTier,
    active_run: u32,
    quiet_run: u32,
    epochs_since_switch: u32,
    elapsed_s: f64,
    // Smoothed beat rate for the mission/budget guards (see `decide`);
    // 0.0 until the first observation arrives.
    beat_rate_ewma: f64,
}

impl PowerGovernor {
    /// Controller over the given policy, pricing candidates for the
    /// session described by `monitor_cfg` on `node`.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for an inconsistent policy
    /// (non-positive epoch, zero hysteresis runs, SoC thresholds
    /// outside `0 <= critical <= low <= 1`).
    pub fn new(cfg: GovernorConfig, monitor_cfg: MonitorConfig, node: NodeModel) -> Result<Self> {
        cfg.validate()?;
        Ok(PowerGovernor {
            cfg,
            monitor_cfg,
            node,
            costs: CycleCosts::default(),
            tier: FidelityTier::Vigilant,
            active_run: 0,
            quiet_run: 0,
            epochs_since_switch: 0,
            elapsed_s: 0.0,
            beat_rate_ewma: 0.0,
        })
    }

    /// The policy in effect.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Current fidelity tier.
    pub fn tier(&self) -> FidelityTier {
        self.tier
    }

    /// The mode the current tier maps to.
    pub fn mode(&self) -> OperatingMode {
        self.cfg.mode_of(self.tier)
    }

    /// Prices one candidate mode at an assumed beat rate: predicted
    /// steady-state average node power in watts. The radio term is
    /// priced at **wire** bytes (payloads framed at the policy's
    /// [`GovernorConfig::link_mtu`]), matching what
    /// [`GovernedMonitor`] actually drains from the battery — so the
    /// mission guard's lifetime projections and the battery books
    /// count the same bytes.
    pub fn predicted_power_w(&self, mode: OperatingMode, beats_per_s: f64) -> f64 {
        let mut wl =
            crate::energy::predicted_workload(mode, &self.monitor_cfg, beats_per_s, &self.costs);
        wl.radio_payload_bytes_per_s = self.predicted_wire_bytes_per_s(mode, beats_per_s);
        self.node.breakdown(&wl).total_j()
    }

    /// Predicted steady-state radio payload rate of a candidate mode,
    /// application bytes per second (before link framing).
    pub fn predicted_bytes_per_s(&self, mode: OperatingMode, beats_per_s: f64) -> f64 {
        crate::energy::predicted_workload(mode, &self.monitor_cfg, beats_per_s, &self.costs)
            .radio_payload_bytes_per_s
    }

    /// Predicted steady-state **on-wire** byte rate of a candidate
    /// mode: application bytes plus the per-packet link header/CRC
    /// overhead of framing every payload at the policy's
    /// [`GovernorConfig::link_mtu`] ([`crate::link::wire_bytes_for`]).
    /// This is what the [`GovernorConfig::radio_budget_bytes_per_s`]
    /// budget is compared against, so the budget and the uplink framer
    /// count the same bytes.
    pub fn predicted_wire_bytes_per_s(&self, mode: OperatingMode, beats_per_s: f64) -> f64 {
        let (len, rate) = crate::energy::predicted_emission(mode, &self.monitor_cfg, beats_per_s);
        crate::link::wire_bytes_for(len, self.cfg.link_mtu) as f64 * rate
    }

    /// Consumes one epoch observation and decides the next mode.
    ///
    /// Escalations take effect immediately (capped by the supply
    /// ceiling below); rhythm de-escalations require
    /// `deescalate_after` consecutive quiet epochs *and*
    /// `min_dwell_epochs` since the last switch. The supply ceiling —
    /// SoC guards, mission target, radio budget — can only lower the
    /// tier: the SoC guards act immediately (SoC is monotone within a
    /// discharge, so they cannot oscillate), while the mission and
    /// budget guards depend on the beat rate, which *is* noisy, so
    /// they price against a smoothed (EWMA) rate and their forced
    /// de-escalations respect the dwell like any other.
    pub fn decide(&mut self, obs: &EpochObservation) -> GovernorDecision {
        let active = obs.af_active || obs.ectopic_ratio >= self.cfg.ectopic_threshold;
        if active {
            self.quiet_run = 0;
            self.active_run = self.active_run.saturating_add(1);
        } else {
            self.active_run = 0;
            self.quiet_run = self.quiet_run.saturating_add(1);
        }
        self.elapsed_s += obs.seconds.max(0.0);
        // Smooth the observed beat rate so the (threshold-crossing)
        // mission/budget guards don't chatter on AF's irregular epochs.
        let epoch_rate = obs.beats as f64 / obs.seconds.max(1e-9);
        self.beat_rate_ewma = if self.beat_rate_ewma <= 0.0 {
            epoch_rate
        } else {
            0.75 * self.beat_rate_ewma + 0.25 * epoch_rate
        };
        let beats_per_s = self.beat_rate_ewma;

        // Supply ceiling: the richest tier the battery and the radio
        // budget allow this epoch. Computed *before* rhythm demand so
        // an escalation lands directly at the affordable tier instead
        // of overshooting and being yanked back next epoch.
        let mut ceiling = FidelityTier::Alert;
        let mut cap_reason = None;
        if obs.soc <= self.cfg.critical_soc {
            ceiling = FidelityTier::Economy;
            cap_reason = Some(SwitchReason::CriticalBattery);
        } else if obs.soc <= self.cfg.low_soc {
            ceiling = FidelityTier::Vigilant;
            cap_reason = Some(SwitchReason::LowBattery);
        }
        // Mission guard: the remaining charge must survive the rest of
        // the mission at the candidate mode's predicted draw.
        let remaining_j = obs.soc * self.node.battery.energy_j();
        let remaining_days = self.cfg.target_days - self.elapsed_s / 86_400.0;
        while ceiling > FidelityTier::Economy && remaining_days > 0.0 {
            let power = self.predicted_power_w(self.cfg.mode_of(ceiling), beats_per_s);
            if remaining_j / power.max(1e-12) / 86_400.0 >= remaining_days {
                break;
            }
            ceiling = ceiling.step_down();
            cap_reason = Some(SwitchReason::MissionGuard);
        }
        // Radio budget, priced at on-wire bytes (after link framing).
        while ceiling > FidelityTier::Economy
            && self.predicted_wire_bytes_per_s(self.cfg.mode_of(ceiling), beats_per_s)
                > self.cfg.radio_budget_bytes_per_s
        {
            ceiling = ceiling.step_down();
            cap_reason = Some(SwitchReason::RadioBudget);
        }

        // Rhythm demand, capped by the ceiling.
        let mut tier = self.tier;
        let mut reason = None;
        if self.active_run >= self.cfg.escalate_after && tier < ceiling {
            tier = ceiling;
            reason = Some(SwitchReason::RhythmEscalation);
        } else if self.quiet_run >= self.cfg.deescalate_after
            && self.epochs_since_switch >= self.cfg.min_dwell_epochs
            && tier > FidelityTier::Economy
        {
            tier = tier.step_down();
            reason = Some(SwitchReason::RhythmRecovery);
        }

        // Enforce the ceiling on the running tier. SoC-driven caps act
        // immediately (monotone input, cannot oscillate); the
        // beat-rate-driven mission/budget caps additionally respect
        // the dwell so a rate blip cannot flap the mode.
        if tier > ceiling {
            let immediate = matches!(
                cap_reason,
                Some(SwitchReason::CriticalBattery) | Some(SwitchReason::LowBattery)
            );
            if immediate || self.epochs_since_switch >= self.cfg.min_dwell_epochs {
                tier = ceiling;
                reason = cap_reason;
            } else {
                tier = self.tier;
            }
        }

        let changed = tier != self.tier && self.cfg.mode_of(tier) != self.cfg.mode_of(self.tier);
        if tier != self.tier {
            self.tier = tier;
            self.epochs_since_switch = 0;
            // A fresh de-escalation restarts the quiet requirement for
            // the next step down (Alert → Vigilant → Economy is
            // gradual).
            self.quiet_run = 0;
        } else {
            self.epochs_since_switch = self.epochs_since_switch.saturating_add(1);
        }
        GovernorDecision {
            mode: self.cfg.mode_of(self.tier),
            tier: self.tier,
            changed,
            reason: if changed { reason } else { None },
        }
    }
}

/// One applied mode switch, for audit logs and the scenario reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// Session time of the switch, seconds from start.
    pub at_s: f64,
    /// Mode before the switch.
    pub from: OperatingMode,
    /// Mode after the switch.
    pub to: OperatingMode,
    /// Tier after the switch.
    pub tier: FidelityTier,
    /// Why the governor switched.
    pub reason: SwitchReason,
}

/// A [`CardiacMonitor`] with the control loop attached: epoch
/// accounting, rhythm sentinel, battery model and the
/// [`PowerGovernor`], all behind the same `push_block` ingestion
/// surface.
///
/// ```
/// use wbsn_core::governor::{GovernedMonitor, GovernorConfig};
/// use wbsn_core::monitor::MonitorBuilder;
///
/// let mut session = GovernedMonitor::new(
///     MonitorBuilder::new().n_leads(3),
///     GovernorConfig::for_leads(3),
///     Default::default(),
/// )
/// .unwrap();
/// // Quiet zero signal: the governor steps down to the single-lead
/// // economy mode once the de-escalation hysteresis is satisfied.
/// let minute = vec![0i32; 3 * 250 * 60];
/// session.push_block(&minute, 250 * 60).unwrap();
/// session.push_block(&minute, 250 * 60).unwrap();
/// session.finish().unwrap();
/// assert_eq!(session.mode(), GovernorConfig::for_leads(3).economy_mode);
/// assert!(session.battery().soc() < 1.0);
/// ```
///
/// The sentinel keeps rhythm sensing mode-independent: at classified
/// modes it reads the AF flag off `Events` payloads; at delineated
/// modes it feeds the emitted fiducials through its own
/// [`AfDetector`]. At raw/CS modes the node is rhythm-blind — exactly
/// the paper's argument for on-node intelligence — so those modes only
/// make sense as escalation targets, not as watch modes.
#[derive(Debug)]
pub struct GovernedMonitor {
    monitor: CardiacMonitor,
    governor: PowerGovernor,
    node: NodeModel,
    costs: CycleCosts,
    battery: BatteryState,
    epoch_frames: u64,
    frames_into_epoch: u64,
    frames_total: u64,
    epoch_start: ActivityCounters,
    // Rhythm sentinel.
    af: AfDetector,
    af_beats: Vec<AfBeat>,
    af_active: bool,
    // Absolute frame index at which the current stage was installed;
    // stage-relative beat indices are rebased by it.
    frame_base: u64,
    // Ectopic evidence accumulated over the current epoch.
    epoch_ectopic: u64,
    epoch_classified: u64,
    // Exact on-wire bytes of the payloads observed since the last
    // battery drain: each payload priced at its per-payload link
    // framing cost, so the battery pays for the bytes the uplink
    // framer actually puts on the wire, not just the payload bytes.
    epoch_wire_bytes: u64,
    drained_j: f64,
    switches: Vec<SwitchEvent>,
}

impl GovernedMonitor {
    /// Builds the session and attaches the governor. The governor
    /// owns the operating mode from the first frame: the builder's
    /// `level`/`active_leads` are overridden by the governor's initial
    /// (vigilant) mode, so no throwaway stage is ever constructed —
    /// the builder supplies everything else (leads, sampling rate, CS
    /// parameters, classifier, …).
    ///
    /// # Errors
    ///
    /// Builder validation failures and policy validation failures
    /// ([`PowerGovernor::new`]).
    pub fn new(builder: MonitorBuilder, cfg: GovernorConfig, node: NodeModel) -> Result<Self> {
        let initial = cfg.mode_of(FidelityTier::Vigilant);
        let monitor = builder
            .level(initial.level)
            .active_leads(initial.active_leads)
            .build()?;
        // Pre-flight every tier's mode now: a live switch must never
        // fail for configuration reasons mid-stream (e.g. a CS alert
        // mode over a non-dyadic window, which only CS stage
        // construction would catch).
        for tier in [
            FidelityTier::Economy,
            FidelityTier::Vigilant,
            FidelityTier::Alert,
        ] {
            crate::monitor::validate_mode(monitor.config(), cfg.mode_of(tier))?;
        }
        let fs_hz = monitor.config().fs_hz;
        let governor = PowerGovernor::new(cfg, monitor.config().clone(), node.clone())?;
        debug_assert_eq!(monitor.mode(), governor.mode());
        let epoch_frames = (governor.config().epoch_s * fs_hz as f64).round().max(1.0) as u64;
        let battery = BatteryState::new(node.battery);
        let epoch_start = monitor.counters();
        Ok(GovernedMonitor {
            monitor,
            governor,
            node,
            costs: CycleCosts::default(),
            battery,
            epoch_frames,
            frames_into_epoch: 0,
            frames_total: 0,
            epoch_start,
            af: AfDetector::new(AfConfig {
                fs_hz,
                ..AfConfig::default()
            })?,
            af_beats: Vec::new(),
            af_active: false,
            frame_base: 0,
            epoch_ectopic: 0,
            epoch_classified: 0,
            epoch_wire_bytes: 0,
            drained_j: 0.0,
            switches: Vec::new(),
        })
    }

    /// The governed session.
    pub fn monitor(&self) -> &CardiacMonitor {
        &self.monitor
    }

    /// The controller.
    pub fn governor(&self) -> &PowerGovernor {
        &self.governor
    }

    /// The operating point currently in effect.
    pub fn mode(&self) -> OperatingMode {
        self.monitor.mode()
    }

    /// Modeled battery state.
    pub fn battery(&self) -> &BatteryState {
        &self.battery
    }

    /// Every mode switch applied so far, in order.
    pub fn switch_log(&self) -> &[SwitchEvent] {
        &self.switches
    }

    /// Average modeled node power over the session so far, watts.
    pub fn average_power_w(&self) -> f64 {
        let secs = self.monitor.counters().seconds;
        if secs <= 0.0 {
            0.0
        } else {
            self.drained_j / secs
        }
    }

    /// Battery lifetime in days if the session so far repeated forever
    /// — the scenario comparison metric.
    pub fn projected_lifetime_days(&self) -> f64 {
        self.node.battery.lifetime_days(self.average_power_w())
    }

    /// Batched ingestion: identical framing contract to
    /// [`CardiacMonitor::push_block`]. Epoch boundaries falling inside
    /// the block are handled inside the call, so arbitrary block sizes
    /// replay bit-identically to per-frame pushes.
    ///
    /// # Errors
    ///
    /// Shape mismatches and stage failures, as the monitor.
    pub fn push_block(&mut self, frames: &[i32], n_frames: usize) -> Result<Vec<Payload>> {
        let n_leads = self.monitor.config().n_leads;
        let expected = n_frames.checked_mul(n_leads);
        if expected != Some(frames.len()) {
            return Err(WbsnError::InvalidParameter {
                what: "frames",
                detail: format!(
                    "block of {n_frames} frames × {n_leads} leads needs {} samples, got {}",
                    expected.map_or_else(|| "an overflowing number of".into(), |e| e.to_string()),
                    frames.len()
                ),
            });
        }
        let mut out = Vec::new();
        let mut offset = 0usize;
        let mut remaining = n_frames as u64;
        while remaining > 0 {
            let take = remaining.min(self.epoch_frames - self.frames_into_epoch);
            let sub = &frames[offset * n_leads..(offset + take as usize) * n_leads];
            let payloads = self.monitor.push_block(sub, take as usize)?;
            self.frames_total += take;
            self.frames_into_epoch += take;
            self.observe_payloads(&payloads);
            out.extend(payloads);
            offset += take as usize;
            remaining -= take;
            if self.frames_into_epoch == self.epoch_frames {
                self.settle_epoch(&mut out)?;
            }
        }
        Ok(out)
    }

    /// Applies a gateway link-controller directive
    /// ([`crate::link::DirectiveAction`], delivered downlink and
    /// ordered by a
    /// [`DirectiveHandler`](crate::retransmit::DirectiveHandler)) at
    /// the current stream boundary.
    ///
    /// * `SetCr` renegotiates the CS ratio in place
    ///   ([`CardiacMonitor::switch_cs_cr`]) — no stage rebuild, no
    ///   payloads.
    /// * `SetMode` switches through the same
    ///   [`CardiacMonitor::switch_mode`] path as the governor's own
    ///   decisions and is recorded in the switch log with
    ///   [`SwitchReason::Directive`]; its boundary flush payloads are
    ///   returned and their wire bytes priced with the running epoch.
    /// * `SetMtu` is a no-op here: the MTU lives in the uplink framer
    ///   ([`crate::link::Uplink::set_mtu`]), which the caller owns.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for an unknown level index or
    /// an out-of-range ratio/lead count — unlike the governor's
    /// pre-flighted tiers, a directive is remote input and validated
    /// like any other wire data. The session is unchanged on error.
    pub fn apply_directive(
        &mut self,
        action: crate::link::DirectiveAction,
    ) -> Result<Vec<Payload>> {
        use crate::link::DirectiveAction;
        match action {
            DirectiveAction::SetCr { cr_x10 } => {
                self.monitor.switch_cs_cr(cr_x10 as f64 / 10.0)?;
                Ok(Vec::new())
            }
            DirectiveAction::SetMode {
                level,
                active_leads,
            } => {
                let Some(&level) = ProcessingLevel::ALL.get(level as usize) else {
                    return Err(WbsnError::InvalidParameter {
                        what: "level",
                        detail: format!(
                            "directive level index {level} exceeds the ladder ({} levels)",
                            ProcessingLevel::ALL.len()
                        ),
                    });
                };
                let to = OperatingMode::new(level, active_leads as usize);
                let from = self.monitor.mode();
                if to == from {
                    return Ok(Vec::new());
                }
                let boundary = self.monitor.switch_mode(to)?;
                // Same bookkeeping as a governor-decided switch: the
                // retired stage's payloads are observed before the
                // sentinel rebases, and their wire bytes stay in the
                // epoch accumulator so the next drain prices them.
                self.observe_payloads(&boundary);
                self.frame_base = self.frames_total;
                self.switches.push(SwitchEvent {
                    at_s: self.monitor.counters().seconds,
                    from,
                    to,
                    tier: self.governor.tier(),
                    reason: SwitchReason::Directive,
                });
                Ok(boundary)
            }
            DirectiveAction::SetMtu { .. } => Ok(Vec::new()),
        }
    }

    /// Convenience driver shared by the scenario example and its
    /// acceptance test: replays an entire synthetic record (batched
    /// ingestion plus [`Self::finish`]). Block size never affects
    /// results — epoch boundaries are handled inside
    /// [`Self::push_block`] — so the whole record goes down in one
    /// call.
    ///
    /// # Errors
    ///
    /// [`WbsnError::LeadMismatch`] when the record carries a different
    /// lead count than the session, plus stage failures.
    pub fn process_record(&mut self, record: &wbsn_ecg_synth::Record) -> Result<Vec<Payload>> {
        if record.n_leads() != self.monitor.config().n_leads {
            return Err(WbsnError::LeadMismatch {
                expected: self.monitor.config().n_leads,
                got: record.n_leads(),
            });
        }
        let frames = record.interleaved_frames();
        let mut payloads = self.push_block(&frames, record.n_samples())?;
        payloads.extend(self.finish()?);
        Ok(payloads)
    }

    /// Ends the session: settles the partial epoch's battery drain and
    /// flushes the monitor.
    ///
    /// # Errors
    ///
    /// Stage flush failures.
    pub fn finish(&mut self) -> Result<Vec<Payload>> {
        let out = self.monitor.flush()?;
        self.observe_payloads(&out);
        if self.frames_into_epoch == 0 {
            // The flush landed exactly on an epoch boundary: there is
            // no signal time to attribute it to, so price it directly
            // as a burst — a flush never transmits for free.
            self.epoch_wire_bytes = 0;
            if !out.is_empty() {
                let burst_j = self.price_burst(&out);
                self.battery.drain_j(burst_j);
                self.drained_j += burst_j;
            }
        } else {
            self.drain_epoch_energy();
        }
        self.epoch_start = self.monitor.counters();
        self.frames_into_epoch = 0;
        Ok(out)
    }

    /// Radio energy of transmitting `payloads` as one burst, each
    /// payload packetized by the uplink framer at the policy's link
    /// MTU: the frame count is the payload's link fragment count and
    /// the bytes are its exact wire bytes, priced through
    /// [`wbsn_platform::radio::RadioModel::transmit_packets`] (one
    /// wakeup per payload, matching the stream model's payload-count
    /// wakeups).
    fn price_burst(&self, payloads: &[Payload]) -> f64 {
        let mtu = self.governor.config().link_mtu;
        payloads
            .iter()
            .map(|p| {
                let len = p.byte_len();
                self.node
                    .radio
                    .transmit_packets(
                        crate::link::wire_bytes_for(len, mtu),
                        crate::link::fragments_for(len, mtu),
                        1,
                    )
                    .energy_j
            })
            .sum()
    }

    /// Prices the epoch-so-far at the mode in effect and drains the
    /// battery by it. The radio term is priced at the epoch's exact
    /// on-wire bytes (per-payload link framing included), so the bytes
    /// the battery pays for are the bytes the uplink puts on the wire.
    fn drain_epoch_energy(&mut self) {
        let counters = self.monitor.counters();
        let delta = counters.delta(&self.epoch_start);
        if delta.seconds <= 0.0 {
            return;
        }
        let mode = self.monitor.mode();
        let mut wl = workload_from_counters(
            mode.level,
            &delta,
            mode.active_leads,
            self.monitor.config().fs_hz as f64,
            &self.costs,
        );
        wl.radio_payload_bytes_per_s =
            core::mem::take(&mut self.epoch_wire_bytes) as f64 / delta.seconds;
        let power = self.node.breakdown(&wl).total_j();
        let energy = power * delta.seconds;
        self.battery.drain_j(energy);
        self.drained_j += energy;
    }

    fn settle_epoch(&mut self, out: &mut Vec<Payload>) -> Result<()> {
        self.drain_epoch_energy();
        let counters = self.monitor.counters();
        let delta = counters.delta(&self.epoch_start);
        let obs = EpochObservation {
            seconds: delta.seconds,
            beats: delta.beats,
            af_active: self.af_active,
            ectopic_ratio: if self.epoch_classified == 0 {
                0.0
            } else {
                self.epoch_ectopic as f64 / self.epoch_classified as f64
            },
            soc: self.battery.soc(),
        };
        let decision = self.governor.decide(&obs);
        if decision.changed {
            let from = self.monitor.mode();
            let boundary = match self.monitor.switch_mode(decision.mode) {
                Ok(b) => b,
                Err(e) => {
                    // Unreachable for configuration reasons — every
                    // tier's mode is pre-flighted in `new` — but keep
                    // the epoch books consistent anyway so a caller
                    // retrying after an error cannot double-drain the
                    // battery for the same epoch.
                    self.epoch_start = self.monitor.counters();
                    self.frames_into_epoch = 0;
                    self.epoch_ectopic = 0;
                    self.epoch_classified = 0;
                    return Err(e);
                }
            };
            // Boundary flush payloads carry stage-relative indices of
            // the *retired* stage; observe them before rebasing.
            self.observe_payloads(&boundary);
            self.frame_base = self.frames_total;
            // The flush bytes fall between two epoch deltas (the epoch
            // just priced and the one starting now), so price them
            // directly as a burst — a switch never transmits for free.
            // Each payload is its own link message, so its radio
            // frames are its link fragments: price per payload through
            // the framed path (one wakeup each, like the stream
            // model's payload-count wakeups), and clear the wire-byte
            // accumulator so the next epoch drain cannot price these
            // bytes again.
            if !boundary.is_empty() {
                self.epoch_wire_bytes = 0;
                let burst_j = self.price_burst(&boundary);
                self.battery.drain_j(burst_j);
                self.drained_j += burst_j;
            }
            out.extend(boundary);
            // Changed decisions always carry a reason; an (impossible)
            // reasonless change records no switch event rather than
            // aborting mid-epoch.
            if let Some(reason) = decision.reason {
                self.switches.push(SwitchEvent {
                    at_s: counters.seconds,
                    from,
                    to: decision.mode,
                    tier: decision.tier,
                    reason,
                });
            }
        }
        self.epoch_start = self.monitor.counters();
        self.frames_into_epoch = 0;
        self.epoch_ectopic = 0;
        self.epoch_classified = 0;
        Ok(())
    }

    /// Feeds emitted payloads to the rhythm sentinel and accumulates
    /// their exact on-wire (framed) byte cost for the battery books.
    fn observe_payloads(&mut self, payloads: &[Payload]) {
        let mtu = self.governor.config().link_mtu;
        for p in payloads {
            self.epoch_wire_bytes += crate::link::wire_bytes_for(p.byte_len(), mtu) as u64;
            match p {
                Payload::Events {
                    af_active,
                    class_counts,
                    n_beats,
                    ..
                } => {
                    self.af_active = *af_active;
                    let ectopic: u32 = class_counts.iter().skip(1).sum();
                    self.epoch_ectopic += u64::from(ectopic);
                    self.epoch_classified += u64::from(*n_beats);
                }
                Payload::Beats { beats } => {
                    for b in beats {
                        self.af_beats.push(AfBeat {
                            r_sample: self.frame_base as usize + b.r_peak,
                            has_p: b.has_p(),
                        });
                    }
                    if self.af_beats.len() > 512 {
                        self.af_beats.drain(..256);
                    }
                    // Re-analyzing the whole (≤512-beat) buffer per
                    // payload mirrors ClassifyStage's own AF tracking:
                    // window alignment is relative to the buffer
                    // start, so a shorter buffer would shift episode
                    // boundaries. Measured cost of the whole governed
                    // wrapper is ~1.5% of ingest (governor benches).
                    let windows = self.af.analyze(&self.af_beats);
                    if let Some(w) = windows.last() {
                        self.af_active = w.is_af;
                    }
                }
                // Raw/CS payloads carry no rhythm information.
                Payload::RawChunk { .. } | Payload::CsWindow { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(cfg: GovernorConfig) -> PowerGovernor {
        PowerGovernor::new(cfg, MonitorConfig::default(), NodeModel::default()).unwrap()
    }

    fn quiet(soc: f64) -> EpochObservation {
        EpochObservation {
            seconds: 10.0,
            beats: 9,
            af_active: false,
            ectopic_ratio: 0.0,
            soc,
        }
    }

    fn af(soc: f64) -> EpochObservation {
        EpochObservation {
            af_active: true,
            beats: 18,
            ..quiet(soc)
        }
    }

    #[test]
    fn directives_apply_through_the_switch_plumbing() {
        use crate::link::DirectiveAction;
        let mut s = GovernedMonitor::new(
            MonitorBuilder::new().n_leads(3),
            GovernorConfig::for_leads(3),
            NodeModel::default(),
        )
        .unwrap();
        let from = s.mode();
        // A mode directive lands in the switch log as Directive.
        s.apply_directive(DirectiveAction::SetMode {
            level: 3, // Delineated
            active_leads: 3,
        })
        .unwrap();
        assert_eq!(s.mode().level, ProcessingLevel::Delineated);
        let log = s.switch_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].reason, SwitchReason::Directive);
        assert_eq!(log[0].from, from);
        // A CR directive updates the config without a stage rebuild
        // or a switch-log entry; MTU directives are a node-link
        // concern and a no-op here.
        s.apply_directive(DirectiveAction::SetCr { cr_x10: 500 })
            .unwrap();
        assert!((s.monitor().config().cs_cr_percent - 50.0).abs() < 1e-12);
        s.apply_directive(DirectiveAction::SetMtu { mtu: 64 })
            .unwrap();
        assert_eq!(s.switch_log().len(), 1);
        // Hostile input: unknown ladder index is a typed error, the
        // session untouched.
        assert!(s
            .apply_directive(DirectiveAction::SetMode {
                level: 9,
                active_leads: 1
            })
            .is_err());
        assert_eq!(s.mode().level, ProcessingLevel::Delineated);
    }

    #[test]
    fn escalates_immediately_and_recovers_slowly() {
        let mut g = governor(GovernorConfig::for_leads(3));
        assert_eq!(g.tier(), FidelityTier::Vigilant);
        let d = g.decide(&af(1.0));
        assert!(d.changed);
        assert_eq!(d.tier, FidelityTier::Alert);
        assert_eq!(d.reason, Some(SwitchReason::RhythmEscalation));
        // Quiet epochs: no step down before the configured run.
        let cfg = g.config().clone();
        for _ in 0..cfg.deescalate_after - 1 {
            assert!(!g.decide(&quiet(1.0)).changed);
        }
        let d = g.decide(&quiet(1.0));
        assert!(d.changed);
        assert_eq!(d.tier, FidelityTier::Vigilant);
        assert_eq!(d.reason, Some(SwitchReason::RhythmRecovery));
        // And another full quiet run before reaching economy.
        for _ in 0..cfg.deescalate_after - 1 {
            assert!(!g.decide(&quiet(1.0)).changed);
        }
        let d = g.decide(&quiet(1.0));
        assert_eq!(d.tier, FidelityTier::Economy);
        assert_eq!(d.mode, cfg.economy_mode);
    }

    #[test]
    fn flickering_af_does_not_oscillate() {
        let mut g = governor(GovernorConfig::for_leads(3));
        let _ = g.decide(&af(1.0));
        let mut switches = 0;
        for i in 0..40 {
            let obs = if i % 2 == 0 { quiet(1.0) } else { af(1.0) };
            if g.decide(&obs).changed {
                switches += 1;
            }
        }
        // The AF flag flips every epoch; hysteresis keeps the mode
        // pinned at alert (quiet runs never reach deescalate_after).
        assert_eq!(switches, 0);
        assert_eq!(g.tier(), FidelityTier::Alert);
    }

    #[test]
    fn critical_soc_forces_economy_even_during_af() {
        let mut g = governor(GovernorConfig::for_leads(3));
        let _ = g.decide(&af(1.0));
        assert_eq!(g.tier(), FidelityTier::Alert);
        let d = g.decide(&af(0.05));
        assert!(d.changed);
        assert_eq!(d.tier, FidelityTier::Economy);
        assert_eq!(d.reason, Some(SwitchReason::CriticalBattery));
        // Low (but not critical) SoC caps at vigilant instead. A short
        // mission target keeps the (stricter) mission guard out of the
        // picture so the cap itself is what is exercised.
        let mut cfg = GovernorConfig::for_leads(3);
        cfg.target_days = 0.25;
        let mut g = governor(cfg);
        let _ = g.decide(&af(1.0));
        assert_eq!(g.tier(), FidelityTier::Alert);
        let d = g.decide(&af(0.2));
        assert!(d.changed);
        assert_eq!(d.tier, FidelityTier::Vigilant);
        assert_eq!(d.reason, Some(SwitchReason::LowBattery));
    }

    #[test]
    fn mission_guard_degrades_when_charge_cannot_last() {
        // 20% charge against a full 7-day mission: even vigilant is
        // too rich, the guard walks the tier down to economy — but
        // only after the dwell, because the guard prices against the
        // (noisy) beat rate and must not flap the mode on a rate blip.
        let mut g = governor(GovernorConfig::for_leads(3));
        let dwell = g.config().min_dwell_epochs;
        for _ in 0..dwell {
            let d = g.decide(&af(0.2));
            assert!(!d.changed, "guard de-escalated inside the dwell");
            assert_eq!(d.tier, FidelityTier::Vigilant);
        }
        let d = g.decide(&af(0.2));
        assert!(d.changed);
        assert_eq!(d.tier, FidelityTier::Economy);
        assert_eq!(d.reason, Some(SwitchReason::MissionGuard));
    }

    #[test]
    fn guard_ceiling_caps_escalation_without_flapping() {
        // An AF episode with the battery right at the mission margin:
        // the escalation lands at the affordable tier directly and the
        // mode never bounces Alert <-> Vigilant even though the beat
        // rate varies epoch to epoch.
        let mut g = governor(GovernorConfig::for_leads(3));
        let mut switches = 0;
        for i in 0..60 {
            // Irregular AF: beat count jitters around the margin.
            let obs = EpochObservation {
                beats: 14 + (i % 5) * 3,
                ..af(0.21)
            };
            if g.decide(&obs).changed {
                switches += 1;
            }
        }
        assert!(switches <= 2, "mode flapped: {switches} switches");
        // It settled at a tier the charge can actually sustain.
        assert!(g.tier() < FidelityTier::Alert);
    }

    #[test]
    fn radio_budget_rejects_expensive_alert_modes() {
        let mut cfg = GovernorConfig::for_leads(3);
        cfg.alert_mode = OperatingMode::new(ProcessingLevel::RawStreaming, 3);
        cfg.radio_budget_bytes_per_s = 200.0; // raw is ~1.1 kB/s
        let mut g = governor(cfg);
        let d = g.decide(&af(1.0));
        // Raw streaming blows the budget; the governor refuses the
        // escalation and stays at the richest affordable tier.
        assert_eq!(d.tier, FidelityTier::Vigilant);
        assert!(!d.changed);
    }

    #[test]
    fn pinned_policy_never_switches() {
        let mode = OperatingMode::new(ProcessingLevel::CompressedSingleLead, 3);
        let mut g = governor(GovernorConfig::pinned(mode));
        for i in 0..50 {
            let obs = if i % 3 == 0 { af(0.5) } else { quiet(0.04) };
            let d = g.decide(&obs);
            assert!(!d.changed);
            assert_eq!(d.mode, mode);
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut cfg = GovernorConfig::for_leads(3);
        cfg.epoch_s = 0.0;
        assert!(PowerGovernor::new(cfg, MonitorConfig::default(), NodeModel::default()).is_err());
        let mut cfg = GovernorConfig::for_leads(3);
        cfg.deescalate_after = 0;
        assert!(PowerGovernor::new(cfg, MonitorConfig::default(), NodeModel::default()).is_err());
        let mut cfg = GovernorConfig::for_leads(3);
        cfg.critical_soc = 0.5;
        cfg.low_soc = 0.2;
        assert!(PowerGovernor::new(cfg, MonitorConfig::default(), NodeModel::default()).is_err());
    }

    #[test]
    fn governed_monitor_preflights_every_tier_mode() {
        // A CS alert mode over a non-dyadic window must fail at
        // construction — never at the first escalation mid-stream,
        // where a failed switch would desync governor and monitor.
        let mut cfg = GovernorConfig::for_leads(3);
        cfg.alert_mode = OperatingMode::new(ProcessingLevel::CompressedMultiLead, 3);
        let builder = crate::monitor::MonitorBuilder::new()
            .n_leads(3)
            .cs_window(300);
        assert!(GovernedMonitor::new(builder, cfg, NodeModel::default()).is_err());
        // The same configuration with a dyadic window is fine.
        let mut cfg = GovernorConfig::for_leads(3);
        cfg.alert_mode = OperatingMode::new(ProcessingLevel::CompressedMultiLead, 3);
        let builder = crate::monitor::MonitorBuilder::new()
            .n_leads(3)
            .cs_window(256);
        assert!(GovernedMonitor::new(builder, cfg, NodeModel::default()).is_ok());
    }

    #[test]
    fn economy_mode_is_cheaper_than_alert_mode() {
        let g = governor(GovernorConfig::for_leads(3));
        let cfg = g.config();
        let p_economy = g.predicted_power_w(cfg.economy_mode, 1.2);
        let p_alert = g.predicted_power_w(cfg.alert_mode, 1.2);
        assert!(
            p_economy < 0.75 * p_alert,
            "economy {p_economy} W vs alert {p_alert} W"
        );
    }
}
