//! The session engine: one monitored subject, one pipeline.
//!
//! [`CardiacMonitor`] owns a single [`PipelineStage`] chosen from the
//! configured [`ProcessingLevel`] and orchestrates it: it validates
//! frames, feeds the stage, drains the [`PayloadSink`], and keeps the
//! session-wide [`ActivityCounters`] the energy model prices
//! afterwards. All processing logic lives in the stages
//! ([`crate::stage`]); the engine never matches on the level after
//! construction.
//!
//! Sessions are built with the validating [`MonitorBuilder`]:
//!
//! ```
//! use wbsn_core::monitor::MonitorBuilder;
//! use wbsn_core::level::ProcessingLevel;
//!
//! let mut node = MonitorBuilder::new()
//!     .level(ProcessingLevel::Classified)
//!     .n_leads(3)
//!     .fs_hz(250)
//!     .event_interval_s(10.0)
//!     .build()
//!     .unwrap();
//! assert!(node.try_push(&[0, 0, 0]).is_ok());
//! assert!(node.try_push(&[0, 0]).is_err()); // lead mismatch, no panic
//! ```

use crate::level::{OperatingMode, ProcessingLevel};
use crate::payload::Payload;
pub use crate::stage::ActivityCounters;
use crate::stage::{
    ClassifyStage, CsStage, DelineationStage, PayloadSink, PipelineStage, RawForwarder,
};
use crate::{Result, WbsnError};
use wbsn_classify::fuzzy::FuzzyClassifier;
use wbsn_ecg_synth::Record;

/// Node configuration.
///
/// Prefer [`MonitorBuilder`] over struct literals: the builder
/// validates upfront and keeps call sites stable when fields grow.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Sampling rate per lead, Hz.
    pub fs_hz: u32,
    /// Number of ECG leads.
    pub n_leads: usize,
    /// Processing level.
    pub level: ProcessingLevel,
    /// Acquisition leads initially powered (`None` = all `n_leads`).
    /// Frames always carry `n_leads` samples; gated leads are ignored
    /// by the pipeline and priced as unpowered by the energy model.
    /// The [power governor](crate::governor) adjusts this at runtime
    /// through [`CardiacMonitor::switch_mode`].
    pub active_leads: Option<usize>,
    /// CS window length (samples).
    pub cs_window: usize,
    /// CS compression ratio in percent.
    pub cs_cr_percent: f64,
    /// CS sensing-matrix column density.
    pub cs_d_per_col: usize,
    /// Shared matrix seed.
    pub seed: u64,
    /// Beats per transmitted `Beats` payload.
    pub beats_per_payload: usize,
    /// Seconds between `Events` payloads at the classified level.
    pub event_interval_s: f64,
    /// Optional trained beat classifier (classified level). When
    /// absent, beats are counted as class 0.
    pub classifier: Option<FuzzyClassifier>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            fs_hz: 250,
            n_leads: 3,
            level: ProcessingLevel::Delineated,
            active_leads: None,
            cs_window: 512,
            cs_cr_percent: 65.9,
            cs_d_per_col: 4,
            seed: 0xCAFE,
            beats_per_payload: 8,
            event_interval_s: 10.0,
            classifier: None,
        }
    }
}

/// Fluent, validating builder for [`CardiacMonitor`] sessions.
///
/// Invalid combinations are rejected at [`MonitorBuilder::build`]
/// time, never at ingest time:
///
/// ```
/// use wbsn_core::monitor::MonitorBuilder;
/// use wbsn_core::level::ProcessingLevel;
///
/// let monitor = MonitorBuilder::new()
///     .level(ProcessingLevel::CompressedSingleLead)
///     .n_leads(2)
///     .cs_window(256)
///     .cs_compression_ratio(60.0)
///     .build()
///     .unwrap();
/// assert_eq!(monitor.stage_name(), "cs-encoder");
///
/// // A non-dyadic CS window cannot produce a session at all.
/// assert!(MonitorBuilder::new()
///     .level(ProcessingLevel::CompressedSingleLead)
///     .cs_window(300)
///     .build()
///     .is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MonitorBuilder {
    cfg: MonitorConfig,
}

impl MonitorBuilder {
    /// Builder seeded with the paper's default operating point
    /// (3 leads at 250 Hz, delineated level).
    pub fn new() -> Self {
        MonitorBuilder::default()
    }

    /// Builder starting from an existing configuration.
    pub fn from_config(cfg: MonitorConfig) -> Self {
        MonitorBuilder { cfg }
    }

    /// Sampling rate per lead, Hz.
    #[must_use]
    pub fn fs_hz(mut self, fs_hz: u32) -> Self {
        self.cfg.fs_hz = fs_hz;
        self
    }

    /// Number of ECG leads.
    #[must_use]
    pub fn n_leads(mut self, n_leads: usize) -> Self {
        self.cfg.n_leads = n_leads;
        self
    }

    /// Processing level on the abstraction ladder.
    #[must_use]
    pub fn level(mut self, level: ProcessingLevel) -> Self {
        self.cfg.level = level;
        self
    }

    /// Acquisition leads initially powered (1 ..= `n_leads`).
    #[must_use]
    pub fn active_leads(mut self, active: usize) -> Self {
        self.cfg.active_leads = Some(active);
        self
    }

    /// CS window length in samples (dyadic).
    #[must_use]
    pub fn cs_window(mut self, samples: usize) -> Self {
        self.cfg.cs_window = samples;
        self
    }

    /// CS compression ratio in percent (0 < CR < 100).
    #[must_use]
    pub fn cs_compression_ratio(mut self, percent: f64) -> Self {
        self.cfg.cs_cr_percent = percent;
        self
    }

    /// CS sensing-matrix column density.
    #[must_use]
    pub fn cs_density(mut self, d_per_col: usize) -> Self {
        self.cfg.cs_d_per_col = d_per_col;
        self
    }

    /// Shared sensing-matrix seed (the decoder regenerates Φ from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Beats batched into each `Beats` payload.
    #[must_use]
    pub fn beats_per_payload(mut self, n: usize) -> Self {
        self.cfg.beats_per_payload = n;
        self
    }

    /// Seconds between `Events` payloads at the classified level.
    #[must_use]
    pub fn event_interval_s(mut self, seconds: f64) -> Self {
        self.cfg.event_interval_s = seconds;
        self
    }

    /// Trained beat classifier for the classified level.
    #[must_use]
    pub fn classifier(mut self, clf: FuzzyClassifier) -> Self {
        self.cfg.classifier = Some(clf);
        self
    }

    /// The configuration accumulated so far.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Validates the configuration and constructs the session.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for inconsistent configuration
    /// (zero leads, non-dyadic CS window, out-of-range CR, …), plus
    /// whatever the selected stage's components reject.
    pub fn build(self) -> Result<CardiacMonitor> {
        let cfg = self.cfg;
        if cfg.n_leads == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "n_leads",
                detail: "must be at least 1".into(),
            });
        }
        if cfg.n_leads > 255 {
            return Err(WbsnError::InvalidParameter {
                what: "n_leads",
                detail: format!("{} exceeds the payload lead-index range (255)", cfg.n_leads),
            });
        }
        if cfg.fs_hz == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "fs_hz",
                detail: "must be positive".into(),
            });
        }
        let active = cfg.active_leads.unwrap_or(cfg.n_leads);
        check_active_leads(active, cfg.n_leads)?;
        let stage = build_stage(&cfg, active)?;
        Ok(CardiacMonitor {
            cfg,
            stage,
            active_leads: active,
            sink: PayloadSink::new(),
            n_frames: 0,
            samples_acquired: 0,
            retired: ActivityCounters::default(),
            interleave_scratch: Vec::new(),
            gate_scratch: Vec::new(),
        })
    }
}

fn check_active_leads(active: usize, n_leads: usize) -> Result<()> {
    if active == 0 || active > n_leads {
        return Err(WbsnError::InvalidParameter {
            what: "active_leads",
            detail: format!("{active} outside 1..={n_leads}"),
        });
    }
    Ok(())
}

/// Validates that `mode` could be constructed under `cfg` by building
/// (and discarding) its stage. The governor pre-flights every tier's
/// mode with this at session creation, so a later live switch cannot
/// fail for configuration reasons mid-stream.
pub(crate) fn validate_mode(cfg: &MonitorConfig, mode: OperatingMode) -> Result<()> {
    check_active_leads(mode.active_leads, cfg.n_leads)?;
    let mut cfg = cfg.clone();
    cfg.level = mode.level;
    build_stage(&cfg, mode.active_leads).map(|_| ())
}

/// Constructs the pipeline stage for one operating point: `level`
/// processing over the first `active` leads of every frame. Shared by
/// [`MonitorBuilder::build`] and [`CardiacMonitor::switch_mode`], so a
/// live switch installs exactly the stage a fresh session at the new
/// mode would start with.
fn build_stage(cfg: &MonitorConfig, active: usize) -> Result<Box<dyn PipelineStage>> {
    Ok(match cfg.level {
        ProcessingLevel::RawStreaming => {
            // 1 s chunks.
            Box::new(RawForwarder::new(active, cfg.fs_hz as usize)?)
        }
        ProcessingLevel::CompressedSingleLead | ProcessingLevel::CompressedMultiLead => {
            Box::new(CsStage::new(
                active,
                cfg.cs_window,
                cfg.cs_cr_percent,
                cfg.cs_d_per_col,
                cfg.seed,
            )?)
        }
        ProcessingLevel::Delineated => Box::new(DelineationStage::new(
            active,
            cfg.fs_hz,
            cfg.beats_per_payload,
        )?),
        ProcessingLevel::Classified => Box::new(ClassifyStage::new(
            active,
            cfg.fs_hz,
            cfg.event_interval_s,
            cfg.classifier.clone(),
        )?),
    })
}

/// One monitoring session: the streaming engine orchestrating a
/// [`PipelineStage`].
#[derive(Debug)]
pub struct CardiacMonitor {
    cfg: MonitorConfig,
    stage: Box<dyn PipelineStage>,
    // Leads currently powered; the stage is built over exactly this
    // many leads and every frame is gated down to them.
    active_leads: usize,
    sink: PayloadSink,
    n_frames: u64,
    // Per-lead samples actually acquired (gated leads draw no AFE/ADC
    // energy and are not counted).
    samples_acquired: u64,
    // Stage-specific activity accumulated by stages retired through
    // `switch_mode`, so session counters survive live reconfiguration.
    retired: ActivityCounters,
    // Reusable interleave buffer for `process_record`, so repeated
    // record replays allocate nothing in the steady state.
    interleave_scratch: Vec<i32>,
    // Reusable lead-gating buffer for `push_block` when fewer leads
    // are active than the frame width carries.
    gate_scratch: Vec<i32>,
}

impl CardiacMonitor {
    /// Builds the node from a full configuration (equivalent to
    /// `MonitorBuilder::from_config(cfg).build()`).
    ///
    /// # Errors
    ///
    /// Fails when the configuration is inconsistent (zero leads,
    /// non-dyadic CS window, …).
    pub fn new(cfg: MonitorConfig) -> Result<Self> {
        MonitorBuilder::from_config(cfg).build()
    }

    /// Fluent entry point: `CardiacMonitor::builder().level(..).build()`.
    pub fn builder() -> MonitorBuilder {
        MonitorBuilder::new()
    }

    /// Configuration in use.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// The stage running in this session (diagnostics).
    pub fn stage_name(&self) -> &'static str {
        self.stage.name()
    }

    /// The operating point currently in effect (level + powered leads).
    pub fn mode(&self) -> OperatingMode {
        OperatingMode {
            level: self.cfg.level,
            active_leads: self.active_leads,
        }
    }

    /// Leads currently powered (≤ the configured frame width).
    pub fn active_leads(&self) -> usize {
        self.active_leads
    }

    /// Activity accumulated so far: engine-level frame/byte totals
    /// merged with the stage's own counters, including the activity of
    /// stages retired by [`Self::switch_mode`]. `samples_in` counts
    /// only samples from powered leads (gated leads acquire nothing).
    pub fn counters(&self) -> ActivityCounters {
        let mut c = self.stage.activity().merged(&self.retired);
        c.samples_in = self.samples_acquired;
        c.seconds = self.n_frames as f64 / self.cfg.fs_hz as f64;
        c.payload_bytes = self.sink.total_bytes();
        c.payloads = self.sink.total_payloads();
        c
    }

    /// Switches the session to a new operating mode **live**, at the
    /// boundary between the frames already pushed and the frames still
    /// to come.
    ///
    /// Boundary semantics (the determinism contract pinned by
    /// `tests/governor_properties.rs`):
    ///
    /// * Buffered partial state of the outgoing stage is **flushed,
    ///   not dropped** — queued beats, partial raw chunks and the
    ///   final event summary are emitted as payloads and returned
    ///   (torn CS windows are dropped, as on every shutdown path).
    /// * The outgoing stage's activity counters are retired into the
    ///   session totals, so [`Self::counters`] keeps accumulating
    ///   across switches.
    /// * The incoming stage starts from a clean history boundary and
    ///   is **bit-identical to a fresh monitor built at the new mode**
    ///   and fed the same post-boundary frames: every payload byte and
    ///   stage counter matches. The short delineator warm-up after a
    ///   switch is the price of that reproducibility; the governor's
    ///   dwell hysteresis amortizes it.
    ///
    /// Switching to the current mode is a no-op returning no payloads.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] when `mode.active_leads` is not
    /// in `1..=n_leads`, plus stage construction failures (in which
    /// case the session keeps its previous stage untouched).
    pub fn switch_mode(&mut self, mode: OperatingMode) -> Result<Vec<Payload>> {
        check_active_leads(mode.active_leads, self.cfg.n_leads)?;
        if mode == self.mode() {
            return Ok(Vec::new());
        }
        let mut cfg = self.cfg.clone();
        cfg.level = mode.level;
        cfg.active_leads = Some(mode.active_leads);
        // Build first: a failing construction must leave the session
        // running at its previous mode.
        let fresh = build_stage(&cfg, mode.active_leads)?;
        self.stage.flush(&mut self.sink)?;
        let retiring = core::mem::replace(&mut self.stage, fresh);
        self.retired = self.retired.merged(&retiring.activity());
        self.cfg = cfg;
        self.active_leads = mode.active_leads;
        Ok(self.sink.drain())
    }

    /// Renegotiates the CS compression ratio live — the application
    /// path of a gateway
    /// [`DirectiveAction::SetCr`](crate::link::DirectiveAction::SetCr).
    /// Unlike [`Self::switch_mode`] this does **not** rebuild the
    /// stage: the window length is unchanged, so the current stage
    /// swaps its per-lead sensing matrices in place, keeps any
    /// partially buffered window, and continues the `window_seq`
    /// numbering — the gateway's reference alignment survives the
    /// switch, it just needs the re-announced handshake
    /// ([`Uplink::announce_handshake`](crate::link::Uplink::announce_handshake))
    /// to regenerate Φ at the new measurement count.
    ///
    /// Returns `true` when the running stage compresses and applied
    /// the ratio now; `false` when it does not (the ratio still lands
    /// in the configuration, so a later switch to a CS level uses
    /// it).
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for a ratio outside `[0, 100)`
    /// (the session is untouched on error).
    pub fn switch_cs_cr(&mut self, cr_percent: f64) -> Result<bool> {
        if !(0.0..100.0).contains(&cr_percent) {
            return Err(WbsnError::InvalidParameter {
                what: "cs_cr_percent",
                detail: format!("{cr_percent} outside [0, 100)"),
            });
        }
        let applied = self.stage.renegotiate_cs_cr(cr_percent)?;
        self.cfg.cs_cr_percent = cr_percent;
        Ok(applied)
    }

    /// Switches the processing level, keeping the powered lead count —
    /// see [`Self::switch_mode`] for the boundary semantics.
    ///
    /// # Errors
    ///
    /// As [`Self::switch_mode`].
    pub fn switch_level(&mut self, level: ProcessingLevel) -> Result<Vec<Payload>> {
        self.switch_mode(OperatingMode {
            level,
            active_leads: self.active_leads,
        })
    }

    /// Pushes one simultaneous sample per lead; returns any payloads
    /// that became ready.
    ///
    /// # Errors
    ///
    /// [`WbsnError::LeadMismatch`] when `frame.len()` differs from the
    /// configured lead count.
    pub fn try_push(&mut self, frame: &[i32]) -> Result<Vec<Payload>> {
        if frame.len() != self.cfg.n_leads {
            return Err(WbsnError::LeadMismatch {
                expected: self.cfg.n_leads,
                got: frame.len(),
            });
        }
        self.stage
            .push_frame(&frame[..self.active_leads], &mut self.sink)?;
        self.n_frames += 1;
        self.samples_acquired += self.active_leads as u64;
        Ok(self.sink.drain())
    }

    /// Infallible convenience wrapper over [`Self::try_push`].
    ///
    /// # Panics
    ///
    /// Panics when `frame.len()` differs from the configured lead
    /// count; streaming callers that cannot guarantee framing should
    /// use [`Self::try_push`].
    pub fn push(&mut self, frame: &[i32]) -> Vec<Payload> {
        // wbsn-allow(no-panic): documented infallible wrapper — the lead-count panic is this API's contract; wire-facing callers use try_push
        self.try_push(frame).expect("lead count")
    }

    /// Batched ingestion hot path for server-side replay: consumes
    /// `n_frames` interleaved frames (`frames[i * n_leads + l]` is
    /// lead `l` of frame `i`) with one validation, one block dispatch
    /// into the stage's [`PipelineStage::process_block`] kernel, and
    /// one payload drain. In the steady state (reused session, no
    /// payload due) this path performs zero heap allocations — pinned
    /// by the counting-allocator test `tests/alloc_steady_state.rs`.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] when `frames.len()` is not
    /// exactly `n_frames * n_leads`.
    pub fn push_block(&mut self, frames: &[i32], n_frames: usize) -> Result<Vec<Payload>> {
        let n_leads = self.cfg.n_leads;
        let expected = n_frames.checked_mul(n_leads);
        if expected != Some(frames.len()) {
            return Err(WbsnError::InvalidParameter {
                what: "frames",
                detail: format!(
                    "block of {n_frames} frames × {n_leads} leads needs {} samples, got {}",
                    expected.map_or_else(|| "an overflowing number of".into(), |e| e.to_string()),
                    frames.len()
                ),
            });
        }
        let active = self.active_leads;
        if active == n_leads {
            self.stage.process_block(frames, n_leads, &mut self.sink)?;
        } else {
            // Gate the frames down to the powered leads; the scratch
            // buffer is reused, so the steady state allocates nothing.
            let mut gated = core::mem::take(&mut self.gate_scratch);
            gated.clear();
            gated.reserve(n_frames * active);
            for frame in frames.chunks_exact(n_leads) {
                gated.extend_from_slice(&frame[..active]);
            }
            let result = self.stage.process_block(&gated, active, &mut self.sink);
            self.gate_scratch = gated;
            result?;
        }
        self.n_frames += n_frames as u64;
        self.samples_acquired += (n_frames * active) as u64;
        Ok(self.sink.drain())
    }

    /// Convenience: processes an entire synthetic record (batched
    /// ingestion plus a final flush).
    ///
    /// # Errors
    ///
    /// [`WbsnError::LeadMismatch`] when the record carries fewer leads
    /// than the session is configured for — earlier releases silently
    /// duplicated the record's last lead instead.
    pub fn process_record(&mut self, record: &Record) -> Result<Vec<Payload>> {
        if record.n_leads() < self.cfg.n_leads {
            return Err(WbsnError::LeadMismatch {
                expected: self.cfg.n_leads,
                got: record.n_leads(),
            });
        }
        let n = record.n_samples();
        let n_leads = self.cfg.n_leads;
        let mut interleaved = core::mem::take(&mut self.interleave_scratch);
        interleaved.clear();
        interleaved.resize(n * n_leads, 0);
        for (l, lead) in (0..n_leads).map(|l| (l, record.lead(l))) {
            for (i, &s) in lead.iter().enumerate() {
                interleaved[i * n_leads + l] = s;
            }
        }
        let result = self.push_block(&interleaved, n);
        self.interleave_scratch = interleaved;
        let mut payloads = result?;
        payloads.extend(self.flush()?);
        Ok(payloads)
    }

    /// Flushes any buffered partial state (end of session).
    ///
    /// # Errors
    ///
    /// Stage-specific processing failures.
    pub fn flush(&mut self) -> Result<Vec<Payload>> {
        self.stage.flush(&mut self.sink)?;
        Ok(self.sink.drain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_ecg_synth::noise::NoiseConfig;
    use wbsn_ecg_synth::{Record, RecordBuilder, Rhythm};

    fn record(seed: u64, secs: f64) -> Record {
        RecordBuilder::new(seed)
            .duration_s(secs)
            .n_leads(3)
            .noise(NoiseConfig::ambulatory(22.0))
            .build()
    }

    fn run_level(level: ProcessingLevel, secs: f64) -> (Vec<Payload>, ActivityCounters) {
        let rec = record(42, secs);
        let mut m = MonitorBuilder::new().level(level).build().unwrap();
        let p = m.process_record(&rec).unwrap();
        (p, m.counters())
    }

    #[test]
    fn switch_cs_cr_preserves_window_seq_and_partial_buffers() {
        let mut m = MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .n_leads(1)
            .cs_window(256)
            .cs_compression_ratio(50.0)
            .build()
            .unwrap();
        // One full window at CR 50, then half a window, then the
        // switch, then the other half: the straddling window must
        // still come out — numbered 1 — at the new measurement count.
        let mut out = m.push_block(&vec![7i32; 256], 256).unwrap();
        out.extend(m.push_block(&vec![7i32; 128], 128).unwrap());
        assert!(m.switch_cs_cr(65.9).unwrap());
        assert!((m.config().cs_cr_percent - 65.9).abs() < 1e-12);
        out.extend(m.push_block(&vec![7i32; 128], 128).unwrap());
        let meta: Vec<(u32, usize)> = out
            .iter()
            .map(|p| match p {
                Payload::CsWindow {
                    window_seq,
                    measurements,
                    ..
                } => (*window_seq, measurements.len()),
                other => panic!("unexpected payload {other:?}"),
            })
            .collect();
        let m50 = wbsn_cs::measurements_for_cr(256, 50.0);
        let m659 = wbsn_cs::measurements_for_cr(256, 65.9);
        assert_eq!(meta, vec![(0, m50), (1, m659)]);
        // Out-of-range ratios leave the session untouched.
        assert!(m.switch_cs_cr(100.0).is_err());
        assert!((m.config().cs_cr_percent - 65.9).abs() < 1e-12);
    }

    #[test]
    fn switch_cs_cr_on_a_non_cs_stage_only_updates_config() {
        let mut m = MonitorBuilder::new()
            .level(ProcessingLevel::Classified)
            .build()
            .unwrap();
        assert!(!m.switch_cs_cr(50.0).unwrap());
        assert!((m.config().cs_cr_percent - 50.0).abs() < 1e-12);
        // A later switch down to a CS level builds at the new ratio.
        m.switch_level(ProcessingLevel::CompressedSingleLead)
            .unwrap();
        let hs = crate::link::SessionHandshake::for_config(1, m.config());
        assert_eq!(
            hs.cs_measurements as usize,
            wbsn_cs::measurements_for_cr(m.config().cs_window, 50.0)
        );
    }

    #[test]
    fn raw_streaming_emits_all_samples() {
        let (payloads, c) = run_level(ProcessingLevel::RawStreaming, 5.0);
        let total: usize = payloads
            .iter()
            .map(|p| match p {
                Payload::RawChunk { samples, .. } => samples.len(),
                _ => panic!("unexpected payload"),
            })
            .sum();
        assert_eq!(total, 3 * 1250);
        assert!(c.payload_bytes > 5000);
    }

    #[test]
    fn compressed_emits_windows_with_fewer_bytes_than_raw() {
        let (raw, _) = run_level(ProcessingLevel::RawStreaming, 10.0);
        let (cs, c) = run_level(ProcessingLevel::CompressedSingleLead, 10.0);
        let raw_bytes: usize = raw.iter().map(Payload::byte_len).sum();
        let cs_bytes: usize = cs.iter().map(Payload::byte_len).sum();
        assert!(
            (cs_bytes as f64) < 0.55 * raw_bytes as f64,
            "cs {cs_bytes} raw {raw_bytes}"
        );
        assert!(c.cs_windows >= 12, "windows {}", c.cs_windows);
        assert!(c.cs_adds > 0);
    }

    #[test]
    fn delineated_emits_beats() {
        let (payloads, c) = run_level(ProcessingLevel::Delineated, 20.0);
        let beats: usize = payloads
            .iter()
            .map(|p| match p {
                Payload::Beats { beats } => beats.len(),
                _ => 0,
            })
            .sum();
        // ~23 beats at 70 bpm in 20 s minus warm-up.
        assert!(beats >= 15, "beats {beats}");
        assert_eq!(c.beats as usize, beats);
        // Far fewer bytes than compressed.
        assert!(c.payload_bytes < 1000, "bytes {}", c.payload_bytes);
    }

    #[test]
    fn classified_emits_event_summaries() {
        let (payloads, c) = run_level(ProcessingLevel::Classified, 30.0);
        let events: Vec<_> = payloads
            .iter()
            .filter_map(|p| match p {
                Payload::Events { n_beats, .. } => Some(*n_beats),
                _ => None,
            })
            .collect();
        assert!(!events.is_empty());
        let total_beats: u32 = events.iter().sum();
        assert!(total_beats >= 20, "beats {total_beats}");
        assert!(c.payload_bytes < 200, "bytes {}", c.payload_bytes);
    }

    #[test]
    fn bytes_decrease_with_abstraction_level() {
        let mut last = u64::MAX;
        for level in [
            ProcessingLevel::RawStreaming,
            ProcessingLevel::CompressedSingleLead,
            ProcessingLevel::Delineated,
            ProcessingLevel::Classified,
        ] {
            let (_, c) = run_level(level, 20.0);
            assert!(
                c.payload_bytes < last,
                "{level}: {} not below {last}",
                c.payload_bytes
            );
            last = c.payload_bytes;
        }
    }

    #[test]
    fn af_alert_fires_on_af_record() {
        let rec = RecordBuilder::new(7)
            .duration_s(60.0)
            .n_leads(3)
            .rhythm(Rhythm::AtrialFibrillation { mean_hr_bpm: 95.0 })
            .noise(NoiseConfig::ambulatory(20.0))
            .build();
        let mut m = MonitorBuilder::new()
            .level(ProcessingLevel::Classified)
            .build()
            .unwrap();
        let payloads = m.process_record(&rec).unwrap();
        let af_seen = payloads.iter().any(|p| match p {
            Payload::Events {
                af_active,
                af_burden_pct,
                ..
            } => *af_active || *af_burden_pct > 50,
            _ => false,
        });
        assert!(af_seen, "AF should be reported");
    }

    #[test]
    fn classifier_is_used_when_provided() {
        use wbsn_classify::features::{BeatFeatureExtractor, FeatureConfig};
        use wbsn_classify::fuzzy::{FuzzyClassifier, MembershipMode};
        // Trivial 2-class classifier (features all near zero -> class 0).
        let dims = BeatFeatureExtractor::new(FeatureConfig::default())
            .unwrap()
            .dims();
        let xs: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![if i < 4 { 0.0 } else { 5.0 }; dims])
            .collect();
        let ys = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let clf = FuzzyClassifier::train(&xs, &ys, MembershipMode::PiecewiseLinear).unwrap();
        let rec = record(9, 20.0);
        let mut m = MonitorBuilder::new()
            .level(ProcessingLevel::Classified)
            .classifier(clf)
            .build()
            .unwrap();
        let _ = m.process_record(&rec).unwrap();
        assert!(m.counters().classified_beats > 10);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert!(MonitorBuilder::new().n_leads(0).build().is_err());
        assert!(MonitorBuilder::new().n_leads(300).build().is_err());
        assert!(MonitorBuilder::new().fs_hz(0).build().is_err());
        assert!(MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .cs_window(500)
            .build()
            .is_err());
        assert!(MonitorBuilder::new()
            .level(ProcessingLevel::CompressedSingleLead)
            .cs_compression_ratio(120.0)
            .build()
            .is_err());
        assert!(MonitorBuilder::new()
            .level(ProcessingLevel::Delineated)
            .beats_per_payload(0)
            .build()
            .is_err());
        assert!(MonitorBuilder::new()
            .level(ProcessingLevel::Classified)
            .event_interval_s(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn try_push_reports_lead_mismatch_without_panicking() {
        let mut m = MonitorBuilder::new().n_leads(3).build().unwrap();
        let err = m.try_push(&[1, 2]).unwrap_err();
        assert_eq!(
            err,
            WbsnError::LeadMismatch {
                expected: 3,
                got: 2
            }
        );
        // The session stays usable.
        assert!(m.try_push(&[1, 2, 3]).is_ok());
        assert_eq!(m.counters().samples_in, 3);
    }

    #[test]
    fn push_block_matches_per_frame_pushes_exactly() {
        let rec = record(11, 12.0);
        for level in ProcessingLevel::ALL {
            let mut per_frame = MonitorBuilder::new().level(level).build().unwrap();
            let mut batched = MonitorBuilder::new().level(level).build().unwrap();
            let n = rec.n_samples();
            let mut interleaved = Vec::with_capacity(n * 3);
            for i in 0..n {
                for l in 0..3 {
                    interleaved.push(rec.lead(l)[i]);
                }
            }
            let mut a = Vec::new();
            for frame in interleaved.chunks_exact(3) {
                a.extend(per_frame.try_push(frame).unwrap());
            }
            a.extend(per_frame.flush().unwrap());
            let mut b = batched.push_block(&interleaved, n).unwrap();
            b.extend(batched.flush().unwrap());
            let bytes_a: Vec<u8> = a.iter().flat_map(Payload::encode).collect();
            let bytes_b: Vec<u8> = b.iter().flat_map(Payload::encode).collect();
            assert_eq!(bytes_a, bytes_b, "{level}");
            assert_eq!(per_frame.counters(), batched.counters(), "{level}");
        }
    }

    #[test]
    fn push_block_validates_shape() {
        let mut m = MonitorBuilder::new().n_leads(3).build().unwrap();
        assert!(m.push_block(&[0; 10], 3).is_err()); // 10 != 3 * 3
                                                     // Overflowing frame counts must error, not wrap past validation.
        assert!(m.push_block(&[0; 9], usize::MAX / 3 + 2).is_err());
        assert!(m.push_block(&[0; 9], 3).is_ok());
    }

    #[test]
    fn process_record_rejects_narrow_records() {
        let rec = RecordBuilder::new(5).duration_s(5.0).n_leads(1).build();
        let mut m = MonitorBuilder::new().n_leads(3).build().unwrap();
        let err = m.process_record(&rec).unwrap_err();
        assert_eq!(
            err,
            WbsnError::LeadMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn counters_track_seconds() {
        let (_, c) = run_level(ProcessingLevel::Delineated, 10.0);
        assert!((c.seconds - 10.0).abs() < 0.1, "seconds {}", c.seconds);
        assert_eq!(c.samples_in, 3 * 2500);
    }

    #[test]
    fn stage_names_follow_level() {
        for (level, name) in [
            (ProcessingLevel::RawStreaming, "raw-forwarder"),
            (ProcessingLevel::CompressedSingleLead, "cs-encoder"),
            (ProcessingLevel::Delineated, "delineation"),
            (ProcessingLevel::Classified, "classify"),
        ] {
            let m = MonitorBuilder::new().level(level).build().unwrap();
            assert_eq!(m.stage_name(), name);
        }
    }
}
