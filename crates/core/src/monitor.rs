//! The streaming cardiac-monitor engine.
//!
//! [`CardiacMonitor`] consumes multi-lead samples and produces radio
//! payloads according to its [`ProcessingLevel`], while keeping the
//! per-stage activity counters the energy model prices afterwards:
//!
//! * **Raw** — pack and forward every sample.
//! * **Compressed** — window each lead and run the integer CS encoder.
//! * **Delineated** — RMS-combine the leads, run the streaming QRS +
//!   wavelet delineator, transmit fiducials.
//! * **Classified** — additionally extract random-projection features,
//!   classify each beat with the PWL fuzzy classifier, slide the AF
//!   detector over the beat stream and transmit periodic event
//!   summaries (plus immediate payloads when an AF episode starts).

use crate::level::ProcessingLevel;
use crate::payload::Payload;
use crate::{CoreError, Result};
use wbsn_classify::af::{AfBeat, AfConfig, AfDetector};
use wbsn_classify::features::{BeatFeatureExtractor, FeatureConfig};
use wbsn_classify::fuzzy::FuzzyClassifier;
use wbsn_cs::encoder::CsEncoder;
use wbsn_cs::measurements_for_cr;
use wbsn_delineation::realtime::{StreamingConfig, StreamingDelineator};
use wbsn_delineation::BeatFiducials;
use wbsn_ecg_synth::Record;
use wbsn_sigproc::combine::RmsCombiner;

/// Node configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Sampling rate per lead, Hz.
    pub fs_hz: u32,
    /// Number of ECG leads.
    pub n_leads: usize,
    /// Processing level.
    pub level: ProcessingLevel,
    /// CS window length (samples).
    pub cs_window: usize,
    /// CS compression ratio in percent.
    pub cs_cr_percent: f64,
    /// CS sensing-matrix column density.
    pub cs_d_per_col: usize,
    /// Shared matrix seed.
    pub seed: u64,
    /// Beats per transmitted `Beats` payload.
    pub beats_per_payload: usize,
    /// Seconds between `Events` payloads at the classified level.
    pub event_interval_s: f64,
    /// Optional trained beat classifier (classified level). When
    /// absent, beats are counted as class 0.
    pub classifier: Option<FuzzyClassifier>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            fs_hz: 250,
            n_leads: 3,
            level: ProcessingLevel::Delineated,
            cs_window: 512,
            cs_cr_percent: 65.9,
            cs_d_per_col: 4,
            seed: 0xCAFE,
            beats_per_payload: 8,
            event_interval_s: 10.0,
            classifier: None,
        }
    }
}

/// Per-stage activity counters accumulated while processing; the raw
/// material of the energy report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityCounters {
    /// Samples acquired (per-lead samples summed).
    pub samples_in: u64,
    /// Seconds of signal processed.
    pub seconds: f64,
    /// Payload bytes produced.
    pub payload_bytes: u64,
    /// Payloads produced (radio bursts).
    pub payloads: u64,
    /// CS windows encoded.
    pub cs_windows: u64,
    /// Integer additions spent in CS encoding.
    pub cs_adds: u64,
    /// Beats delineated.
    pub beats: u64,
    /// Beats classified.
    pub classified_beats: u64,
    /// AF windows evaluated.
    pub af_windows: u64,
}

/// The streaming engine.
#[derive(Debug)]
pub struct CardiacMonitor {
    cfg: MonitorConfig,
    // Compressed path.
    encoders: Vec<CsEncoder>,
    lead_buffers: Vec<Vec<i32>>,
    window_seq: u32,
    // Delineation path.
    combiner: RmsCombiner,
    delineator: StreamingDelineator,
    beat_queue: Vec<BeatFiducials>,
    // Classification path.
    features: BeatFeatureExtractor,
    af: AfDetector,
    af_beats: Vec<AfBeat>,
    combined_ring: Vec<i32>,
    n_pushed: usize,
    last_beat_r: Option<usize>,
    af_active: bool,
    event_class_counts: [u32; 4],
    event_beats: u32,
    event_rr_sum_s: f64,
    last_event_at: f64,
    // Raw path.
    raw_buffers: Vec<Vec<i16>>,
    counters: ActivityCounters,
}

impl CardiacMonitor {
    /// Builds the node.
    ///
    /// # Errors
    ///
    /// Fails when the configuration is inconsistent (zero leads,
    /// non-dyadic CS window, …).
    pub fn new(cfg: MonitorConfig) -> Result<Self> {
        if cfg.n_leads == 0 {
            return Err(CoreError::InvalidParameter {
                what: "n_leads",
                detail: "must be at least 1".into(),
            });
        }
        let m = measurements_for_cr(cfg.cs_window, cfg.cs_cr_percent);
        let encoders = (0..cfg.n_leads)
            .map(|l| {
                CsEncoder::new(
                    cfg.cs_window,
                    m,
                    cfg.cs_d_per_col,
                    cfg.seed.wrapping_add(l as u64),
                )
            })
            .collect::<core::result::Result<Vec<_>, _>>()
            .map_err(|e| CoreError::Component {
                which: "cs encoder",
                detail: e.to_string(),
            })?;
        let combiner = RmsCombiner::new(cfg.n_leads).map_err(|e| CoreError::Component {
            which: "rms combiner",
            detail: e.to_string(),
        })?;
        let delineator = StreamingDelineator::new(StreamingConfig {
            fs_hz: cfg.fs_hz,
            ..StreamingConfig::default()
        })
        .map_err(|e| CoreError::Component {
            which: "delineator",
            detail: e.to_string(),
        })?;
        let features = BeatFeatureExtractor::new(FeatureConfig {
            fs_hz: cfg.fs_hz,
            ..FeatureConfig::default()
        })
        .map_err(|e| CoreError::Component {
            which: "feature extractor",
            detail: e.to_string(),
        })?;
        let af = AfDetector::new(AfConfig {
            fs_hz: cfg.fs_hz,
            ..AfConfig::default()
        })
        .map_err(|e| CoreError::Component {
            which: "af detector",
            detail: e.to_string(),
        })?;
        let ring_len = (cfg.fs_hz as usize) * 3;
        Ok(CardiacMonitor {
            lead_buffers: vec![Vec::with_capacity(cfg.cs_window); cfg.n_leads],
            raw_buffers: vec![Vec::with_capacity(cfg.fs_hz as usize); cfg.n_leads],
            encoders,
            window_seq: 0,
            combiner,
            delineator,
            beat_queue: Vec::new(),
            features,
            af,
            af_beats: Vec::new(),
            combined_ring: vec![0; ring_len],
            n_pushed: 0,
            last_beat_r: None,
            af_active: false,
            event_class_counts: [0; 4],
            event_beats: 0,
            event_rr_sum_s: 0.0,
            last_event_at: 0.0,
            cfg,
            counters: ActivityCounters::default(),
        })
    }

    /// Configuration in use.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Activity counters accumulated so far.
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Pushes one simultaneous sample per lead; returns any payloads
    /// that became ready.
    ///
    /// # Panics
    ///
    /// Panics when `samples.len() != n_leads`.
    pub fn push(&mut self, samples: &[i32]) -> Vec<Payload> {
        assert_eq!(samples.len(), self.cfg.n_leads, "lead count");
        self.counters.samples_in += samples.len() as u64;
        self.counters.seconds = self.n_pushed as f64 / self.cfg.fs_hz as f64;
        let mut out = Vec::new();
        match self.cfg.level {
            ProcessingLevel::RawStreaming => self.push_raw(samples, &mut out),
            ProcessingLevel::CompressedSingleLead | ProcessingLevel::CompressedMultiLead => {
                self.push_compressed(samples, &mut out)
            }
            ProcessingLevel::Delineated => self.push_delineated(samples, &mut out),
            ProcessingLevel::Classified => self.push_classified(samples, &mut out),
        }
        self.n_pushed += 1;
        for p in &out {
            self.counters.payload_bytes += p.byte_len() as u64;
            self.counters.payloads += 1;
        }
        out
    }

    /// Convenience: processes an entire synthetic record.
    pub fn process_record(&mut self, record: &Record) -> Vec<Payload> {
        let n = record.n_samples();
        let mut payloads = Vec::new();
        let mut frame = vec![0i32; self.cfg.n_leads];
        for i in 0..n {
            for (l, f) in frame.iter_mut().enumerate() {
                *f = record.lead(l.min(record.n_leads() - 1))[i];
            }
            payloads.extend(self.push(&frame));
        }
        payloads.extend(self.flush());
        payloads
    }

    /// Flushes any buffered partial state (end of session).
    pub fn flush(&mut self) -> Vec<Payload> {
        let mut out = Vec::new();
        match self.cfg.level {
            ProcessingLevel::RawStreaming => {
                for lead in 0..self.cfg.n_leads {
                    if !self.raw_buffers[lead].is_empty() {
                        let samples = core::mem::take(&mut self.raw_buffers[lead]);
                        out.push(Payload::RawChunk {
                            lead: lead as u8,
                            samples,
                        });
                    }
                }
            }
            ProcessingLevel::Delineated => {
                let tail = self.delineator.flush();
                self.counters.beats += tail.len() as u64;
                self.beat_queue.extend(tail);
                if !self.beat_queue.is_empty() {
                    out.push(Payload::Beats {
                        beats: core::mem::take(&mut self.beat_queue),
                    });
                }
            }
            ProcessingLevel::Classified => {
                let tail = self.delineator.flush();
                for b in tail {
                    self.handle_classified_beat(b);
                }
                out.push(self.emit_events());
            }
            _ => {}
        }
        for p in &out {
            self.counters.payload_bytes += p.byte_len() as u64;
            self.counters.payloads += 1;
        }
        out
    }

    fn push_raw(&mut self, samples: &[i32], out: &mut Vec<Payload>) {
        let chunk = self.cfg.fs_hz as usize; // 1 s chunks
        for (lead, &s) in samples.iter().enumerate() {
            self.raw_buffers[lead].push(s.clamp(-2048, 2047) as i16);
            if self.raw_buffers[lead].len() >= chunk {
                let samples = core::mem::take(&mut self.raw_buffers[lead]);
                out.push(Payload::RawChunk {
                    lead: lead as u8,
                    samples,
                });
            }
        }
    }

    fn push_compressed(&mut self, samples: &[i32], out: &mut Vec<Payload>) {
        for (lead, &s) in samples.iter().enumerate() {
            self.lead_buffers[lead].push(s);
        }
        if self.lead_buffers[0].len() >= self.cfg.cs_window {
            for lead in 0..self.cfg.n_leads {
                let window: Vec<i32> = self.lead_buffers[lead].drain(..).collect();
                let y = self.encoders[lead]
                    .encode(&window)
                    .expect("window length enforced by construction");
                self.counters.cs_windows += 1;
                self.counters.cs_adds += self.encoders[lead].adds_per_window() as u64;
                out.push(Payload::CsWindow {
                    lead: lead as u8,
                    window_seq: self.window_seq,
                    measurements: y
                        .iter()
                        .map(|&v| v.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
                        .collect(),
                });
            }
            self.window_seq += 1;
        }
    }

    fn combined_push(&mut self, samples: &[i32]) -> i32 {
        let combined = self.combiner.push(samples);
        let ring_len = self.combined_ring.len();
        self.combined_ring[self.n_pushed % ring_len] = combined;
        combined
    }

    fn push_delineated(&mut self, samples: &[i32], out: &mut Vec<Payload>) {
        let combined = self.combined_push(samples);
        if let Some(beat) = self.delineator.push(combined) {
            self.counters.beats += 1;
            self.beat_queue.push(beat);
            if self.beat_queue.len() >= self.cfg.beats_per_payload {
                out.push(Payload::Beats {
                    beats: core::mem::take(&mut self.beat_queue),
                });
            }
        }
    }

    fn push_classified(&mut self, samples: &[i32], out: &mut Vec<Payload>) {
        let combined = self.combined_push(samples);
        if let Some(beat) = self.delineator.push(combined) {
            self.counters.beats += 1;
            let af_started = self.handle_classified_beat(beat);
            if af_started {
                out.push(self.emit_events());
            }
        }
        let t = self.n_pushed as f64 / self.cfg.fs_hz as f64;
        if t - self.last_event_at >= self.cfg.event_interval_s && self.event_beats > 0 {
            out.push(self.emit_events());
        }
    }

    /// Classifies one beat, updates AF tracking; returns true when an
    /// AF episode just started (alert condition).
    fn handle_classified_beat(&mut self, beat: BeatFiducials) -> bool {
        // Classify from the combined-signal ring.
        let ring_len = self.combined_ring.len();
        let r = beat.r_peak;
        let class = if let Some(clf) = &self.cfg.classifier {
            let fc = self.features.config();
            let oldest = self.n_pushed.saturating_sub(ring_len);
            if r >= fc.pre_samples + oldest && r + fc.post_samples <= self.n_pushed {
                // Materialize the window from the ring.
                let lo = r - fc.pre_samples;
                let hi = r + fc.post_samples;
                let window: Vec<i32> =
                    (lo..hi).map(|i| self.combined_ring[i % ring_len]).collect();
                let rr_prev = self
                    .last_beat_r
                    .map(|p| r.saturating_sub(p))
                    .unwrap_or((0.8 * self.cfg.fs_hz as f64) as usize);
                // Streaming node has no rr_next yet; reuse rr_prev.
                let fe = BeatFeatureExtractor::new(FeatureConfig {
                    pre_samples: 0,
                    post_samples: window.len(),
                    ..*fc
                });
                let _ = fe; // window already materialized; extract directly
                self.counters.classified_beats += 1;
                self.features
                    .extract(&window, fc.pre_samples, rr_prev, rr_prev)
                    .map(|f| clf.predict(&f))
                    .unwrap_or(0)
            } else {
                0
            }
        } else {
            0
        };
        self.event_class_counts[class.min(3)] += 1;
        self.event_beats += 1;
        if let Some(prev) = self.last_beat_r {
            if r > prev {
                self.event_rr_sum_s += (r - prev) as f64 / self.cfg.fs_hz as f64;
            }
        }
        self.last_beat_r = Some(r);
        // AF tracking.
        self.af_beats.push(AfBeat {
            r_sample: r,
            has_p: beat.has_p(),
        });
        if self.af_beats.len() > 512 {
            self.af_beats.drain(..256);
        }
        let windows = self.af.analyze(&self.af_beats);
        self.counters.af_windows = windows.len() as u64;
        let now_active = windows.last().map(|w| w.is_af).unwrap_or(false);
        let started = now_active && !self.af_active;
        self.af_active = now_active;
        started
    }

    fn emit_events(&mut self) -> Payload {
        let n = self.event_beats.max(1);
        let mean_rr = self.event_rr_sum_s / n as f64;
        let mean_hr_x10 = if mean_rr > 0.0 {
            (600.0 / mean_rr) as u16
        } else {
            0
        };
        let windows = self.af.analyze(&self.af_beats);
        let burden = AfDetector::af_burden(&windows);
        let p = Payload::Events {
            n_beats: self.event_beats,
            class_counts: self.event_class_counts,
            mean_hr_x10,
            af_burden_pct: (burden * 100.0) as u8,
            af_active: self.af_active,
        };
        self.event_class_counts = [0; 4];
        self.event_beats = 0;
        self.event_rr_sum_s = 0.0;
        self.last_event_at = self.n_pushed as f64 / self.cfg.fs_hz as f64;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_ecg_synth::noise::NoiseConfig;
    use wbsn_ecg_synth::{RecordBuilder, Rhythm};

    fn record(seed: u64, secs: f64) -> Record {
        RecordBuilder::new(seed)
            .duration_s(secs)
            .n_leads(3)
            .noise(NoiseConfig::ambulatory(22.0))
            .build()
    }

    fn run_level(level: ProcessingLevel, secs: f64) -> (Vec<Payload>, ActivityCounters) {
        let rec = record(42, secs);
        let mut m = CardiacMonitor::new(MonitorConfig {
            level,
            ..MonitorConfig::default()
        })
        .unwrap();
        let p = m.process_record(&rec);
        (p, *m.counters())
    }

    #[test]
    fn raw_streaming_emits_all_samples() {
        let (payloads, c) = run_level(ProcessingLevel::RawStreaming, 5.0);
        let total: usize = payloads
            .iter()
            .map(|p| match p {
                Payload::RawChunk { samples, .. } => samples.len(),
                _ => panic!("unexpected payload"),
            })
            .sum();
        assert_eq!(total, 3 * 1250);
        assert!(c.payload_bytes > 5000);
    }

    #[test]
    fn compressed_emits_windows_with_fewer_bytes_than_raw() {
        let (raw, _) = run_level(ProcessingLevel::RawStreaming, 10.0);
        let (cs, c) = run_level(ProcessingLevel::CompressedSingleLead, 10.0);
        let raw_bytes: usize = raw.iter().map(Payload::byte_len).sum();
        let cs_bytes: usize = cs.iter().map(Payload::byte_len).sum();
        assert!(
            (cs_bytes as f64) < 0.55 * raw_bytes as f64,
            "cs {cs_bytes} raw {raw_bytes}"
        );
        assert!(c.cs_windows >= 12, "windows {}", c.cs_windows);
        assert!(c.cs_adds > 0);
    }

    #[test]
    fn delineated_emits_beats() {
        let (payloads, c) = run_level(ProcessingLevel::Delineated, 20.0);
        let beats: usize = payloads
            .iter()
            .map(|p| match p {
                Payload::Beats { beats } => beats.len(),
                _ => 0,
            })
            .sum();
        // ~23 beats at 70 bpm in 20 s minus warm-up.
        assert!(beats >= 15, "beats {beats}");
        assert_eq!(c.beats as usize, beats);
        // Far fewer bytes than compressed.
        assert!(c.payload_bytes < 1000, "bytes {}", c.payload_bytes);
    }

    #[test]
    fn classified_emits_event_summaries() {
        let (payloads, c) = run_level(ProcessingLevel::Classified, 30.0);
        let events: Vec<_> = payloads
            .iter()
            .filter_map(|p| match p {
                Payload::Events { n_beats, .. } => Some(*n_beats),
                _ => None,
            })
            .collect();
        assert!(!events.is_empty());
        let total_beats: u32 = events.iter().sum();
        assert!(total_beats >= 20, "beats {total_beats}");
        assert!(c.payload_bytes < 200, "bytes {}", c.payload_bytes);
    }

    #[test]
    fn bytes_decrease_with_abstraction_level() {
        let mut last = u64::MAX;
        for level in [
            ProcessingLevel::RawStreaming,
            ProcessingLevel::CompressedSingleLead,
            ProcessingLevel::Delineated,
            ProcessingLevel::Classified,
        ] {
            let (_, c) = run_level(level, 20.0);
            assert!(
                c.payload_bytes < last,
                "{level}: {} not below {last}",
                c.payload_bytes
            );
            last = c.payload_bytes;
        }
    }

    #[test]
    fn af_alert_fires_on_af_record() {
        let rec = RecordBuilder::new(7)
            .duration_s(60.0)
            .n_leads(3)
            .rhythm(Rhythm::AtrialFibrillation { mean_hr_bpm: 95.0 })
            .noise(NoiseConfig::ambulatory(20.0))
            .build();
        let mut m = CardiacMonitor::new(MonitorConfig {
            level: ProcessingLevel::Classified,
            ..MonitorConfig::default()
        })
        .unwrap();
        let payloads = m.process_record(&rec);
        let af_seen = payloads.iter().any(|p| match p {
            Payload::Events {
                af_active,
                af_burden_pct,
                ..
            } => *af_active || *af_burden_pct > 50,
            _ => false,
        });
        assert!(af_seen, "AF should be reported");
    }

    #[test]
    fn classifier_is_used_when_provided() {
        use wbsn_classify::fuzzy::MembershipMode;
        // Trivial 2-class classifier (features all near zero -> class 0).
        let dims = BeatFeatureExtractor::new(FeatureConfig::default())
            .unwrap()
            .dims();
        let xs: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![if i < 4 { 0.0 } else { 5.0 }; dims])
            .collect();
        let ys = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let clf = FuzzyClassifier::train(&xs, &ys, MembershipMode::PiecewiseLinear).unwrap();
        let rec = record(9, 20.0);
        let mut m = CardiacMonitor::new(MonitorConfig {
            level: ProcessingLevel::Classified,
            classifier: Some(clf),
            ..MonitorConfig::default()
        })
        .unwrap();
        let _ = m.process_record(&rec);
        assert!(m.counters().classified_beats > 10);
    }

    #[test]
    fn rejects_zero_leads() {
        assert!(CardiacMonitor::new(MonitorConfig {
            n_leads: 0,
            ..MonitorConfig::default()
        })
        .is_err());
    }

    #[test]
    fn counters_track_seconds() {
        let (_, c) = run_level(ProcessingLevel::Delineated, 10.0);
        assert!((c.seconds - 10.0).abs() < 0.1, "seconds {}", c.seconds);
        assert_eq!(c.samples_in, 3 * 2500);
    }
}
