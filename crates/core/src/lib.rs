//! # wbsn-core
//!
//! The integrated ultra-low-power wearable cardiac monitoring node —
//! the system-level architecture the DAC'14 paper presents.
//!
//! The central idea (Figure 1 of the paper): **on-node digital signal
//! processing raises the abstraction level of the transmitted data and
//! thereby shrinks the energy-dominant radio traffic.** A node can
//! stream raw samples, stream compressively-sensed windows, transmit
//! delineated fiducial points, or transmit only classified events —
//! each step trades MCU cycles for (much more expensive) radio bytes.
//!
//! * [`level`] — the abstraction ladder ([`ProcessingLevel`]).
//! * [`payload`] — the on-air payload formats with exact byte costs.
//! * [`monitor`] — [`CardiacMonitor`]: the streaming engine that runs
//!   the configured pipeline (morphological filtering, RMS lead
//!   combination, QRS detection + wavelet delineation, random-
//!   projection fuzzy classification, AF detection, CS encoding) and
//!   emits payloads.
//! * [`energy`] — per-stage cycle accounting composed with the
//!   `wbsn-platform` node model into Figure 6-style breakdowns and
//!   battery lifetimes.
//! * [`apps`] — the application layer the paper motivates: arrhythmia
//!   /AF monitoring, sleep/HRV analysis, and PAT-based blood-pressure
//!   trending.
//!
//! ## Quickstart
//!
//! ```
//! use wbsn_core::monitor::{CardiacMonitor, MonitorConfig};
//! use wbsn_core::level::ProcessingLevel;
//! use wbsn_ecg_synth::RecordBuilder;
//!
//! let record = RecordBuilder::new(1).duration_s(12.0).n_leads(3).build();
//! let cfg = MonitorConfig {
//!     level: ProcessingLevel::Delineated,
//!     ..MonitorConfig::default()
//! };
//! let mut node = CardiacMonitor::new(cfg).unwrap();
//! let payloads = node.process_record(&record);
//! assert!(!payloads.is_empty());
//! let report = node.energy_report();
//! assert!(report.breakdown.avg_power_mw() < 5.0);
//! ```

pub mod apps;
pub mod energy;
pub mod level;
pub mod monitor;
pub mod payload;

pub use energy::EnergyReport;
pub use level::ProcessingLevel;
pub use monitor::{CardiacMonitor, MonitorConfig};
pub use payload::Payload;

/// Errors from node configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Parameter outside its valid range.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Explanation.
        detail: String,
    },
    /// A substrate component rejected its configuration.
    Component {
        /// Which component.
        which: &'static str,
        /// Underlying message.
        detail: String,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::InvalidParameter { what, detail } => {
                write!(f, "invalid parameter {what}: {detail}")
            }
            CoreError::Component { which, detail } => {
                write!(f, "component {which} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, CoreError>;
