//! # wbsn-core
//!
//! The integrated ultra-low-power wearable cardiac monitoring node —
//! the system-level architecture the DAC'14 paper presents — rebuilt
//! as a **session-oriented pipeline**.
//!
//! The central idea (Figure 1 of the paper): **on-node digital signal
//! processing raises the abstraction level of the transmitted data and
//! thereby shrinks the energy-dominant radio traffic.** A node can
//! stream raw samples, stream compressively-sensed windows, transmit
//! delineated fiducial points, or transmit only classified events —
//! each step trades MCU cycles for (much more expensive) radio bytes.
//!
//! ## Architecture
//!
//! * [`level`] — the abstraction ladder ([`ProcessingLevel`]).
//! * [`stage`] — the composable pipeline API: the [`PipelineStage`]
//!   trait ([`stage::RawForwarder`], [`stage::CsStage`],
//!   [`stage::DelineationStage`], [`stage::ClassifyStage`]) and the
//!   [`stage::PayloadSink`] payloads flow into. New workloads plug in
//!   by implementing the trait — the engine never changes.
//! * [`monitor`] — [`CardiacMonitor`]: one monitoring *session*. Built
//!   with the validating [`MonitorBuilder`], fed through the fallible
//!   [`CardiacMonitor::try_push`] or the batched
//!   [`CardiacMonitor::push_block`] hot path.
//! * [`fleet`] — the server-side serving layer, split into three
//!   explicit pieces: a [`fleet::Shard`] (single-threaded group of
//!   sessions), the [`fleet::ShardRouter`] (stable `SessionId → shard`
//!   placement), and two drivers — the sequential [`fleet::NodeFleet`]
//!   and the multi-threaded [`fleet::ShardedFleet`], which produce
//!   byte-identical results for the same input.
//! * [`payload`] — the on-air payload formats with exact byte costs.
//! * [`energy`] — per-stage cycle accounting composed with the
//!   `wbsn-platform` node model into Figure 6-style breakdowns and
//!   battery lifetimes, plus per-mode workload prediction for the
//!   governor.
//! * [`governor`] — the closed-loop power governor: a deterministic
//!   per-session controller that re-selects the [`OperatingMode`]
//!   (processing level + powered leads) at runtime from rhythm state,
//!   battery state-of-charge and a radio budget, applied through
//!   [`CardiacMonitor::switch_mode`] live level switching.
//! * [`apps`] — the application layer the paper motivates: arrhythmia
//!   /AF monitoring, sleep/HRV analysis, and PAT-based blood-pressure
//!   trending.
//!
//! ## Quickstart
//!
//! ```
//! use wbsn_core::monitor::MonitorBuilder;
//! use wbsn_core::level::ProcessingLevel;
//! use wbsn_ecg_synth::RecordBuilder;
//!
//! let record = RecordBuilder::new(1).duration_s(12.0).n_leads(3).build();
//! let mut node = MonitorBuilder::new()
//!     .level(ProcessingLevel::Delineated)
//!     .n_leads(3)
//!     .build()
//!     .unwrap();
//! let payloads = node.process_record(&record).unwrap();
//! assert!(!payloads.is_empty());
//! let report = node.energy_report();
//! assert!(report.breakdown.avg_power_mw() < 5.0);
//! ```
//!
//! ## Serving many sessions
//!
//! ```
//! use wbsn_core::fleet::NodeFleet;
//! use wbsn_core::monitor::MonitorBuilder;
//!
//! let mut fleet = NodeFleet::new();
//! let ids: Vec<_> = (0..16)
//!     .map(|_| fleet.add_session(MonitorBuilder::new()).unwrap())
//!     .collect();
//! for &id in &ids {
//!     let frame = [0i32, 0, 0];
//!     fleet.push_frame(id, &frame).unwrap();
//! }
//! assert_eq!(fleet.len(), 16);
//! assert_eq!(fleet.aggregate_counters().samples_in, 16 * 3);
//! ```

// Every public item carries documentation; rustdoc runs with
// `-D warnings` in CI, so a gap fails the build.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod energy;
pub mod fleet;
pub mod governor;
pub mod level;
pub mod link;
pub mod monitor;
pub mod payload;
pub mod retransmit;
pub mod stage;

pub use energy::EnergyReport;
pub use fleet::{FleetEnergyReport, NodeFleet, SessionId, Shard, ShardRouter, ShardedFleet};
pub use governor::{GovernedMonitor, GovernorConfig, PowerGovernor};
pub use level::{OperatingMode, ProcessingLevel};
pub use link::{
    DirectiveAction, DirectiveFrame, DownlinkFrame, LinkError, LinkFramer, LinkPacket,
    SessionHandshake, Uplink,
};
pub use monitor::{CardiacMonitor, MonitorBuilder, MonitorConfig};
pub use payload::Payload;
pub use retransmit::{DirectiveHandler, RetransmitBuffer, RetransmitConfig, RetransmitEvent};
pub use stage::{ActivityCounters, PayloadSink, PipelineStage};

use wbsn_classify::ClassifyError;
use wbsn_cs::CsError;
use wbsn_delineation::DelineationError;
use wbsn_multimodal::MultimodalError;
use wbsn_platform::PlatformError;
use wbsn_sigproc::SigprocError;

/// Unified error for the node pipeline and the fleet layer.
///
/// Sub-crate errors convert losslessly via `From`, so `?` works across
/// crate boundaries without stringifying.
#[derive(Debug, Clone, PartialEq)]
pub enum WbsnError {
    /// Parameter outside its valid range.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Explanation.
        detail: String,
    },
    /// A frame or record carried a different lead count than the
    /// session was configured for.
    LeadMismatch {
        /// Leads the session expects.
        expected: usize,
        /// Leads the caller provided.
        got: usize,
    },
    /// A fleet operation referenced a session id that is not (or no
    /// longer) registered.
    UnknownSession {
        /// The offending id.
        id: u64,
    },
    /// A [`fleet::ShardedFleet`] worker thread is unreachable — it
    /// failed to spawn or terminated unexpectedly (panic), so its
    /// shard's sessions can no longer be served.
    WorkerLost {
        /// Index of the unreachable shard.
        shard: usize,
    },
    /// Decoding ran out of bytes: the input is shorter than its own
    /// header/length fields claim. The receiver can distinguish a cut
    /// transfer from a corrupted one ([`WbsnError::Malformed`]).
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it got.
        got: usize,
    },
    /// Decoding met structurally invalid input (unknown tag,
    /// inconsistent fields) — the bytes can never become a valid value
    /// no matter how many more arrive.
    Malformed {
        /// What was being decoded.
        what: &'static str,
        /// Explanation.
        detail: String,
    },
    /// The peer announced a wire-protocol version this build does not
    /// speak (see [`link::PROTOCOL_VERSION`]). Negotiation is the
    /// receiver's job: the session is rejected before any state is
    /// created, never half-decoded.
    UnsupportedVersion {
        /// Version the peer announced.
        got: u8,
        /// Highest version this build supports.
        supported: u8,
    },
    /// Link-layer error: packet framing, CRC or reassembly (see
    /// [`link::LinkError`]).
    Link(link::LinkError),
    /// DSP substrate error.
    Sigproc(SigprocError),
    /// Compressed-sensing error.
    Cs(CsError),
    /// Delineation error.
    Delineation(DelineationError),
    /// Classification error.
    Classify(ClassifyError),
    /// Multi-modal estimation error.
    Multimodal(MultimodalError),
    /// Platform-model error.
    Platform(PlatformError),
}

impl core::fmt::Display for WbsnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WbsnError::InvalidParameter { what, detail } => {
                write!(f, "invalid parameter {what}: {detail}")
            }
            WbsnError::LeadMismatch { expected, got } => {
                write!(
                    f,
                    "lead mismatch: session expects {expected} leads, got {got}"
                )
            }
            WbsnError::UnknownSession { id } => write!(f, "unknown session id {id}"),
            WbsnError::WorkerLost { shard } => {
                write!(f, "fleet shard worker {shard} is unreachable")
            }
            WbsnError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: needed {needed} bytes, got {got}")
            }
            WbsnError::Malformed { what, detail } => {
                write!(f, "malformed {what}: {detail}")
            }
            WbsnError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks up to {supported})"
                )
            }
            WbsnError::Link(e) => write!(f, "link: {e}"),
            WbsnError::Sigproc(e) => write!(f, "sigproc: {e}"),
            WbsnError::Cs(e) => write!(f, "cs: {e}"),
            WbsnError::Delineation(e) => write!(f, "delineation: {e}"),
            WbsnError::Classify(e) => write!(f, "classify: {e}"),
            WbsnError::Multimodal(e) => write!(f, "multimodal: {e}"),
            WbsnError::Platform(e) => write!(f, "platform: {e}"),
        }
    }
}

impl std::error::Error for WbsnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WbsnError::Sigproc(e) => Some(e),
            WbsnError::Cs(e) => Some(e),
            WbsnError::Delineation(e) => Some(e),
            WbsnError::Classify(e) => Some(e),
            WbsnError::Multimodal(e) => Some(e),
            WbsnError::Platform(e) => Some(e),
            WbsnError::Link(e) => Some(e),
            _ => None,
        }
    }
}

impl From<link::LinkError> for WbsnError {
    fn from(e: link::LinkError) -> Self {
        WbsnError::Link(e)
    }
}

macro_rules! from_sub_error {
    ($($sub:ty => $variant:ident),+ $(,)?) => {
        $(
            impl From<$sub> for WbsnError {
                fn from(e: $sub) -> Self {
                    WbsnError::$variant(e)
                }
            }
        )+
    };
}

from_sub_error!(
    SigprocError => Sigproc,
    CsError => Cs,
    DelineationError => Delineation,
    ClassifyError => Classify,
    MultimodalError => Multimodal,
    PlatformError => Platform,
);

/// Transitional alias: earlier releases exposed the error as
/// `CoreError` with a stringly-typed `Component` variant.
#[deprecated(since = "0.2.0", note = "use WbsnError")]
pub type CoreError = WbsnError;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, WbsnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_errors_convert_without_stringifying() {
        let e = SigprocError::InvalidLength {
            what: "n_leads",
            got: 0,
        };
        let w: WbsnError = e.clone().into();
        assert_eq!(w, WbsnError::Sigproc(e));
        assert!(w.to_string().contains("n_leads"));
    }

    #[test]
    fn lead_mismatch_is_descriptive() {
        let e = WbsnError::LeadMismatch {
            expected: 3,
            got: 1,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1'), "{s}");
    }

    #[test]
    fn source_chains_to_sub_error() {
        use std::error::Error;
        let w = WbsnError::from(CsError::InvalidParameter {
            what: "m",
            detail: "zero".into(),
        });
        assert!(w.source().is_some());
        assert!(WbsnError::UnknownSession { id: 9 }.source().is_none());
    }
}
