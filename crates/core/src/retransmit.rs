//! Node-side loss recovery: the bounded retransmit buffer and the
//! directive handler that close the gateway's downlink loop.
//!
//! The uplink is fire-and-forget at the radio layer; reliability is
//! added end to end. Every framed message is recorded in a
//! [`RetransmitBuffer`] keyed by its `msg_seq`; the gateway's
//! cumulative-ACK/selective-NACK frames ([`DownlinkFrame`]) release
//! or resend entries, and a logical epoch clock drives ack-timeout
//! resends with doubling backoff. The buffer is **byte- and
//! message-capped**: under sustained loss the oldest entries are
//! evicted with a typed [`RetransmitEvent::Expired`], so degradation
//! is always visible — a window the node gave up on is an event, not
//! a silent hole.
//!
//! Everything here is deterministic by construction: no wall clocks,
//! no randomness — `epoch` advances only when the caller calls
//! [`RetransmitBuffer::tick`], so identically-scripted runs replay
//! bit-identically (the workspace's `wbsn-analyze` no-wallclock gate
//! covers this module).
//!
//! [`DirectiveHandler`] is the companion for the third downlink kind:
//! it orders [`DirectiveFrame`]s per session (latest wins, stale
//! duplicates dropped) so the caller can map each accepted
//! [`DirectiveAction`] onto the existing
//! [`CardiacMonitor::switch_mode`](crate::CardiacMonitor::switch_mode)
//! / [`CardiacMonitor::switch_cs_cr`](crate::CardiacMonitor::switch_cs_cr)
//! / [`Uplink::set_mtu`](crate::link::Uplink::set_mtu) plumbing at a
//! deterministic stream boundary.

use crate::link::{DirectiveAction, DirectiveFrame, DownlinkFrame};
use crate::{Result, WbsnError};
use std::collections::BTreeMap;

/// Bounds and timing of a [`RetransmitBuffer`]. All times are logical
/// epochs (one [`RetransmitBuffer::tick`] = one epoch), never wall
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Most messages buffered at once; the oldest is evicted (with an
    /// [`RetransmitEvent::Expired`]) when a new record would exceed
    /// it.
    pub max_messages: usize,
    /// Most buffered wire bytes at once (same eviction discipline).
    pub max_bytes: usize,
    /// Epochs to wait for an ACK before the first unsolicited resend.
    pub ack_timeout_epochs: u64,
    /// Backoff doubles after every timeout resend up to this cap.
    pub max_backoff_epochs: u64,
    /// Resends (NACK- or timeout-driven) before a message expires.
    pub max_retries: u32,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            max_messages: 64,
            max_bytes: 16 * 1024,
            ack_timeout_epochs: 2,
            max_backoff_epochs: 8,
            max_retries: 4,
        }
    }
}

impl RetransmitConfig {
    /// Validates the bounds.
    ///
    /// # Errors
    ///
    /// [`WbsnError::InvalidParameter`] for zero caps, timeouts or
    /// retry budgets, or a backoff cap below the initial timeout.
    pub fn validate(&self) -> Result<()> {
        if self.max_messages == 0 || self.max_bytes == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "retransmit caps",
                detail: format!(
                    "max_messages {} / max_bytes {} must be nonzero",
                    self.max_messages, self.max_bytes
                ),
            });
        }
        if self.ack_timeout_epochs == 0 || self.max_retries == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "retransmit timing",
                detail: format!(
                    "ack_timeout_epochs {} / max_retries {} must be nonzero",
                    self.ack_timeout_epochs, self.max_retries
                ),
            });
        }
        if self.max_backoff_epochs < self.ack_timeout_epochs {
            return Err(WbsnError::InvalidParameter {
                what: "max_backoff_epochs",
                detail: format!(
                    "{} is below the initial timeout {}",
                    self.max_backoff_epochs, self.ack_timeout_epochs
                ),
            });
        }
        Ok(())
    }
}

/// Something observable happened to a buffered message. Expiry is the
/// graceful-degradation path: the node sheds its oldest unacked
/// traffic under sustained loss instead of buffering without bound —
/// and says so.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetransmitEvent {
    /// A message left the buffer unacknowledged — evicted by the
    /// byte/message caps or out of retries. It will never be resent.
    Expired {
        /// The abandoned message.
        msg_seq: u32,
        /// Wire bytes it held.
        bytes: usize,
        /// Resends it had consumed.
        retries: u32,
    },
    /// The gateway NACKed a message that is no longer buffered (it
    /// expired earlier, or predates this buffer). The gap is
    /// permanent on this side.
    Unavailable {
        /// The requested message.
        msg_seq: u32,
    },
}

/// Lifetime counters of a [`RetransmitBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetransmitStats {
    /// Messages recorded.
    pub recorded: u64,
    /// Messages released by cumulative ACK.
    pub acked: u64,
    /// Packets resent (NACK- and timeout-driven).
    pub resent_packets: u64,
    /// Wire bytes resent.
    pub resent_bytes: u64,
    /// Messages expired (evicted or out of retries).
    pub expired: u64,
    /// NACKed messages that were no longer buffered.
    pub unavailable: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    packets: Vec<Vec<u8>>,
    bytes: usize,
    retries: u32,
    backoff: u64,
    next_due: u64,
}

/// The bounded per-session retransmit buffer: encoded packets of every
/// in-flight message, resent on selective NACK or ack-timeout,
/// released on cumulative ACK, evicted oldest-first at the caps.
///
/// ```
/// use wbsn_core::retransmit::{RetransmitBuffer, RetransmitConfig};
///
/// let mut buf = RetransmitBuffer::new(RetransmitConfig::default()).unwrap();
/// let mut events = Vec::new();
/// buf.record(0, &[vec![0u8; 24]], &mut events);
/// buf.record(1, &[vec![1u8; 24]], &mut events);
/// assert!(events.is_empty());
///
/// // The gateway saw message 1 but not 0: resend 0, keep 1 buffered.
/// let mut resend = Vec::new();
/// buf.on_nack(0, &[0], &mut resend, &mut events);
/// assert_eq!(resend.len(), 1);
///
/// // A later cumulative ACK releases both.
/// buf.on_ack(2);
/// assert_eq!(buf.buffered_messages(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct RetransmitBuffer {
    cfg: RetransmitConfig,
    entries: BTreeMap<u32, Entry>,
    buffered_bytes: usize,
    epoch: u64,
    stats: RetransmitStats,
}

impl RetransmitBuffer {
    /// Empty buffer at epoch 0.
    ///
    /// # Errors
    ///
    /// As [`RetransmitConfig::validate`].
    pub fn new(cfg: RetransmitConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(RetransmitBuffer {
            cfg,
            entries: BTreeMap::new(),
            buffered_bytes: 0,
            epoch: 0,
            stats: RetransmitStats::default(),
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RetransmitConfig {
        &self.cfg
    }

    /// Current logical epoch (ticks since creation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Messages currently buffered.
    pub fn buffered_messages(&self) -> usize {
        self.entries.len()
    }

    /// Wire bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RetransmitStats {
        self.stats
    }

    /// Records a freshly framed message (its encoded packets, as
    /// produced by
    /// [`Uplink::frame_one`](crate::link::Uplink::frame_one)) for
    /// possible retransmission. Evicts oldest entries past the caps,
    /// appending an [`RetransmitEvent::Expired`] per eviction — a
    /// message larger than the whole byte cap expires immediately,
    /// visibly.
    pub fn record(&mut self, msg_seq: u32, packets: &[Vec<u8>], events: &mut Vec<RetransmitEvent>) {
        let bytes: usize = packets.iter().map(Vec::len).sum();
        self.stats.recorded += 1;
        self.entries.insert(
            msg_seq,
            Entry {
                packets: packets.to_vec(),
                bytes,
                retries: 0,
                backoff: self.cfg.ack_timeout_epochs,
                next_due: self.epoch + self.cfg.ack_timeout_epochs,
            },
        );
        self.buffered_bytes += bytes;
        while self.entries.len() > self.cfg.max_messages || self.buffered_bytes > self.cfg.max_bytes
        {
            let Some((&oldest, _)) = self.entries.iter().next() else {
                break;
            };
            self.expire(oldest, events);
        }
    }

    /// Applies a cumulative acknowledgement: every buffered message
    /// with `msg_seq < cum_ack` is released.
    pub fn on_ack(&mut self, cum_ack: u32) {
        let keep = self.entries.split_off(&cum_ack);
        for (_, entry) in std::mem::replace(&mut self.entries, keep) {
            self.buffered_bytes -= entry.bytes;
            self.stats.acked += 1;
        }
    }

    /// Applies a selective NACK: acks cumulatively below `cum_ack`,
    /// then resends each still-buffered `missing` message (appending
    /// its packets to `out`). A missing message that is no longer
    /// buffered yields [`RetransmitEvent::Unavailable`]; one that has
    /// exhausted its retry budget expires instead of resending.
    ///
    /// The `missing` list is also an implicit *selective ACK*: the
    /// gateway enumerates every hole it knows of up to the highest
    /// listed sequence, so any buffered message below that horizon
    /// that is **not** listed has demonstrably been received (it sits
    /// in the gateway's reorder buffer behind the hole). Those
    /// entries are released here — without this, every message parked
    /// behind a stalled cumulative ACK hits its ack-timeout and is
    /// pointlessly resent, which under sustained loss snowballs into
    /// a resend storm precisely when the channel can least afford
    /// one.
    pub fn on_nack(
        &mut self,
        cum_ack: u32,
        missing: &[u32],
        out: &mut Vec<Vec<u8>>,
        events: &mut Vec<RetransmitEvent>,
    ) {
        self.on_ack(cum_ack);
        for &msg_seq in missing {
            if !self.entries.contains_key(&msg_seq) {
                self.stats.unavailable += 1;
                events.push(RetransmitEvent::Unavailable { msg_seq });
                continue;
            }
            self.resend(msg_seq, out, events);
        }
        if let Some(&horizon) = missing.iter().max() {
            let sacked: Vec<u32> = self
                .entries
                .range(..horizon)
                .map(|(&seq, _)| seq)
                .filter(|seq| !missing.contains(seq))
                .collect();
            for seq in sacked {
                if let Some(entry) = self.entries.remove(&seq) {
                    self.buffered_bytes -= entry.bytes;
                    self.stats.acked += 1;
                }
            }
        }
    }

    /// Applies any decoded downlink ACK/NACK frame; returns `true`
    /// when the frame was an ack/nack, `false` for a directive (which
    /// belongs to a [`DirectiveHandler`]).
    pub fn on_frame(
        &mut self,
        frame: &DownlinkFrame,
        out: &mut Vec<Vec<u8>>,
        events: &mut Vec<RetransmitEvent>,
    ) -> bool {
        match frame {
            DownlinkFrame::Ack { cum_ack } => {
                self.on_ack(*cum_ack);
                true
            }
            DownlinkFrame::Nack { cum_ack, missing } => {
                self.on_nack(*cum_ack, missing, out, events);
                true
            }
            DownlinkFrame::Directive(_) => false,
        }
    }

    /// Advances the logical clock one epoch and resends every message
    /// whose ack-timeout elapsed (backoff doubles per resend, capped
    /// at `max_backoff_epochs`; retry exhaustion expires the message).
    pub fn tick(&mut self, out: &mut Vec<Vec<u8>>, events: &mut Vec<RetransmitEvent>) {
        self.epoch += 1;
        let due: Vec<u32> = self
            .entries
            .iter()
            .filter(|(_, e)| e.next_due <= self.epoch)
            .map(|(&seq, _)| seq)
            .collect();
        for msg_seq in due {
            self.resend(msg_seq, out, events);
        }
    }

    /// Drops every buffered message and resets the epoch clock — the
    /// node-reboot path. Nothing is resent afterwards; the gateway's
    /// `register` reset discards its matching NACK state.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.buffered_bytes = 0;
        self.epoch = 0;
    }

    fn resend(&mut self, msg_seq: u32, out: &mut Vec<Vec<u8>>, events: &mut Vec<RetransmitEvent>) {
        let Some(entry) = self.entries.get_mut(&msg_seq) else {
            return;
        };
        if entry.retries >= self.cfg.max_retries {
            self.expire(msg_seq, events);
            return;
        }
        entry.retries += 1;
        entry.backoff = (entry.backoff * 2).min(self.cfg.max_backoff_epochs);
        entry.next_due = self.epoch + entry.backoff;
        self.stats.resent_packets += entry.packets.len() as u64;
        self.stats.resent_bytes += entry.bytes as u64;
        out.extend(entry.packets.iter().cloned());
    }

    fn expire(&mut self, msg_seq: u32, events: &mut Vec<RetransmitEvent>) {
        if let Some(entry) = self.entries.remove(&msg_seq) {
            self.buffered_bytes -= entry.bytes;
            self.stats.expired += 1;
            events.push(RetransmitEvent::Expired {
                msg_seq,
                bytes: entry.bytes,
                retries: entry.retries,
            });
        }
    }
}

/// Orders the downlink's [`DirectiveFrame`]s for one session:
/// duplicates and stale reorderings are dropped (latest
/// `directive_seq` wins), accepted actions are handed back for the
/// caller to apply at the next deterministic stream boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectiveHandler {
    next_seq: u32,
    accepted: u64,
    stale: u64,
}

impl DirectiveHandler {
    /// Handler expecting directive 0 first.
    pub fn new() -> Self {
        DirectiveHandler::default()
    }

    /// Filters one directive: `Some(action)` when it is new (and all
    /// older unseen directives become stale), `None` for a duplicate
    /// or stale reordering.
    pub fn accept(&mut self, frame: &DirectiveFrame) -> Option<DirectiveAction> {
        if frame.directive_seq < self.next_seq {
            self.stale += 1;
            return None;
        }
        self.next_seq = frame.directive_seq + 1;
        self.accepted += 1;
        Some(frame.action)
    }

    /// Directives accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Directives dropped as stale/duplicate.
    pub fn stale(&self) -> u64 {
        self.stale
    }

    /// Forgets all ordering state — the node-reboot path (a restarted
    /// node must accept the gateway's next directive stream from
    /// whatever sequence it resumes at, so the gateway re-numbers
    /// from its own persisted counter).
    pub fn reset(&mut self) {
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::DirectiveAction;

    fn pkt(fill: u8, len: usize) -> Vec<u8> {
        vec![fill; len]
    }

    #[test]
    fn config_bounds_are_validated() {
        assert!(RetransmitConfig::default().validate().is_ok());
        for bad in [
            RetransmitConfig {
                max_messages: 0,
                ..Default::default()
            },
            RetransmitConfig {
                max_bytes: 0,
                ..Default::default()
            },
            RetransmitConfig {
                ack_timeout_epochs: 0,
                ..Default::default()
            },
            RetransmitConfig {
                max_retries: 0,
                ..Default::default()
            },
            RetransmitConfig {
                max_backoff_epochs: 1,
                ack_timeout_epochs: 2,
                ..Default::default()
            },
        ] {
            assert!(RetransmitBuffer::new(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn caps_evict_oldest_with_visible_expiry() {
        let mut buf = RetransmitBuffer::new(RetransmitConfig {
            max_messages: 2,
            max_bytes: 1000,
            ..Default::default()
        })
        .unwrap();
        let mut events = Vec::new();
        buf.record(0, &[pkt(0, 30)], &mut events);
        buf.record(1, &[pkt(1, 30)], &mut events);
        assert!(events.is_empty());
        buf.record(2, &[pkt(2, 30)], &mut events);
        assert_eq!(
            events,
            vec![RetransmitEvent::Expired {
                msg_seq: 0,
                bytes: 30,
                retries: 0
            }]
        );
        assert_eq!(buf.buffered_messages(), 2);
        assert_eq!(buf.buffered_bytes(), 60);

        // Byte cap too: one giant message evicts everything, itself
        // included — loudly, never silently.
        let mut buf = RetransmitBuffer::new(RetransmitConfig {
            max_messages: 10,
            max_bytes: 100,
            ..Default::default()
        })
        .unwrap();
        events.clear();
        buf.record(0, &[pkt(0, 60)], &mut events);
        buf.record(1, &[pkt(1, 60)], &mut events);
        assert_eq!(events.len(), 1);
        events.clear();
        buf.record(2, &[pkt(2, 200)], &mut events);
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(buf.buffered_messages(), 0);
        assert_eq!(buf.buffered_bytes(), 0);
        assert_eq!(buf.stats().expired, 3);
    }

    #[test]
    fn nack_resends_and_ack_releases() {
        let mut buf = RetransmitBuffer::new(RetransmitConfig::default()).unwrap();
        let mut events = Vec::new();
        for seq in 0..4u32 {
            buf.record(seq, &[pkt(seq as u8, 25), pkt(seq as u8, 10)], &mut events);
        }
        let mut out = Vec::new();
        buf.on_nack(1, &[2], &mut out, &mut events);
        // Message 0 acked away, message 2's two packets resent, and
        // message 1 released by selective-ACK inference (below the
        // NACK horizon but not listed missing ⇒ the gateway has it).
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], pkt(2, 25));
        assert_eq!(buf.buffered_messages(), 2);
        assert_eq!(buf.stats().acked, 2);
        assert_eq!(buf.stats().resent_packets, 2);
        assert_eq!(buf.stats().resent_bytes, 35);
        // NACK for something long gone is a visible Unavailable.
        out.clear();
        buf.on_nack(1, &[0], &mut out, &mut events);
        assert!(out.is_empty());
        assert_eq!(events, vec![RetransmitEvent::Unavailable { msg_seq: 0 }]);
        buf.on_ack(10);
        assert_eq!(buf.buffered_messages(), 0);
        assert_eq!(buf.buffered_bytes(), 0);
    }

    #[test]
    fn a_nack_selectively_acks_unlisted_messages_below_its_horizon() {
        let mut buf = RetransmitBuffer::new(RetransmitConfig::default()).unwrap();
        let mut events = Vec::new();
        for seq in 0..6u32 {
            buf.record(seq, &[pkt(seq as u8, 20)], &mut events);
        }
        // Holes at 1 and 3: everything else below 3 (i.e. 0 and 2) is
        // demonstrably buffered at the gateway and must be released so
        // it never timeout-resends; 4 and 5 are above the horizon and
        // stay buffered (the gateway has said nothing about them).
        let mut out = Vec::new();
        buf.on_nack(1, &[1, 3], &mut out, &mut events);
        assert_eq!(out.len(), 2, "both holes resent");
        assert_eq!(
            buf.buffered_messages(),
            4,
            "1 and 3 in flight, 4 and 5 awaiting ack"
        );
        assert!(buf.entries.contains_key(&4) && buf.entries.contains_key(&5));
        assert_eq!(buf.stats().acked, 2, "0 cumulatively, 2 selectively");
        // The selective release is an ack, not an expiry: no events.
        assert!(events.is_empty());
    }

    #[test]
    fn tick_resends_on_timeout_with_doubling_backoff() {
        let cfg = RetransmitConfig {
            ack_timeout_epochs: 2,
            max_backoff_epochs: 8,
            max_retries: 3,
            ..Default::default()
        };
        let mut buf = RetransmitBuffer::new(cfg).unwrap();
        let (mut out, mut events) = (Vec::new(), Vec::new());
        buf.record(0, &[pkt(0, 25)], &mut events);
        // Due at epoch 2, then backoff 4 → epoch 6, then 8 → epoch 14,
        // then the 4th attempt expires it.
        let mut resend_epochs = Vec::new();
        for _ in 0..40 {
            out.clear();
            buf.tick(&mut out, &mut events);
            if !out.is_empty() {
                resend_epochs.push(buf.epoch());
            }
            if !events.is_empty() {
                break;
            }
        }
        assert_eq!(resend_epochs, vec![2, 6, 14]);
        assert_eq!(
            events,
            vec![RetransmitEvent::Expired {
                msg_seq: 0,
                bytes: 25,
                retries: 3
            }]
        );
        assert_eq!(buf.buffered_messages(), 0);
    }

    #[test]
    fn retry_budget_applies_to_nack_resends_too() {
        let cfg = RetransmitConfig {
            max_retries: 2,
            ..Default::default()
        };
        let mut buf = RetransmitBuffer::new(cfg).unwrap();
        let (mut out, mut events) = (Vec::new(), Vec::new());
        buf.record(0, &[pkt(0, 25)], &mut events);
        buf.on_nack(0, &[0], &mut out, &mut events);
        buf.on_nack(0, &[0], &mut out, &mut events);
        assert_eq!(out.len(), 2);
        assert!(events.is_empty());
        out.clear();
        buf.on_nack(0, &[0], &mut out, &mut events);
        assert!(out.is_empty());
        assert!(matches!(
            events[..],
            [RetransmitEvent::Expired {
                msg_seq: 0,
                retries: 2,
                ..
            }]
        ));
    }

    #[test]
    fn reset_clears_state_for_a_reboot() {
        let mut buf = RetransmitBuffer::new(RetransmitConfig::default()).unwrap();
        let (mut out, mut events) = (Vec::new(), Vec::new());
        buf.record(0, &[pkt(0, 25)], &mut events);
        buf.tick(&mut out, &mut events);
        buf.reset();
        assert_eq!(buf.buffered_messages(), 0);
        assert_eq!(buf.buffered_bytes(), 0);
        assert_eq!(buf.epoch(), 0);
        // A stale NACK after the reboot is Unavailable, not a panic or
        // a wrong resend.
        out.clear();
        buf.on_nack(0, &[0], &mut out, &mut events);
        assert!(out.is_empty());
    }

    #[test]
    fn directive_handler_orders_latest_wins() {
        let mut h = DirectiveHandler::new();
        let d = |seq, cr| DirectiveFrame {
            directive_seq: seq,
            action: DirectiveAction::SetCr { cr_x10: cr },
        };
        assert_eq!(
            h.accept(&d(0, 500)),
            Some(DirectiveAction::SetCr { cr_x10: 500 })
        );
        // Duplicate of 0: stale.
        assert_eq!(h.accept(&d(0, 500)), None);
        // Jump ahead (1 was lost): 2 is accepted, then the late 1 is
        // stale — latest wins.
        assert!(h.accept(&d(2, 659)).is_some());
        assert_eq!(h.accept(&d(1, 570)), None);
        assert_eq!(h.accepted(), 2);
        assert_eq!(h.stale(), 2);
        h.reset();
        assert!(h.accept(&d(0, 500)).is_some());
    }
}
