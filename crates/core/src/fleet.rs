//! The serving layer: many monitoring sessions in one process.
//!
//! A base station (or a cloud replay service) terminates the streams
//! of many wearable nodes at once. [`NodeFleet`] manages N independent
//! [`CardiacMonitor`] sessions keyed by [`SessionId`]: sessions are
//! added and removed at runtime, ingest frames individually or in
//! batches, and report aggregated [`ActivityCounters`] and energy.
//!
//! Sessions are fully isolated — the fleet guarantees that a set of
//! sessions produces byte-identical payloads to the same monitors run
//! sequentially — and iteration order is the (stable) insertion order,
//! so fleet-level reports are deterministic.
//!
//! ```
//! use wbsn_core::fleet::NodeFleet;
//! use wbsn_core::monitor::MonitorBuilder;
//! use wbsn_core::level::ProcessingLevel;
//!
//! let mut fleet = NodeFleet::new();
//! let id = fleet
//!     .add_session(MonitorBuilder::new().level(ProcessingLevel::RawStreaming))
//!     .unwrap();
//! let payloads = fleet.push_block(id, &[0; 3 * 250], 250).unwrap();
//! assert!(!payloads.is_empty());
//! let report = fleet.energy_report();
//! assert_eq!(report.sessions, 1);
//! ```

use crate::energy::{CycleCosts, EnergyReport};
use crate::monitor::{ActivityCounters, CardiacMonitor, MonitorBuilder};
use crate::payload::Payload;
use crate::{Result, WbsnError};
use wbsn_platform::node::NodeModel;

/// Opaque, process-unique session handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// Raw id value (stable for logging/sharding).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for SessionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

struct Session {
    id: SessionId,
    monitor: CardiacMonitor,
}

impl core::fmt::Debug for Session {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("level", &self.monitor.config().level)
            .finish()
    }
}

/// Aggregated fleet energy view (sums and extremes over the sessions'
/// individual [`EnergyReport`]s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEnergyReport {
    /// Sessions aggregated.
    pub sessions: usize,
    /// Element-wise summed activity (`seconds` counts session-seconds).
    pub counters: ActivityCounters,
    /// Sum of per-session average node power, mW.
    pub total_power_mw: f64,
    /// Mean per-session average node power, mW.
    pub mean_power_mw: f64,
    /// Shortest projected battery lifetime over the fleet, days.
    pub min_lifetime_days: f64,
}

/// N independent monitoring sessions behind one ingestion front end.
#[derive(Debug, Default)]
pub struct NodeFleet {
    // Sorted by id (ids are handed out monotonically and removal
    // preserves order), so lookup is a binary search and iteration is
    // deterministic insertion order.
    sessions: Vec<Session>,
    next_id: u64,
}

impl NodeFleet {
    /// Empty fleet.
    pub fn new() -> Self {
        NodeFleet::default()
    }

    /// Empty fleet with room for `n` sessions.
    pub fn with_capacity(n: usize) -> Self {
        NodeFleet {
            sessions: Vec::with_capacity(n),
            next_id: 0,
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Live session ids in insertion order.
    pub fn session_ids(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.sessions.iter().map(|s| s.id)
    }

    /// Builds and registers a new session.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures; the fleet is unchanged
    /// on error.
    pub fn add_session(&mut self, builder: MonitorBuilder) -> Result<SessionId> {
        let monitor = builder.build()?;
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.sessions.push(Session { id, monitor });
        Ok(id)
    }

    /// Builds and registers `n` identically-configured sessions.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures; no sessions are added
    /// on error.
    pub fn add_sessions(&mut self, builder: &MonitorBuilder, n: usize) -> Result<Vec<SessionId>> {
        // Build everything first so a failure adds nothing.
        let monitors: Vec<CardiacMonitor> = (0..n)
            .map(|_| builder.clone().build())
            .collect::<Result<_>>()?;
        Ok(monitors
            .into_iter()
            .map(|monitor| {
                let id = SessionId(self.next_id);
                self.next_id += 1;
                self.sessions.push(Session { id, monitor });
                id
            })
            .collect())
    }

    /// Removes a session, returning its monitor so the caller can
    /// flush it; `None` when the id is unknown.
    pub fn remove_session(&mut self, id: SessionId) -> Option<CardiacMonitor> {
        let idx = self.index_of(id).ok()?;
        Some(self.sessions.remove(idx).monitor)
    }

    /// Read access to one session.
    pub fn session(&self, id: SessionId) -> Option<&CardiacMonitor> {
        self.index_of(id).ok().map(|i| &self.sessions[i].monitor)
    }

    /// Mutable access to one session.
    pub fn session_mut(&mut self, id: SessionId) -> Option<&mut CardiacMonitor> {
        self.index_of(id)
            .ok()
            .map(move |i| &mut self.sessions[i].monitor)
    }

    fn index_of(&self, id: SessionId) -> core::result::Result<usize, usize> {
        self.sessions.binary_search_by_key(&id, |s| s.id)
    }

    fn monitor_mut(&mut self, id: SessionId) -> Result<&mut CardiacMonitor> {
        match self.index_of(id) {
            Ok(i) => Ok(&mut self.sessions[i].monitor),
            Err(_) => Err(WbsnError::UnknownSession { id: id.0 }),
        }
    }

    /// Pushes one frame into one session.
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus the
    /// session's own ingestion errors.
    pub fn push_frame(&mut self, id: SessionId, frame: &[i32]) -> Result<Vec<Payload>> {
        self.monitor_mut(id)?.try_push(frame)
    }

    /// Batched ingestion into one session (see
    /// [`CardiacMonitor::push_block`]).
    ///
    /// # Errors
    ///
    /// [`WbsnError::UnknownSession`] for a stale id, plus the
    /// session's own ingestion errors.
    pub fn push_block(
        &mut self,
        id: SessionId,
        frames: &[i32],
        n_frames: usize,
    ) -> Result<Vec<Payload>> {
        self.monitor_mut(id)?.push_block(frames, n_frames)
    }

    /// Flushes every session, returning whatever payloads were still
    /// buffered, tagged by session.
    ///
    /// # Errors
    ///
    /// The first stage failure aborts the sweep.
    pub fn flush_all(&mut self) -> Result<Vec<(SessionId, Vec<Payload>)>> {
        let mut out = Vec::with_capacity(self.sessions.len());
        for s in &mut self.sessions {
            let payloads = s.monitor.flush()?;
            if !payloads.is_empty() {
                out.push((s.id, payloads));
            }
        }
        Ok(out)
    }

    /// Element-wise sum of every session's [`ActivityCounters`]
    /// (`seconds` therefore counts session-seconds).
    pub fn aggregate_counters(&self) -> ActivityCounters {
        self.sessions
            .iter()
            .fold(ActivityCounters::default(), |acc, s| {
                acc.merged(&s.monitor.counters())
            })
    }

    /// Per-session energy reports (insertion order), priced on the
    /// default node model.
    pub fn session_energy_reports(&self) -> Vec<(SessionId, EnergyReport)> {
        let node = NodeModel::default();
        let costs = CycleCosts::default();
        self.sessions
            .iter()
            .map(|s| {
                let cfg = s.monitor.config();
                let report = crate::energy::report(
                    cfg.level,
                    &s.monitor.counters(),
                    cfg.n_leads,
                    cfg.fs_hz as f64,
                    &node,
                    &costs,
                );
                (s.id, report)
            })
            .collect()
    }

    /// Aggregated fleet energy report on the default node model.
    pub fn energy_report(&self) -> FleetEnergyReport {
        let reports = self.session_energy_reports();
        let total_power_mw: f64 = reports
            .iter()
            .map(|(_, r)| r.breakdown.avg_power_mw())
            .sum();
        let min_lifetime_days = reports
            .iter()
            .map(|(_, r)| r.lifetime_days)
            .fold(f64::INFINITY, f64::min);
        let sessions = self.sessions.len();
        let min_lifetime_days = if sessions == 0 {
            0.0
        } else {
            min_lifetime_days
        };
        FleetEnergyReport {
            sessions,
            counters: self.aggregate_counters(),
            total_power_mw,
            mean_power_mw: if sessions == 0 {
                0.0
            } else {
                total_power_mw / sessions as f64
            },
            min_lifetime_days,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::ProcessingLevel;
    use wbsn_ecg_synth::noise::NoiseConfig;
    use wbsn_ecg_synth::RecordBuilder;

    fn interleaved(seed: u64, secs: f64) -> (Vec<i32>, usize) {
        let rec = RecordBuilder::new(seed)
            .duration_s(secs)
            .n_leads(3)
            .noise(NoiseConfig::ambulatory(22.0))
            .build();
        let n = rec.n_samples();
        let mut buf = Vec::with_capacity(n * 3);
        for i in 0..n {
            for l in 0..3 {
                buf.push(rec.lead(l)[i]);
            }
        }
        (buf, n)
    }

    #[test]
    fn sessions_are_isolated_and_removable() {
        let mut fleet = NodeFleet::new();
        let a = fleet
            .add_session(MonitorBuilder::new().level(ProcessingLevel::RawStreaming))
            .unwrap();
        let b = fleet
            .add_session(MonitorBuilder::new().level(ProcessingLevel::Delineated))
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(fleet.len(), 2);
        let (buf, n) = interleaved(3, 2.0);
        fleet.push_block(a, &buf, n).unwrap();
        assert_eq!(
            fleet.session(a).unwrap().counters().samples_in,
            3 * n as u64
        );
        assert_eq!(fleet.session(b).unwrap().counters().samples_in, 0);
        let removed = fleet.remove_session(a).unwrap();
        assert_eq!(removed.counters().samples_in, 3 * n as u64);
        assert_eq!(fleet.len(), 1);
        assert!(matches!(
            fleet.push_frame(a, &[0, 0, 0]),
            Err(WbsnError::UnknownSession { .. })
        ));
    }

    #[test]
    fn add_sessions_is_all_or_nothing() {
        let mut fleet = NodeFleet::new();
        let bad = MonitorBuilder::new().n_leads(0);
        assert!(fleet.add_sessions(&bad, 5).is_err());
        assert!(fleet.is_empty());
        let ids = fleet.add_sessions(&MonitorBuilder::new(), 5).unwrap();
        assert_eq!(ids.len(), 5);
        assert_eq!(fleet.len(), 5);
    }

    #[test]
    fn aggregate_counters_sum_sessions() {
        let mut fleet = NodeFleet::new();
        let ids = fleet.add_sessions(&MonitorBuilder::new(), 4).unwrap();
        let (buf, n) = interleaved(8, 4.0);
        for &id in &ids {
            fleet.push_block(id, &buf, n).unwrap();
        }
        fleet.flush_all().unwrap();
        let agg = fleet.aggregate_counters();
        assert_eq!(agg.samples_in, 4 * 3 * n as u64);
        assert!((agg.seconds - 4.0 * 4.0).abs() < 0.1);
        let one = fleet.session(ids[0]).unwrap().counters();
        assert_eq!(agg.beats, 4 * one.beats);
    }

    #[test]
    fn energy_report_aggregates() {
        let mut fleet = NodeFleet::new();
        let ids = fleet.add_sessions(&MonitorBuilder::new(), 3).unwrap();
        let (buf, n) = interleaved(9, 10.0);
        for &id in &ids {
            fleet.push_block(id, &buf, n).unwrap();
        }
        let report = fleet.energy_report();
        assert_eq!(report.sessions, 3);
        assert!(report.total_power_mw > 0.0);
        assert!(
            (report.mean_power_mw - report.total_power_mw / 3.0).abs() < 1e-12,
            "mean {}",
            report.mean_power_mw
        );
        assert!(report.min_lifetime_days > 0.0);
    }

    #[test]
    fn empty_fleet_reports_zero() {
        let fleet = NodeFleet::new();
        let report = fleet.energy_report();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.mean_power_mw, 0.0);
        assert_eq!(report.min_lifetime_days, 0.0);
        assert_eq!(fleet.aggregate_counters(), ActivityCounters::default());
    }
}
