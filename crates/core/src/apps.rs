//! Application layer: the monitoring scenarios the paper motivates.
//!
//! Section II: "applications that extract behavioural information
//! typically only require processing of beat-to-beat intervals, while
//! the diagnosis of heart problems requires … detailed morphological
//! information". Three representative applications are provided:
//!
//! * [`HrvAnalyzer`] — beat-to-beat interval analytics (SDNN, RMSSD,
//!   pNN50) plus a simple autonomic-balance score, the substrate of
//!   the sleep-monitoring scenario (airline pilots in the paper's
//!   abstract).
//! * [`AfMonitorApp`] — rhythm-level arrhythmia reporting on top of the
//!   classified pipeline.
//! * [`BpTrendApp`] — PAT-based blood-pressure trending from the
//!   ECG+PPG pair (Section IV-C).
//!
//! Applications consume the payload stream of a session at whatever
//! fidelity the node currently transmits. Under the
//! [power governor](crate::governor) that fidelity moves at runtime:
//! an [`AfMonitorApp`] sees per-beat fiducials while an episode keeps
//! the session escalated, and sparse event summaries once the governor
//! steps the node back down — the application-level view of the
//! energy/diagnostic-detail trade the governor arbitrates.

use wbsn_classify::af::{AfBeat, AfConfig, AfDetector};
use wbsn_multimodal::pat::{BpEstimator, PatDetector};
use wbsn_sigproc::stats;

/// Classic time-domain heart-rate-variability metrics over a window of
/// RR intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HrvMetrics {
    /// Mean heart rate, bpm.
    pub mean_hr_bpm: f64,
    /// Standard deviation of NN intervals, ms.
    pub sdnn_ms: f64,
    /// Root-mean-square of successive differences, ms.
    pub rmssd_ms: f64,
    /// Percentage of successive differences above 50 ms.
    pub pnn50_pct: f64,
}

/// Sliding HRV analyzer.
#[derive(Debug, Clone)]
pub struct HrvAnalyzer {
    fs_hz: f64,
    window_s: f64,
    r_times_s: Vec<f64>,
}

impl HrvAnalyzer {
    /// Analyzer over windows of `window_s` seconds (e.g. 300 s for
    /// sleep staging).
    pub fn new(fs_hz: f64, window_s: f64) -> Self {
        HrvAnalyzer {
            fs_hz,
            window_s: window_s.max(10.0),
            r_times_s: Vec::new(),
        }
    }

    /// Adds a detected R peak (sample index).
    pub fn add_beat(&mut self, r_sample: usize) {
        let t = r_sample as f64 / self.fs_hz;
        self.r_times_s.push(t);
        let horizon = t - self.window_s;
        self.r_times_s.retain(|&x| x >= horizon);
    }

    /// Metrics over the current window; `None` with fewer than 4 beats.
    pub fn metrics(&self) -> Option<HrvMetrics> {
        if self.r_times_s.len() < 4 {
            return None;
        }
        let rr_ms: Vec<f64> = self
            .r_times_s
            .windows(2)
            .map(|w| (w[1] - w[0]) * 1000.0)
            .collect();
        let mean_rr = stats::mean(&rr_ms);
        let sdnn = stats::std_dev(&rr_ms);
        let diffs: Vec<f64> = rr_ms.windows(2).map(|w| w[1] - w[0]).collect();
        let rmssd = stats::rms(&diffs);
        let pnn50 = 100.0 * diffs.iter().filter(|d| d.abs() > 50.0).count() as f64
            / diffs.len().max(1) as f64;
        Some(HrvMetrics {
            mean_hr_bpm: 60_000.0 / mean_rr,
            sdnn_ms: sdnn,
            rmssd_ms: rmssd,
            pnn50_pct: pnn50,
        })
    }

    /// A crude sleep-depth proxy in `[0, 1]`: deeper sleep shows lower
    /// heart rate and higher vagal (RMSSD) tone. Used by the sleep
    /// example, not a clinical score.
    pub fn sleep_score(&self) -> Option<f64> {
        let m = self.metrics()?;
        let hr_term = ((75.0 - m.mean_hr_bpm) / 25.0).clamp(0.0, 1.0);
        let hrv_term = (m.rmssd_ms / 60.0).clamp(0.0, 1.0);
        Some(0.6 * hr_term + 0.4 * hrv_term)
    }
}

/// Rhythm-level AF monitoring over a beat stream (wraps the detector
/// with episode extraction).
#[derive(Debug, Clone)]
pub struct AfMonitorApp {
    detector: AfDetector,
    beats: Vec<AfBeat>,
    fs_hz: f64,
}

/// One detected AF episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AfEpisode {
    /// Episode start, seconds.
    pub start_s: f64,
    /// Episode end, seconds.
    pub end_s: f64,
}

impl AfMonitorApp {
    /// New monitor at the given sampling rate.
    pub fn new(fs_hz: u32) -> Self {
        AfMonitorApp {
            detector: AfDetector::new(AfConfig {
                fs_hz,
                ..AfConfig::default()
            })
            .expect("default AF config is valid"),
            beats: Vec::new(),
            fs_hz: fs_hz as f64,
        }
    }

    /// Adds a delineated beat.
    pub fn add_beat(&mut self, r_sample: usize, has_p: bool) {
        self.beats.push(AfBeat { r_sample, has_p });
    }

    /// Extracts AF episodes from everything seen so far.
    pub fn episodes(&self) -> Vec<AfEpisode> {
        let windows = self.detector.analyze(&self.beats);
        let mut episodes = Vec::new();
        let mut current: Option<AfEpisode> = None;
        for w in &windows {
            if w.is_af {
                let start = w.start_sample as f64 / self.fs_hz;
                let end = w.end_sample as f64 / self.fs_hz;
                match &mut current {
                    Some(e) => e.end_s = end,
                    None => {
                        current = Some(AfEpisode {
                            start_s: start,
                            end_s: end,
                        })
                    }
                }
            } else if let Some(e) = current.take() {
                episodes.push(e);
            }
        }
        if let Some(e) = current {
            episodes.push(e);
        }
        episodes
    }

    /// AF burden (fraction of windows flagged).
    pub fn burden(&self) -> f64 {
        AfDetector::af_burden(&self.detector.analyze(&self.beats))
    }
}

/// PAT-based blood-pressure trending.
#[derive(Debug, Clone)]
pub struct BpTrendApp {
    detector: PatDetector,
    estimator: Option<BpEstimator>,
}

impl BpTrendApp {
    /// New app at the given sampling rate.
    pub fn new(fs_hz: u32) -> Self {
        BpTrendApp {
            detector: PatDetector {
                fs_hz: fs_hz as f64,
                ..PatDetector::default()
            },
            estimator: None,
        }
    }

    /// Measures PAT for each R peak over a PPG trace.
    pub fn measure_pats(&self, ppg: &[f64], r_peaks: &[usize]) -> Vec<f64> {
        self.detector
            .measure(ppg, r_peaks)
            .into_iter()
            .map(|m| m.pat_s)
            .collect()
    }

    /// Calibrates against reference cuff readings.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures (too few points, constant PAT).
    pub fn calibrate(&mut self, pat_s: &[f64], bp_mmhg: &[f64]) -> crate::Result<()> {
        self.estimator = Some(BpEstimator::calibrate(pat_s, bp_mmhg)?);
        Ok(())
    }

    /// Estimates BP for a PAT value; `None` before calibration.
    pub fn estimate(&self, pat_s: f64) -> Option<f64> {
        self.estimator.map(|e| e.estimate(pat_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hrv_metrics_on_regular_rhythm() {
        let mut h = HrvAnalyzer::new(250.0, 60.0);
        for k in 0..60 {
            h.add_beat(k * 200); // RR = 0.8 s exactly
        }
        let m = h.metrics().unwrap();
        assert!((m.mean_hr_bpm - 75.0).abs() < 0.5);
        assert!(m.sdnn_ms < 1.0);
        assert!(m.rmssd_ms < 1.0);
        assert_eq!(m.pnn50_pct, 0.0);
    }

    #[test]
    fn hrv_detects_variability() {
        let mut h = HrvAnalyzer::new(250.0, 120.0);
        let mut t = 0usize;
        for k in 0..100 {
            t += if k % 2 == 0 { 180 } else { 230 }; // alternating RR
            h.add_beat(t);
        }
        let m = h.metrics().unwrap();
        assert!(m.sdnn_ms > 50.0, "sdnn {}", m.sdnn_ms);
        assert!(m.pnn50_pct > 90.0, "pnn50 {}", m.pnn50_pct);
    }

    #[test]
    fn sleep_score_orders_rest_vs_stress() {
        // Resting: HR 55, high variability.
        let mut rest = HrvAnalyzer::new(250.0, 120.0);
        let mut t = 0usize;
        for k in 0..80 {
            t += 273 + (k % 3) * 12;
            rest.add_beat(t);
        }
        // Stressed: HR 95, metronomic.
        let mut stress = HrvAnalyzer::new(250.0, 120.0);
        let mut t2 = 0usize;
        for _ in 0..80 {
            t2 += 158;
            stress.add_beat(t2);
        }
        assert!(rest.sleep_score().unwrap() > stress.sleep_score().unwrap());
    }

    #[test]
    fn window_slides() {
        let mut h = HrvAnalyzer::new(250.0, 20.0);
        for k in 0..200 {
            h.add_beat(k * 250);
        }
        // Only ~20 s of beats retained.
        assert!(h.r_times_s.len() <= 22);
    }

    #[test]
    fn af_monitor_extracts_episode() {
        let mut app = AfMonitorApp::new(250);
        let mut t = 0usize;
        // 60 regular sinus beats with P.
        for _ in 0..60 {
            t += 200;
            app.add_beat(t, true);
        }
        // 60 chaotic beats without P.
        let mut state = 5u64;
        for _ in 0..60 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            t += 120 + (state % 160) as usize;
            app.add_beat(t, false);
        }
        // Back to sinus.
        for _ in 0..60 {
            t += 200;
            app.add_beat(t, true);
        }
        let eps = app.episodes();
        assert_eq!(eps.len(), 1, "episodes {eps:?}");
        assert!(app.burden() > 0.1 && app.burden() < 0.7);
    }

    #[test]
    fn bp_app_requires_calibration() {
        let mut app = BpTrendApp::new(250);
        assert!(app.estimate(0.22).is_none());
        app.calibrate(&[0.20, 0.24, 0.28], &[135.0, 124.0, 116.0])
            .unwrap();
        let bp = app.estimate(0.22).unwrap();
        assert!((110.0..145.0).contains(&bp), "bp {bp}");
        // Shorter PAT -> higher BP.
        assert!(app.estimate(0.18).unwrap() > app.estimate(0.30).unwrap());
    }
}
