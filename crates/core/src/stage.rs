//! The composable pipeline-stage API.
//!
//! The paper's abstraction ladder (raw → CS → delineated → classified)
//! is modelled as pluggable processing blocks behind one streaming
//! interface, mirroring how related silicon (ECG-on-chip compressors,
//! ferroelectric-MCU chestbelts) exposes its pipeline as hardware
//! blocks on a bus. Each block implements [`PipelineStage`]:
//!
//! * [`RawForwarder`] — pack every sample and forward it.
//! * [`CsStage`] — window each lead and run the integer CS encoder.
//! * [`DelineationStage`] — RMS-combine the leads, run the streaming
//!   QRS + wavelet delineator, emit fiducial batches.
//! * [`ClassifyStage`] — delineate, classify each beat by random
//!   projection + fuzzy rules, slide the AF detector, emit periodic
//!   event summaries (plus an immediate payload when an AF episode
//!   starts).
//!
//! Stages emit into a [`PayloadSink`], which tracks exact on-air byte
//! counts as payloads are produced, and report their work through
//! [`ActivityCounters`] so the energy model can price them afterwards.
//! The engine ([`crate::CardiacMonitor`]) only orchestrates: new
//! workloads (PPG fusion, new codecs) plug in by implementing this
//! trait, without touching the engine.

use crate::payload::Payload;
use crate::{Result, WbsnError};
use wbsn_classify::af::{AfBeat, AfConfig, AfDetector};
use wbsn_classify::features::{BeatFeatureExtractor, FeatureConfig};
use wbsn_classify::fuzzy::FuzzyClassifier;
use wbsn_cs::encoder::CsEncoder;
use wbsn_cs::measurements_for_cr;
use wbsn_delineation::realtime::{StreamingConfig, StreamingDelineator};
use wbsn_delineation::BeatFiducials;
use wbsn_sigproc::combine::RmsCombiner;

/// Per-stage activity counters accumulated while processing; the raw
/// material of the energy report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityCounters {
    /// Samples acquired (per-lead samples summed).
    pub samples_in: u64,
    /// Seconds of signal processed.
    pub seconds: f64,
    /// Payload bytes produced.
    pub payload_bytes: u64,
    /// Payloads produced (radio bursts).
    pub payloads: u64,
    /// CS windows encoded.
    pub cs_windows: u64,
    /// Integer additions spent in CS encoding.
    pub cs_adds: u64,
    /// Beats delineated.
    pub beats: u64,
    /// Beats classified.
    pub classified_beats: u64,
    /// AF windows evaluated.
    pub af_windows: u64,
}

impl ActivityCounters {
    /// Element-wise difference `self − earlier` (saturating), the
    /// activity of the interval between two snapshots of one session —
    /// the per-epoch accounting input of the
    /// [governor](crate::governor).
    ///
    /// `af_windows` is special: the classify stage reports it as a
    /// *gauge* (windows currently under sliding analysis, which drops
    /// when the beat buffer drains), not a monotone counter, so the
    /// delta carries the later snapshot instead of a subtraction —
    /// subtracting two gauge readings would report zero AF work for
    /// every epoch after the first buffer drain.
    #[must_use]
    pub fn delta(&self, earlier: &ActivityCounters) -> ActivityCounters {
        ActivityCounters {
            samples_in: self.samples_in.saturating_sub(earlier.samples_in),
            seconds: (self.seconds - earlier.seconds).max(0.0),
            payload_bytes: self.payload_bytes.saturating_sub(earlier.payload_bytes),
            payloads: self.payloads.saturating_sub(earlier.payloads),
            cs_windows: self.cs_windows.saturating_sub(earlier.cs_windows),
            cs_adds: self.cs_adds.saturating_sub(earlier.cs_adds),
            beats: self.beats.saturating_sub(earlier.beats),
            classified_beats: self
                .classified_beats
                .saturating_sub(earlier.classified_beats),
            af_windows: self.af_windows,
        }
    }

    /// Element-wise sum (used by the fleet aggregator; `seconds` adds
    /// too, i.e. the result counts session-seconds).
    #[must_use]
    pub fn merged(&self, other: &ActivityCounters) -> ActivityCounters {
        ActivityCounters {
            samples_in: self.samples_in + other.samples_in,
            seconds: self.seconds + other.seconds,
            payload_bytes: self.payload_bytes + other.payload_bytes,
            payloads: self.payloads + other.payloads,
            cs_windows: self.cs_windows + other.cs_windows,
            cs_adds: self.cs_adds + other.cs_adds,
            beats: self.beats + other.beats,
            classified_beats: self.classified_beats + other.classified_beats,
            af_windows: self.af_windows + other.af_windows,
        }
    }
}

/// Collects the payloads a stage emits and accounts their exact on-air
/// size as they are produced.
///
/// The sink is owned by the engine and reused across pushes, so the
/// batched ingestion path allocates nothing per frame in the steady
/// state.
#[derive(Debug, Default)]
pub struct PayloadSink {
    ready: Vec<Payload>,
    total_bytes: u64,
    total_payloads: u64,
}

impl PayloadSink {
    /// New empty sink.
    pub fn new() -> Self {
        PayloadSink::default()
    }

    /// Hands one payload to the radio queue.
    pub fn emit(&mut self, payload: Payload) {
        self.total_bytes += payload.byte_len() as u64;
        self.total_payloads += 1;
        self.ready.push(payload);
    }

    /// Payloads emitted but not yet drained.
    pub fn pending(&self) -> &[Payload] {
        &self.ready
    }

    /// Moves the pending payloads out; cumulative byte/payload counts
    /// are unaffected.
    pub fn drain(&mut self) -> Vec<Payload> {
        core::mem::take(&mut self.ready)
    }

    /// Total bytes emitted over the sink's lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total payloads emitted over the sink's lifetime.
    pub fn total_payloads(&self) -> u64 {
        self.total_payloads
    }
}

/// One block of the on-node processing pipeline.
///
/// A stage consumes one multi-lead frame at a time (one simultaneous
/// sample per lead) and emits whatever payloads become ready into the
/// sink. Implementations must be deterministic: the same frame
/// sequence must produce the same payload bytes.
pub trait PipelineStage: core::fmt::Debug + Send {
    /// Stage name for diagnostics and reports.
    fn name(&self) -> &'static str;

    /// Consumes one frame (`frame.len()` == configured lead count; the
    /// engine validates before dispatch).
    ///
    /// # Errors
    ///
    /// Stage-specific processing failures.
    fn push_frame(&mut self, frame: &[i32], sink: &mut PayloadSink) -> Result<()>;

    /// Consumes a block of interleaved frames
    /// (`frames[i * n_leads + l]` is lead `l` of frame `i`;
    /// `frames.len()` is an exact multiple of `n_leads` — the engine
    /// validates before dispatch) in one call.
    ///
    /// Must emit byte-identical payloads and identical counters to
    /// pushing the frames one at a time — the monitor equivalence
    /// tests pin this for every stage. The default implementation is
    /// the per-frame loop; stages override it with block kernels so
    /// steady-state ingestion performs no per-frame trait dispatch and
    /// no per-frame heap allocation.
    ///
    /// # Errors
    ///
    /// Stage-specific processing failures.
    fn process_block(
        &mut self,
        frames: &[i32],
        n_leads: usize,
        sink: &mut PayloadSink,
    ) -> Result<()> {
        for frame in frames.chunks_exact(n_leads) {
            self.push_frame(frame, sink)?;
        }
        Ok(())
    }

    /// Emits any buffered partial state (end of session).
    ///
    /// # Errors
    ///
    /// Stage-specific processing failures.
    fn flush(&mut self, sink: &mut PayloadSink) -> Result<()>;

    /// Stage-specific work performed so far (the engine fills in the
    /// frame/byte totals it tracks itself).
    fn activity(&self) -> ActivityCounters;

    /// Renegotiates the stage's CS compression ratio **in place**,
    /// preserving buffered samples and the window sequence counter —
    /// the [`crate::link::DirectiveAction::SetCr`] application path.
    /// Returns `Ok(true)` when the stage compresses and applied the
    /// change, `Ok(false)` when the ratio does not apply to this
    /// stage (nothing happens). The default is the latter.
    ///
    /// # Errors
    ///
    /// Stage-specific validation/construction failures; the stage
    /// must be unchanged on error.
    fn renegotiate_cs_cr(&mut self, _cr_percent: f64) -> Result<bool> {
        Ok(false)
    }
}

fn check_leads(n_leads: usize) -> Result<()> {
    if n_leads == 0 {
        return Err(WbsnError::InvalidParameter {
            what: "n_leads",
            detail: "must be at least 1".into(),
        });
    }
    if n_leads > 255 {
        return Err(WbsnError::InvalidParameter {
            what: "n_leads",
            detail: format!("{n_leads} exceeds the payload lead-index range (255)"),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Raw forwarding
// ---------------------------------------------------------------------------

/// Packs every sample and forwards it — the unsustainable baseline the
/// paper's Figure 1 starts from.
#[derive(Debug)]
pub struct RawForwarder {
    chunk_len: usize,
    buffers: Vec<Vec<i16>>,
}

impl RawForwarder {
    /// Forwards `n_leads` leads in chunks of `chunk_len` samples
    /// (typically one second worth).
    ///
    /// # Errors
    ///
    /// Rejects zero leads or a zero chunk length.
    pub fn new(n_leads: usize, chunk_len: usize) -> Result<Self> {
        check_leads(n_leads)?;
        if chunk_len == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "chunk_len",
                detail: "must be at least 1".into(),
            });
        }
        Ok(RawForwarder {
            chunk_len,
            buffers: vec![Vec::with_capacity(chunk_len); n_leads],
        })
    }
}

impl PipelineStage for RawForwarder {
    fn name(&self) -> &'static str {
        "raw-forwarder"
    }

    fn push_frame(&mut self, frame: &[i32], sink: &mut PayloadSink) -> Result<()> {
        for (lead, &s) in frame.iter().enumerate() {
            self.buffers[lead].push(s.clamp(-2048, 2047) as i16);
            if self.buffers[lead].len() >= self.chunk_len {
                sink.emit(Payload::RawChunk {
                    lead: lead as u8,
                    samples: core::mem::take(&mut self.buffers[lead]),
                });
            }
        }
        Ok(())
    }

    fn process_block(
        &mut self,
        frames: &[i32],
        n_leads: usize,
        sink: &mut PayloadSink,
    ) -> Result<()> {
        // All per-lead buffers fill in lockstep (one sample per lead
        // per frame), so sub-blocks can run to each chunk boundary and
        // emit lead-by-lead exactly as the per-frame path does.
        let mut rest = frames;
        while !rest.is_empty() {
            let take = (self.chunk_len - self.buffers[0].len()).min(rest.len() / n_leads);
            let (sub, tail) = rest.split_at(take * n_leads);
            rest = tail;
            for (lead, buf) in self.buffers.iter_mut().enumerate() {
                buf.extend(
                    sub[lead..]
                        .iter()
                        .step_by(n_leads)
                        .map(|&s| s.clamp(-2048, 2047) as i16),
                );
            }
            if self.buffers[0].len() >= self.chunk_len {
                for (lead, buf) in self.buffers.iter_mut().enumerate() {
                    sink.emit(Payload::RawChunk {
                        lead: lead as u8,
                        samples: core::mem::take(buf),
                    });
                }
            }
        }
        Ok(())
    }

    fn flush(&mut self, sink: &mut PayloadSink) -> Result<()> {
        for (lead, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                sink.emit(Payload::RawChunk {
                    lead: lead as u8,
                    samples: core::mem::take(buf),
                });
            }
        }
        Ok(())
    }

    fn activity(&self) -> ActivityCounters {
        ActivityCounters::default()
    }
}

// ---------------------------------------------------------------------------
// Compressed sensing
// ---------------------------------------------------------------------------

/// Windows each lead and runs the integer CS encoder (`y = Φx`, Φ
/// ternary and column-sparse, additions only).
#[derive(Debug)]
pub struct CsStage {
    window: usize,
    // Kept so a mid-stream CR renegotiation can rebuild the encoders
    // with the same geometry and seed derivation.
    d_per_col: usize,
    seed: u64,
    encoders: Vec<CsEncoder>,
    buffers: Vec<Vec<i32>>,
    // Reused measurement buffer shared by every lead's encode, so the
    // steady-state path performs no per-window allocation beyond the
    // emitted payload itself.
    y_scratch: Vec<i64>,
    window_seq: u32,
    cs_windows: u64,
    cs_adds: u64,
}

impl CsStage {
    /// Per-lead encoders over `window`-sample windows at the given
    /// compression ratio (percent), sensing density and matrix seed.
    ///
    /// # Errors
    ///
    /// Propagates encoder construction failures (non-dyadic window,
    /// invalid density, …).
    pub fn new(
        n_leads: usize,
        window: usize,
        cr_percent: f64,
        d_per_col: usize,
        seed: u64,
    ) -> Result<Self> {
        check_leads(n_leads)?;
        if !window.is_power_of_two() {
            return Err(WbsnError::InvalidParameter {
                what: "cs_window",
                detail: format!("{window} is not a power of two"),
            });
        }
        if !(0.0..100.0).contains(&cr_percent) {
            return Err(WbsnError::InvalidParameter {
                what: "cs_cr_percent",
                detail: format!("{cr_percent} outside [0, 100)"),
            });
        }
        let m = measurements_for_cr(window, cr_percent);
        // Lead l senses with the matrix seeded by the shared
        // derivation rule (`CsEncoder::for_lead`), so the gateway can
        // regenerate the exact same Φ from the session handshake.
        let encoders = (0..n_leads)
            .map(|l| CsEncoder::for_lead(window, m, d_per_col, seed, l as u8))
            .collect::<core::result::Result<Vec<_>, _>>()?;
        Ok(CsStage {
            window,
            d_per_col,
            seed,
            encoders,
            buffers: vec![Vec::with_capacity(window); n_leads],
            y_scratch: Vec::with_capacity(m),
            window_seq: 0,
            cs_windows: 0,
            cs_adds: 0,
        })
    }

    /// Encodes and emits one full window per lead (the buffers fill in
    /// lockstep), clearing the buffers for the next window. Shared by
    /// the per-frame and block paths so their payloads are identical.
    fn emit_full_windows(&mut self, sink: &mut PayloadSink) {
        for (lead, (buf, enc)) in self.buffers.iter_mut().zip(&self.encoders).enumerate() {
            enc.encode_into(buf, &mut self.y_scratch)
                .expect("window length enforced by construction");
            buf.clear();
            self.cs_windows += 1;
            self.cs_adds += enc.adds_per_window() as u64;
            sink.emit(Payload::CsWindow {
                lead: lead as u8,
                window_seq: self.window_seq,
                measurements: self
                    .y_scratch
                    .iter()
                    .map(|&v| v.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
                    .collect(),
            });
        }
        self.window_seq += 1;
    }
}

impl PipelineStage for CsStage {
    fn name(&self) -> &'static str {
        "cs-encoder"
    }

    fn renegotiate_cs_cr(&mut self, cr_percent: f64) -> Result<bool> {
        if !(0.0..100.0).contains(&cr_percent) {
            return Err(WbsnError::InvalidParameter {
                what: "cs_cr_percent",
                detail: format!("{cr_percent} outside [0, 100)"),
            });
        }
        let m = measurements_for_cr(self.window, cr_percent);
        // Build every new encoder before touching the stage, so a
        // failing construction leaves the old ratio running. The
        // window length is unchanged, so partially filled buffers stay
        // valid — Φ is only applied at emission — and `window_seq`
        // continues uninterrupted: the switch is invisible except for
        // the measurement count of subsequent windows.
        let encoders = (0..self.encoders.len())
            .map(|l| CsEncoder::for_lead(self.window, m, self.d_per_col, self.seed, l as u8))
            .collect::<core::result::Result<Vec<_>, _>>()?;
        self.encoders = encoders;
        if self.y_scratch.capacity() < m {
            self.y_scratch.reserve(m - self.y_scratch.capacity());
        }
        Ok(true)
    }

    fn push_frame(&mut self, frame: &[i32], sink: &mut PayloadSink) -> Result<()> {
        for (lead, &s) in frame.iter().enumerate() {
            self.buffers[lead].push(s);
        }
        if self.buffers[0].len() >= self.window {
            self.emit_full_windows(sink);
        }
        Ok(())
    }

    fn process_block(
        &mut self,
        frames: &[i32],
        n_leads: usize,
        sink: &mut PayloadSink,
    ) -> Result<()> {
        // Deinterleave straight into the per-lead window buffers in
        // window-sized gulps; the buffers fill in lockstep, so each
        // gulp either tops up a partial window or completes one.
        let mut rest = frames;
        while !rest.is_empty() {
            let take = (self.window - self.buffers[0].len()).min(rest.len() / n_leads);
            let (sub, tail) = rest.split_at(take * n_leads);
            rest = tail;
            for (lead, buf) in self.buffers.iter_mut().enumerate() {
                buf.extend(sub[lead..].iter().step_by(n_leads));
            }
            if self.buffers[0].len() >= self.window {
                self.emit_full_windows(sink);
            }
        }
        Ok(())
    }

    fn flush(&mut self, _sink: &mut PayloadSink) -> Result<()> {
        // A partial window cannot be reconstructed; it is dropped, as
        // node firmware would drop a torn window on shutdown.
        Ok(())
    }

    fn activity(&self) -> ActivityCounters {
        ActivityCounters {
            cs_windows: self.cs_windows,
            cs_adds: self.cs_adds,
            ..ActivityCounters::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Delineation
// ---------------------------------------------------------------------------

/// RMS-combines the leads, runs the streaming QRS + wavelet
/// delineator, and batches fiducials into `Beats` payloads.
#[derive(Debug)]
pub struct DelineationStage {
    combiner: RmsCombiner,
    delineator: StreamingDelineator,
    queue: Vec<BeatFiducials>,
    // Reused block buffers (RMS-combined samples, beats emitted by the
    // delineator per block), so the block path allocates nothing per
    // frame.
    combined_scratch: Vec<i32>,
    beat_scratch: Vec<BeatFiducials>,
    beats_per_payload: usize,
    beats: u64,
}

impl DelineationStage {
    /// Streaming delineator over `n_leads` leads at `fs_hz`, emitting
    /// one payload per `beats_per_payload` beats.
    ///
    /// # Errors
    ///
    /// Propagates combiner/delineator construction failures.
    pub fn new(n_leads: usize, fs_hz: u32, beats_per_payload: usize) -> Result<Self> {
        check_leads(n_leads)?;
        if beats_per_payload == 0 {
            return Err(WbsnError::InvalidParameter {
                what: "beats_per_payload",
                detail: "must be at least 1".into(),
            });
        }
        Ok(DelineationStage {
            combiner: RmsCombiner::new(n_leads)?,
            delineator: StreamingDelineator::new(StreamingConfig {
                fs_hz,
                ..StreamingConfig::default()
            })?,
            queue: Vec::new(),
            combined_scratch: Vec::new(),
            beat_scratch: Vec::new(),
            beats_per_payload,
            beats: 0,
        })
    }

    /// Queues one delineated beat and emits a `Beats` payload when the
    /// batch is full. Shared by the per-frame and block paths.
    #[inline]
    fn enqueue_beat(&mut self, beat: BeatFiducials, sink: &mut PayloadSink) {
        self.beats += 1;
        self.queue.push(beat);
        if self.queue.len() >= self.beats_per_payload {
            sink.emit(Payload::Beats {
                beats: core::mem::take(&mut self.queue),
            });
        }
    }
}

impl PipelineStage for DelineationStage {
    fn name(&self) -> &'static str {
        "delineation"
    }

    fn push_frame(&mut self, frame: &[i32], sink: &mut PayloadSink) -> Result<()> {
        let combined = self.combiner.push(frame);
        if let Some(beat) = self.delineator.push(combined) {
            self.enqueue_beat(beat, sink);
        }
        Ok(())
    }

    fn process_block(
        &mut self,
        frames: &[i32],
        _n_leads: usize,
        sink: &mut PayloadSink,
    ) -> Result<()> {
        // RMS-combine the whole block in one sweep (one shape check,
        // vectorizable squares), then run the delineator's block form
        // over the combined buffer and queue whatever beats came out.
        let mut combined = core::mem::take(&mut self.combined_scratch);
        let mut beats = core::mem::take(&mut self.beat_scratch);
        self.combiner.combine_block_into(frames, &mut combined);
        beats.clear();
        self.delineator.push_block(&combined, &mut beats);
        for beat in beats.drain(..) {
            self.enqueue_beat(beat, sink);
        }
        self.combined_scratch = combined;
        self.beat_scratch = beats;
        Ok(())
    }

    fn flush(&mut self, sink: &mut PayloadSink) -> Result<()> {
        let tail = self.delineator.flush();
        self.beats += tail.len() as u64;
        self.queue.extend(tail);
        if !self.queue.is_empty() {
            sink.emit(Payload::Beats {
                beats: core::mem::take(&mut self.queue),
            });
        }
        Ok(())
    }

    fn activity(&self) -> ActivityCounters {
        ActivityCounters {
            beats: self.beats,
            ..ActivityCounters::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// Delineates, classifies each beat (random projection + PWL fuzzy
/// memberships), tracks AF episodes, and transmits periodic event
/// summaries — the top of the abstraction ladder.
#[derive(Debug)]
pub struct ClassifyStage {
    fs_hz: u32,
    event_interval_s: f64,
    classifier: Option<FuzzyClassifier>,
    combiner: RmsCombiner,
    delineator: StreamingDelineator,
    features: BeatFeatureExtractor,
    af: AfDetector,
    af_beats: Vec<AfBeat>,
    ring: Vec<i32>,
    // Write cursor into `ring` (== n_pushed % ring.len(), maintained
    // incrementally so the per-sample path never takes a modulo).
    ring_pos: usize,
    // Scratch for materializing one beat window out of the ring;
    // reused across beats so the steady-state path never allocates.
    beat_scratch: Vec<i32>,
    // Reused block buffer for the RMS-combined samples.
    combined_scratch: Vec<i32>,
    n_pushed: usize,
    last_beat_r: Option<usize>,
    af_active: bool,
    event_class_counts: [u32; 4],
    event_beats: u32,
    event_rr_sum_s: f64,
    last_event_at: f64,
    beats: u64,
    classified_beats: u64,
    af_windows: u64,
}

impl ClassifyStage {
    /// Classified-level pipeline over `n_leads` leads at `fs_hz`,
    /// summarizing every `event_interval_s` seconds. Without a trained
    /// classifier, beats are counted as class 0.
    ///
    /// # Errors
    ///
    /// Propagates construction failures of the underlying components.
    pub fn new(
        n_leads: usize,
        fs_hz: u32,
        event_interval_s: f64,
        classifier: Option<FuzzyClassifier>,
    ) -> Result<Self> {
        check_leads(n_leads)?;
        if !event_interval_s.is_finite() || event_interval_s <= 0.0 {
            return Err(WbsnError::InvalidParameter {
                what: "event_interval_s",
                detail: format!("{event_interval_s} must be positive"),
            });
        }
        Ok(ClassifyStage {
            fs_hz,
            event_interval_s,
            classifier,
            combiner: RmsCombiner::new(n_leads)?,
            delineator: StreamingDelineator::new(StreamingConfig {
                fs_hz,
                ..StreamingConfig::default()
            })?,
            features: BeatFeatureExtractor::new(FeatureConfig {
                fs_hz,
                ..FeatureConfig::default()
            })?,
            af: AfDetector::new(AfConfig {
                fs_hz,
                ..AfConfig::default()
            })?,
            af_beats: Vec::new(),
            ring: vec![0; fs_hz as usize * 3],
            ring_pos: 0,
            beat_scratch: Vec::new(),
            combined_scratch: Vec::new(),
            n_pushed: 0,
            last_beat_r: None,
            af_active: false,
            event_class_counts: [0; 4],
            event_beats: 0,
            event_rr_sum_s: 0.0,
            last_event_at: 0.0,
            beats: 0,
            classified_beats: 0,
            af_windows: 0,
        })
    }

    /// Classifies one beat and updates AF tracking; returns true when
    /// an AF episode just started (alert condition).
    fn handle_beat(&mut self, beat: BeatFiducials) -> bool {
        let ring_len = self.ring.len();
        let r = beat.r_peak;
        let class = if let Some(clf) = &self.classifier {
            let fc = self.features.config();
            let oldest = self.n_pushed.saturating_sub(ring_len);
            if r >= fc.pre_samples + oldest && r + fc.post_samples <= self.n_pushed {
                // Materialize the beat window from the ring into the
                // reusable scratch buffer.
                let lo = r - fc.pre_samples;
                let hi = r + fc.post_samples;
                self.beat_scratch.clear();
                self.beat_scratch
                    .extend((lo..hi).map(|i| self.ring[i % ring_len]));
                let rr_prev = self
                    .last_beat_r
                    .map(|p| r.saturating_sub(p))
                    .unwrap_or((0.8 * self.fs_hz as f64) as usize);
                // Streaming node has no rr_next yet; reuse rr_prev.
                self.classified_beats += 1;
                self.features
                    .extract(&self.beat_scratch, fc.pre_samples, rr_prev, rr_prev)
                    .map(|f| clf.predict(&f))
                    .unwrap_or(0)
            } else {
                0
            }
        } else {
            0
        };
        self.event_class_counts[class.min(3)] += 1;
        self.event_beats += 1;
        if let Some(prev) = self.last_beat_r {
            if r > prev {
                self.event_rr_sum_s += (r - prev) as f64 / self.fs_hz as f64;
            }
        }
        self.last_beat_r = Some(r);
        // AF tracking.
        self.af_beats.push(AfBeat {
            r_sample: r,
            has_p: beat.has_p(),
        });
        if self.af_beats.len() > 512 {
            self.af_beats.drain(..256);
        }
        let windows = self.af.analyze(&self.af_beats);
        self.af_windows = windows.len() as u64;
        let now_active = windows.last().map(|w| w.is_af).unwrap_or(false);
        let started = now_active && !self.af_active;
        self.af_active = now_active;
        started
    }

    fn emit_events(&mut self) -> Payload {
        let n = self.event_beats.max(1);
        let mean_rr = self.event_rr_sum_s / n as f64;
        let mean_hr_x10 = if mean_rr > 0.0 {
            (600.0 / mean_rr) as u16
        } else {
            0
        };
        let windows = self.af.analyze(&self.af_beats);
        let burden = AfDetector::af_burden(&windows);
        let p = Payload::Events {
            n_beats: self.event_beats,
            class_counts: self.event_class_counts,
            mean_hr_x10,
            af_burden_pct: (burden * 100.0) as u8,
            af_active: self.af_active,
        };
        self.event_class_counts = [0; 4];
        self.event_beats = 0;
        self.event_rr_sum_s = 0.0;
        self.last_event_at = self.n_pushed as f64 / self.fs_hz as f64;
        p
    }

    /// Advances the pipeline by one combined sample: ring bookkeeping,
    /// delineation, beat handling, periodic event emission. Shared by
    /// the per-frame and block paths.
    #[inline]
    fn step(&mut self, combined: i32, sink: &mut PayloadSink) {
        self.ring[self.ring_pos] = combined;
        self.ring_pos += 1;
        if self.ring_pos == self.ring.len() {
            self.ring_pos = 0;
        }
        if let Some(beat) = self.delineator.push(combined) {
            self.beats += 1;
            if self.handle_beat(beat) {
                let events = self.emit_events();
                sink.emit(events);
            }
        }
        let t = self.n_pushed as f64 / self.fs_hz as f64;
        if t - self.last_event_at >= self.event_interval_s && self.event_beats > 0 {
            let events = self.emit_events();
            sink.emit(events);
        }
        self.n_pushed += 1;
    }
}

impl PipelineStage for ClassifyStage {
    fn name(&self) -> &'static str {
        "classify"
    }

    fn push_frame(&mut self, frame: &[i32], sink: &mut PayloadSink) -> Result<()> {
        let combined = self.combiner.push(frame);
        self.step(combined, sink);
        Ok(())
    }

    fn process_block(
        &mut self,
        frames: &[i32],
        _n_leads: usize,
        sink: &mut PayloadSink,
    ) -> Result<()> {
        let mut combined = core::mem::take(&mut self.combined_scratch);
        self.combiner.combine_block_into(frames, &mut combined);
        for &c in &combined {
            self.step(c, sink);
        }
        self.combined_scratch = combined;
        Ok(())
    }

    fn flush(&mut self, sink: &mut PayloadSink) -> Result<()> {
        for beat in self.delineator.flush() {
            self.beats += 1;
            self.handle_beat(beat);
        }
        let events = self.emit_events();
        sink.emit(events);
        Ok(())
    }

    fn activity(&self) -> ActivityCounters {
        ActivityCounters {
            beats: self.beats,
            classified_beats: self.classified_beats,
            af_windows: self.af_windows,
            ..ActivityCounters::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_tracks_cumulative_bytes_across_drains() {
        let mut sink = PayloadSink::new();
        let p = Payload::Events {
            n_beats: 1,
            class_counts: [1, 0, 0, 0],
            mean_hr_x10: 700,
            af_burden_pct: 0,
            af_active: false,
        };
        let each = p.byte_len() as u64;
        sink.emit(p.clone());
        let first = sink.drain();
        assert_eq!(first.len(), 1);
        assert!(sink.pending().is_empty());
        sink.emit(p);
        assert_eq!(sink.total_payloads(), 2);
        assert_eq!(sink.total_bytes(), 2 * each);
    }

    #[test]
    fn raw_forwarder_chunks_and_flushes() {
        let mut stage = RawForwarder::new(2, 4).unwrap();
        let mut sink = PayloadSink::new();
        for i in 0..6 {
            stage.push_frame(&[i, -i], &mut sink).unwrap();
        }
        // 4 full frames -> one chunk per lead; 2 leftover frames flush.
        assert_eq!(sink.drain().len(), 2);
        stage.flush(&mut sink).unwrap();
        let tail = sink.drain();
        assert_eq!(tail.len(), 2);
        let Payload::RawChunk { samples, .. } = &tail[0] else {
            panic!("wrong payload");
        };
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn cs_stage_emits_one_window_per_lead() {
        let mut stage = CsStage::new(3, 64, 50.0, 4, 1).unwrap();
        let mut sink = PayloadSink::new();
        for i in 0..64 {
            stage.push_frame(&[i, i + 1, i + 2], &mut sink).unwrap();
        }
        let out = sink.drain();
        assert_eq!(out.len(), 3);
        let a = stage.activity();
        assert_eq!(a.cs_windows, 3);
        assert!(a.cs_adds > 0);
    }

    #[test]
    fn constructors_validate() {
        assert!(RawForwarder::new(0, 10).is_err());
        assert!(RawForwarder::new(1, 0).is_err());
        assert!(DelineationStage::new(3, 250, 0).is_err());
        assert!(ClassifyStage::new(3, 250, 0.0, None).is_err());
        assert!(CsStage::new(300, 512, 50.0, 4, 0).is_err()); // > 255 leads
                                                              // Direct stage construction enforces the CS invariants too —
                                                              // plugging stages in without the builder must stay safe.
        assert!(CsStage::new(3, 500, 50.0, 4, 0).is_err()); // non-dyadic
        assert!(CsStage::new(3, 512, 150.0, 4, 0).is_err()); // CR out of range
        assert!(CsStage::new(3, 512, -50.0, 4, 0).is_err());
    }
}
