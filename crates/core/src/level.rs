//! The on-node processing abstraction ladder (Figure 1 of the paper).

/// How much intelligence the node applies before transmitting.
///
/// Higher levels transmit less data at the cost of more on-node
/// computation — the central energy trade-off of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessingLevel {
    /// Stream every sample (the unsustainable baseline).
    RawStreaming,
    /// Compressively sense each lead independently ("Single-Lead CS").
    CompressedSingleLead,
    /// Compressively sense with joint multi-lead reconstruction in
    /// mind ("Multi-Lead CS": per-lead matrices, joint decoder).
    CompressedMultiLead,
    /// Filter + delineate on-node; transmit fiducial points per beat.
    Delineated,
    /// Delineate + classify on-node; transmit beat classes and
    /// rhythm events (AF episodes) only.
    Classified,
}

impl ProcessingLevel {
    /// All levels, in ascending abstraction order.
    pub const ALL: [ProcessingLevel; 5] = [
        ProcessingLevel::RawStreaming,
        ProcessingLevel::CompressedSingleLead,
        ProcessingLevel::CompressedMultiLead,
        ProcessingLevel::Delineated,
        ProcessingLevel::Classified,
    ];

    /// Human-readable label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            ProcessingLevel::RawStreaming => "raw streaming",
            ProcessingLevel::CompressedSingleLead => "single-lead CS",
            ProcessingLevel::CompressedMultiLead => "multi-lead CS",
            ProcessingLevel::Delineated => "delineated",
            ProcessingLevel::Classified => "classified",
        }
    }

    /// True when the level runs the delineation pipeline.
    pub fn delineates(self) -> bool {
        matches!(
            self,
            ProcessingLevel::Delineated | ProcessingLevel::Classified
        )
    }

    /// True when the level runs the CS encoder.
    pub fn compresses(self) -> bool {
        matches!(
            self,
            ProcessingLevel::CompressedSingleLead | ProcessingLevel::CompressedMultiLead
        )
    }
}

impl core::fmt::Display for ProcessingLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_properties() {
        assert_eq!(ProcessingLevel::ALL.len(), 5);
        assert!(ProcessingLevel::Delineated.delineates());
        assert!(ProcessingLevel::Classified.delineates());
        assert!(!ProcessingLevel::RawStreaming.delineates());
        assert!(ProcessingLevel::CompressedSingleLead.compresses());
        assert!(!ProcessingLevel::Classified.compresses());
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for l in ProcessingLevel::ALL {
            assert!(seen.insert(l.label()), "{l}");
        }
    }
}
