//! The on-node processing abstraction ladder (Figure 1 of the paper).

/// How much intelligence the node applies before transmitting.
///
/// Higher levels transmit less data at the cost of more on-node
/// computation — the central energy trade-off of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessingLevel {
    /// Stream every sample (the unsustainable baseline).
    RawStreaming,
    /// Compressively sense each lead independently ("Single-Lead CS").
    CompressedSingleLead,
    /// Compressively sense with joint multi-lead reconstruction in
    /// mind ("Multi-Lead CS": per-lead matrices, joint decoder).
    CompressedMultiLead,
    /// Filter + delineate on-node; transmit fiducial points per beat.
    Delineated,
    /// Delineate + classify on-node; transmit beat classes and
    /// rhythm events (AF episodes) only.
    Classified,
}

impl ProcessingLevel {
    /// All levels, in ascending abstraction order.
    pub const ALL: [ProcessingLevel; 5] = [
        ProcessingLevel::RawStreaming,
        ProcessingLevel::CompressedSingleLead,
        ProcessingLevel::CompressedMultiLead,
        ProcessingLevel::Delineated,
        ProcessingLevel::Classified,
    ];

    /// Human-readable label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            ProcessingLevel::RawStreaming => "raw streaming",
            ProcessingLevel::CompressedSingleLead => "single-lead CS",
            ProcessingLevel::CompressedMultiLead => "multi-lead CS",
            ProcessingLevel::Delineated => "delineated",
            ProcessingLevel::Classified => "classified",
        }
    }

    /// True when the level runs the delineation pipeline.
    pub fn delineates(self) -> bool {
        matches!(
            self,
            ProcessingLevel::Delineated | ProcessingLevel::Classified
        )
    }

    /// True when the level runs the CS encoder.
    pub fn compresses(self) -> bool {
        matches!(
            self,
            ProcessingLevel::CompressedSingleLead | ProcessingLevel::CompressedMultiLead
        )
    }
}

impl core::fmt::Display for ProcessingLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A runtime operating point of a monitoring session: the processing
/// level *and* the number of acquisition leads powered.
///
/// The [power governor](crate::governor) re-selects the operating mode
/// while a session is live: it escalates fidelity (down the abstraction
/// ladder, more leads) when the rhythm turns interesting, and sheds
/// radio bytes, MCU cycles and analog front-end bias (each unused lead
/// saves its AFE+ADC power) when the signal is quiet or the battery is
/// low. [`CardiacMonitor::switch_mode`](crate::CardiacMonitor::switch_mode)
/// applies a mode change at a deterministic stream boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperatingMode {
    /// Processing level on the abstraction ladder.
    pub level: ProcessingLevel,
    /// Acquisition leads powered (1 ..= the session's configured lead
    /// count). Frames keep their configured width; gated leads are
    /// acquired as unpowered and ignored by the pipeline.
    pub active_leads: usize,
}

impl OperatingMode {
    /// Mode at `level` with `active_leads` powered leads.
    pub fn new(level: ProcessingLevel, active_leads: usize) -> Self {
        OperatingMode {
            level,
            active_leads,
        }
    }
}

impl core::fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} @ {} lead(s)", self.level, self.active_leads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_properties() {
        assert_eq!(ProcessingLevel::ALL.len(), 5);
        assert!(ProcessingLevel::Delineated.delineates());
        assert!(ProcessingLevel::Classified.delineates());
        assert!(!ProcessingLevel::RawStreaming.delineates());
        assert!(ProcessingLevel::CompressedSingleLead.compresses());
        assert!(!ProcessingLevel::Classified.compresses());
    }

    #[test]
    fn labels_are_distinct() {
        // wbsn-allow(no-unordered-map): insert-only membership probe in a test; never iterated, so order cannot leak anywhere
        let mut seen = std::collections::HashSet::new();
        for l in ProcessingLevel::ALL {
            assert!(seen.insert(l.label()), "{l}");
        }
    }
}
