//! On-air payload formats with exact byte costs.
//!
//! The energy model charges the radio by the byte, so payload encoding
//! *is* part of the system model. Formats use explicit little-endian
//! byte codecs (what the node firmware would do) rather than a serde
//! dependency; every format round-trips through `encode`/`decode` in
//! tests.

use crate::{Result, WbsnError};
use wbsn_delineation::BeatFiducials;

/// A unit of data handed to the radio.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Raw sample chunk of one lead (12-bit samples packed 2-per-3-bytes).
    RawChunk {
        /// Lead index.
        lead: u8,
        /// Samples in ADC counts.
        samples: Vec<i16>,
    },
    /// One compressively-sensed window of one lead.
    CsWindow {
        /// Lead index.
        lead: u8,
        /// Window sequence number (decoder regenerates Φ from this +
        /// the shared seed).
        window_seq: u32,
        /// Measurements, 16-bit saturated.
        measurements: Vec<i16>,
    },
    /// A batch of delineated beats.
    Beats {
        /// Delineated fiducials, absolute sample indices.
        beats: Vec<BeatFiducials>,
    },
    /// Aggregated events (classification + rhythm).
    Events {
        /// Beats observed since the last event payload.
        n_beats: u32,
        /// Count per class index.
        class_counts: [u32; 4],
        /// Mean heart rate (bpm, ×10 fixed point).
        mean_hr_x10: u16,
        /// AF burden of the reporting interval (%, 0–100).
        af_burden_pct: u8,
        /// True when an AF episode is ongoing.
        af_active: bool,
    },
}

impl Payload {
    /// Serialized size in bytes — what the radio model is charged.
    /// Computed arithmetically (no allocation); always equals
    /// `self.encode().len()`.
    pub fn byte_len(&self) -> usize {
        match self {
            // Two 12-bit samples pack into 3 bytes; a trailing odd
            // sample still occupies a full 3-byte group.
            Payload::RawChunk { samples, .. } => 4 + 3 * samples.len().div_ceil(2),
            Payload::CsWindow { measurements, .. } => 8 + 2 * measurements.len(),
            Payload::Beats { beats } => 3 + 12 * beats.len(),
            Payload::Events { .. } => 25,
        }
    }

    /// Encodes to the on-air byte format (1 tag byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Payload::RawChunk { lead, samples } => {
                out.push(0x01);
                out.push(*lead);
                out.extend((samples.len() as u16).to_le_bytes());
                // Pack two 12-bit samples into 3 bytes.
                let mut it = samples.chunks(2);
                for pair in &mut it {
                    let a = (pair[0].clamp(-2048, 2047) + 2048) as u16;
                    let b = pair
                        .get(1)
                        .map(|&v| (v.clamp(-2048, 2047) + 2048) as u16)
                        .unwrap_or(0);
                    out.push((a & 0xFF) as u8);
                    out.push(((a >> 8) as u8 & 0x0F) | (((b & 0x0F) as u8) << 4));
                    out.push((b >> 4) as u8);
                }
            }
            Payload::CsWindow {
                lead,
                window_seq,
                measurements,
            } => {
                out.push(0x02);
                out.push(*lead);
                out.extend(window_seq.to_le_bytes());
                out.extend((measurements.len() as u16).to_le_bytes());
                for m in measurements {
                    out.extend(m.to_le_bytes());
                }
            }
            Payload::Beats { beats } => {
                out.push(0x03);
                out.extend((beats.len() as u16).to_le_bytes());
                for b in beats {
                    out.extend((b.r_peak as u32).to_le_bytes());
                    // Eight optional fiducials as signed 8-bit offsets
                    // from R in 4-sample units; -128 = absent.
                    for f in [
                        b.p_on, b.p_peak, b.p_off, b.qrs_on, b.qrs_off, b.t_on, b.t_peak, b.t_off,
                    ] {
                        let code = match f {
                            None => -128i8,
                            Some(s) => {
                                let off = (s as i64 - b.r_peak as i64) / 4;
                                off.clamp(-127, 127) as i8
                            }
                        };
                        out.push(code as u8);
                    }
                }
            }
            Payload::Events {
                n_beats,
                class_counts,
                mean_hr_x10,
                af_burden_pct,
                af_active,
            } => {
                out.push(0x04);
                out.extend(n_beats.to_le_bytes());
                for c in class_counts {
                    out.extend(c.to_le_bytes());
                }
                out.extend(mean_hr_x10.to_le_bytes());
                out.push(*af_burden_pct);
                out.push(u8::from(*af_active));
            }
        }
        out
    }

    /// Decodes an encoded payload (base-station side; lossy fields —
    /// the quantized fiducial offsets — come back quantized).
    ///
    /// # Errors
    ///
    /// [`WbsnError::Truncated`] when the input is shorter than its own
    /// header/length fields claim, [`WbsnError::Malformed`] when it is
    /// structurally invalid (unknown tag) — so a receiving gateway can
    /// report *why* a frame was rejected, not just that it was.
    pub fn decode(bytes: &[u8]) -> Result<Payload> {
        let Some((&tag, rest)) = bytes.split_first() else {
            return Err(WbsnError::Truncated {
                what: "payload tag",
                needed: 1,
                got: 0,
            });
        };
        // Requires `rest` to hold at least `needed` bytes.
        let need = |what: &'static str, needed: usize| -> Result<()> {
            if rest.len() < needed {
                return Err(WbsnError::Truncated {
                    what,
                    needed: needed + 1,
                    got: bytes.len(),
                });
            }
            Ok(())
        };
        match tag {
            0x01 => {
                need("raw-chunk header", 3)?;
                let lead = rest[0];
                let n = u16::from_le_bytes([rest[1], rest[2]]) as usize;
                let body = &rest[3..];
                let groups = n.div_ceil(2);
                if body.len() < 3 * groups {
                    return Err(WbsnError::Truncated {
                        what: "raw-chunk samples",
                        needed: 4 + 3 * groups,
                        got: bytes.len(),
                    });
                }
                let mut samples = Vec::with_capacity(n);
                for chunk in body.chunks_exact(3) {
                    if samples.len() >= n {
                        break;
                    }
                    let a = (chunk[0] as u16 | ((chunk[1] as u16 & 0x0F) << 8)) as i16 - 2048;
                    samples.push(a);
                    if samples.len() < n {
                        let b = (((chunk[1] as u16) >> 4) | ((chunk[2] as u16) << 4)) as i16 - 2048;
                        samples.push(b);
                    }
                }
                Ok(Payload::RawChunk { lead, samples })
            }
            0x02 => {
                need("cs-window header", 7)?;
                let lead = rest[0];
                let window_seq = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]);
                let n = u16::from_le_bytes([rest[5], rest[6]]) as usize;
                let body = &rest[7..];
                if body.len() < 2 * n {
                    return Err(WbsnError::Truncated {
                        what: "cs-window measurements",
                        needed: 8 + 2 * n,
                        got: bytes.len(),
                    });
                }
                let measurements = body[..2 * n]
                    .chunks(2)
                    .map(|c| i16::from_le_bytes([c[0], c[1]]))
                    .collect();
                Ok(Payload::CsWindow {
                    lead,
                    window_seq,
                    measurements,
                })
            }
            0x03 => {
                need("beats header", 2)?;
                let n = u16::from_le_bytes([rest[0], rest[1]]) as usize;
                let mut body = &rest[2..];
                if body.len() < 12 * n {
                    return Err(WbsnError::Truncated {
                        what: "beat fiducials",
                        needed: 3 + 12 * n,
                        got: bytes.len(),
                    });
                }
                let mut beats = Vec::with_capacity(n);
                for _ in 0..n {
                    let r = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
                    let mut b = BeatFiducials::new(r);
                    let fields: [&mut Option<usize>; 8] = [
                        &mut b.p_on,
                        &mut b.p_peak,
                        &mut b.p_off,
                        &mut b.qrs_on,
                        &mut b.qrs_off,
                        &mut b.t_on,
                        &mut b.t_peak,
                        &mut b.t_off,
                    ];
                    for (i, slot) in fields.into_iter().enumerate() {
                        let code = body[4 + i] as i8;
                        if code != -128 {
                            let s = r as i64 + code as i64 * 4;
                            if s >= 0 {
                                *slot = Some(s as usize);
                            }
                        }
                    }
                    beats.push(b);
                    body = &body[12..];
                }
                Ok(Payload::Beats { beats })
            }
            0x04 => {
                need("events body", 4 + 16 + 2 + 2)?;
                let n_beats = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
                let mut class_counts = [0u32; 4];
                for (i, c) in class_counts.iter_mut().enumerate() {
                    let o = 4 + 4 * i;
                    *c = u32::from_le_bytes([rest[o], rest[o + 1], rest[o + 2], rest[o + 3]]);
                }
                let mean_hr_x10 = u16::from_le_bytes([rest[20], rest[21]]);
                Ok(Payload::Events {
                    n_beats,
                    class_counts,
                    mean_hr_x10,
                    af_burden_pct: rest[22],
                    af_active: rest[23] != 0,
                })
            }
            _ => Err(WbsnError::Malformed {
                what: "payload tag",
                detail: format!("unknown tag 0x{tag:02x}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_chunk_round_trips() {
        let samples: Vec<i16> = (-20..21).map(|v| v * 50).collect();
        let p = Payload::RawChunk {
            lead: 2,
            samples: samples.clone(),
        };
        let decoded = Payload::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        // 41 samples * 1.5 bytes + 4 header ≈ 67.
        assert!(p.byte_len() <= 4 + 63 + 1, "{}", p.byte_len());
    }

    #[test]
    fn raw_chunk_is_twelve_bits_per_sample() {
        let p = Payload::RawChunk {
            lead: 0,
            samples: vec![100; 100],
        };
        // 100 samples -> 150 bytes body + 4 header.
        assert_eq!(p.byte_len(), 154);
    }

    #[test]
    fn cs_window_round_trips() {
        let p = Payload::CsWindow {
            lead: 1,
            window_seq: 77,
            measurements: (0..64).map(|i| (i * 37 - 900) as i16).collect(),
        };
        assert_eq!(Payload::decode(&p.encode()).unwrap(), p);
        assert_eq!(p.byte_len(), 1 + 1 + 4 + 2 + 128);
    }

    #[test]
    fn beats_round_trip_with_quantization() {
        let mut b = BeatFiducials::new(10_000);
        b.p_peak = Some(10_000 - 44); // -11 units exact
        b.t_peak = Some(10_000 + 80); // +20 units exact
        b.qrs_on = Some(10_000 - 13); // -3.25 -> quantized
        let p = Payload::Beats { beats: vec![b] };
        let decoded = Payload::decode(&p.encode()).unwrap();
        let Payload::Beats { beats } = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(beats[0].r_peak, 10_000);
        assert_eq!(beats[0].p_peak, Some(10_000 - 44));
        assert_eq!(beats[0].t_peak, Some(10_000 + 80));
        // Quantized to 4-sample grid.
        let q = beats[0].qrs_on.unwrap();
        assert!(q.abs_diff(10_000 - 13) <= 3);
        // Absent fiducials stay absent.
        assert!(beats[0].p_on.is_none());
        // 12 bytes per beat + 3 header.
        assert_eq!(p.byte_len(), 15);
    }

    #[test]
    fn events_round_trip() {
        let p = Payload::Events {
            n_beats: 71,
            class_counts: [60, 8, 3, 0],
            mean_hr_x10: 724,
            af_burden_pct: 15,
            af_active: false,
        };
        assert_eq!(Payload::decode(&p.encode()).unwrap(), p);
        assert_eq!(p.byte_len(), 25);
    }

    #[test]
    fn malformed_input_is_rejected_with_typed_errors() {
        // Empty input and short headers are truncations, not panics.
        assert!(matches!(
            Payload::decode(&[]),
            Err(WbsnError::Truncated {
                what: "payload tag",
                ..
            })
        ));
        assert!(matches!(
            Payload::decode(&[0x02, 0]),
            Err(WbsnError::Truncated { .. })
        ));
        // An unknown tag can never become valid: malformed, not truncated.
        assert!(matches!(
            Payload::decode(&[0x99, 1, 2]),
            Err(WbsnError::Malformed {
                what: "payload tag",
                ..
            })
        ));
        // Truncated beats payload reports what ran short.
        let p = Payload::Beats {
            beats: vec![BeatFiducials::new(5)],
        };
        let mut bytes = p.encode();
        bytes.truncate(bytes.len() - 2);
        let err = Payload::decode(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                WbsnError::Truncated {
                    what: "beat fiducials",
                    needed: 15,
                    got: 13,
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn byte_len_matches_encoded_length() {
        let payloads = [
            Payload::RawChunk {
                lead: 0,
                samples: vec![7; 41], // odd count exercises the tail group
            },
            Payload::RawChunk {
                lead: 1,
                samples: Vec::new(),
            },
            Payload::CsWindow {
                lead: 2,
                window_seq: 3,
                measurements: vec![-5; 19],
            },
            Payload::Beats {
                beats: vec![BeatFiducials::new(10), BeatFiducials::new(300)],
            },
            Payload::Beats { beats: Vec::new() },
            Payload::Events {
                n_beats: 9,
                class_counts: [9, 0, 0, 0],
                mean_hr_x10: 650,
                af_burden_pct: 2,
                af_active: true,
            },
        ];
        for p in payloads {
            assert_eq!(p.byte_len(), p.encode().len(), "{p:?}");
        }
    }

    #[test]
    fn events_payload_is_tiny_compared_to_raw() {
        // One second of raw 3-lead data vs one 10 s event summary.
        let raw_bytes_per_s = 3.0 * 250.0 * 1.5;
        let events = Payload::Events {
            n_beats: 12,
            class_counts: [12, 0, 0, 0],
            mean_hr_x10: 720,
            af_burden_pct: 0,
            af_active: false,
        };
        let events_bytes_per_s = events.byte_len() as f64 / 10.0;
        assert!(raw_bytes_per_s / events_bytes_per_s > 100.0);
    }
}
