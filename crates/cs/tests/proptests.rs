//! Property-based tests on the compressed-sensing stack.

use proptest::prelude::*;
use wbsn_cs::encoder::CsEncoder;
use wbsn_cs::solver::soft_threshold;
use wbsn_cs::{compression_ratio, measurements_for_cr};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn soft_threshold_shrinks_towards_zero(v in -1e6f64..1e6, t in 0.0f64..1e5) {
        let s = soft_threshold(v, t);
        // Never overshoots zero and never grows the magnitude.
        prop_assert!(s.abs() <= v.abs());
        prop_assert!(s == 0.0 || s.signum() == v.signum());
        // Shrinks by exactly t outside the dead zone.
        if v.abs() > t {
            prop_assert!((s.abs() - (v.abs() - t)).abs() < 1e-9);
        } else {
            prop_assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn cr_measurement_inverse(n in 32usize..2048, cr in 0.0f64..100.0) {
        let m = measurements_for_cr(n, cr);
        prop_assert!(m >= 1 && m <= n);
        let back = compression_ratio(n, m);
        // Round trip within one measurement of quantization.
        prop_assert!((back - cr).abs() <= 100.0 / n as f64 + 1e-9);
    }

    #[test]
    fn encode_into_and_batch_match_per_window(
        seed in 0u64..500,
        windows in 1usize..6,
        x in prop::collection::vec(-2048i32..2048, 64 * 6),
    ) {
        let enc = CsEncoder::new(64, 32, 3, seed).unwrap();
        let x = &x[..64 * windows];
        // Per-window allocating reference.
        let mut want = Vec::new();
        for w in x.chunks_exact(64) {
            want.extend(enc.encode(w).unwrap());
        }
        // `_into` form, window by window, reusing one dirty buffer.
        let mut y = vec![i64::MIN; 5];
        let mut got = Vec::new();
        for w in x.chunks_exact(64) {
            enc.encode_into(w, &mut y).unwrap();
            got.extend_from_slice(&y);
        }
        prop_assert_eq!(&want, &got);
        // Batched form over all windows at once.
        let mut batch = vec![i64::MAX; 2];
        let n_windows = enc.encode_batch_into(x, &mut batch).unwrap();
        prop_assert_eq!(n_windows, windows);
        prop_assert_eq!(&want[..], &batch[..]);
    }

    #[test]
    fn encoder_is_linear(seed in 0u64..500) {
        let enc = CsEncoder::new(64, 32, 3, seed).unwrap();
        let x1: Vec<i32> = (0..64).map(|i| ((i * 31 + seed as usize) % 101) as i32 - 50).collect();
        let x2: Vec<i32> = (0..64).map(|i| ((i * 17 + seed as usize) % 89) as i32 - 44).collect();
        let sum: Vec<i32> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let y1 = enc.encode(&x1).unwrap();
        let y2 = enc.encode(&x2).unwrap();
        let ys = enc.encode(&sum).unwrap();
        for i in 0..32 {
            prop_assert_eq!(ys[i], y1[i] + y2[i]);
        }
    }

    #[test]
    fn encoder_zero_maps_to_zero(seed in 0u64..100, n_exp in 5u32..9) {
        let n = 1usize << n_exp;
        let enc = CsEncoder::new(n, n / 2, 4, seed).unwrap();
        let y = enc.encode(&vec![0; n]).unwrap();
        prop_assert!(y.iter().all(|&v| v == 0));
    }
}
