//! Joint multi-lead CS reconstruction with group sparsity.
//!
//! Mamaghanian et al. (ICASSP 2014, reference \[6\]) observe that the
//! wavelet supports of simultaneous ECG leads coincide — "non-zero
//! coefficients are partitioned in subsets or groups, and this
//! information can be employed to enhance the compression performance
//! across all leads". This solver ties the leads together with an
//! ℓ₂,₁ penalty: coefficient index `i` forms one group across all
//! leads, and the proximal step shrinks whole groups, so a wave that is
//! strong in one lead rescues its (noisier) siblings.

use crate::{CsError, Result};
use wbsn_sigproc::wavelet::{wavedec, waverec, Wavelet};
use wbsn_sigproc::SparseTernaryMatrix;

/// Group-FISTA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupFistaConfig {
    /// Sparsifying wavelet.
    pub wavelet: Wavelet,
    /// Decomposition levels.
    pub levels: usize,
    /// λ as a fraction of the largest group norm of `Aᵀy`.
    pub lambda_rel: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative-change stopping tolerance.
    pub tol: f64,
}

impl Default for GroupFistaConfig {
    fn default() -> Self {
        GroupFistaConfig {
            wavelet: Wavelet::Db4,
            levels: 5,
            lambda_rel: 0.005,
            max_iters: 200,
            tol: 1e-5,
        }
    }
}

/// Joint multi-lead solver. Every lead may use a *different* sensing
/// matrix (the node rotates seeds), which additionally diversifies the
/// measurements.
#[derive(Debug, Clone)]
pub struct GroupFista {
    cfg: GroupFistaConfig,
}

impl GroupFista {
    /// Creates a solver with the given configuration.
    pub fn new(cfg: GroupFistaConfig) -> Self {
        GroupFista { cfg }
    }

    /// Configuration in use.
    pub fn config(&self) -> &GroupFistaConfig {
        &self.cfg
    }

    /// Jointly reconstructs `L` leads. `phis[l]` sensed `ys[l]`.
    ///
    /// Returns one reconstructed window per lead.
    ///
    /// # Errors
    ///
    /// Fails when lead counts or shapes disagree, or the window length
    /// is incompatible with the configured levels.
    pub fn reconstruct(
        &self,
        phis: &[&SparseTernaryMatrix],
        ys: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>> {
        if phis.is_empty() || phis.len() != ys.len() {
            return Err(CsError::ShapeMismatch {
                what: "lead count",
                expected: phis.len(),
                got: ys.len(),
            });
        }
        let n = phis[0].cols();
        for (l, phi) in phis.iter().enumerate() {
            if phi.cols() != n {
                return Err(CsError::ShapeMismatch {
                    what: "window length across leads",
                    expected: n,
                    got: phi.cols(),
                });
            }
            if ys[l].len() != phi.rows() {
                return Err(CsError::ShapeMismatch {
                    what: "measurement vector",
                    expected: phi.rows(),
                    got: ys[l].len(),
                });
            }
        }
        if n % (1 << self.cfg.levels) != 0 {
            return Err(CsError::InvalidParameter {
                what: "levels",
                detail: format!("window {n} not divisible by 2^{}", self.cfg.levels),
            });
        }
        let n_leads = phis.len();
        let w = self.cfg.wavelet;
        let lv = self.cfg.levels;

        let apply = |a: &[Vec<f64>]| -> Result<Vec<Vec<f64>>> {
            let mut out = Vec::with_capacity(n_leads);
            for l in 0..n_leads {
                out.push(phis[l].apply(&waverec(&a[l], w, lv)?));
            }
            Ok(out)
        };
        let apply_t = |r: &[Vec<f64>]| -> Result<Vec<Vec<f64>>> {
            let mut out = Vec::with_capacity(n_leads);
            for l in 0..n_leads {
                out.push(wavedec(&phis[l].apply_t(&r[l]), w, lv)?);
            }
            Ok(out)
        };

        // Power iteration over the stacked operator for the Lipschitz
        // constant (max over leads would also do; stacked is tighter).
        let lip = {
            let mut v: Vec<Vec<f64>> = vec![vec![1.0; n]; n_leads];
            let mut lam = 1.0f64;
            for _ in 0..12 {
                let av = apply(&v)?;
                let atav = apply_t(&av)?;
                lam = atav
                    .iter()
                    .flat_map(|l| l.iter().map(|x| x * x))
                    .sum::<f64>()
                    .sqrt();
                if lam <= 0.0 {
                    break;
                }
                for l in 0..n_leads {
                    for (vi, &ai) in v[l].iter_mut().zip(&atav[l]) {
                        *vi = ai / lam;
                    }
                }
            }
            lam.max(1e-12)
        };
        let step = 1.0 / lip;

        let aty = apply_t(ys)?;
        let max_group = (0..n).map(|i| group_norm(&aty, i)).fold(0.0f64, f64::max);
        let lambda = self.cfg.lambda_rel * max_group;

        let mut a: Vec<Vec<f64>> = vec![vec![0.0; n]; n_leads];
        let mut z = a.clone();
        let mut t = 1.0f64;
        for _ in 0..self.cfg.max_iters {
            let az = apply(&z)?;
            let resid: Vec<Vec<f64>> = az
                .iter()
                .zip(ys)
                .map(|(p, q)| p.iter().zip(q).map(|(x, y)| x - y).collect())
                .collect();
            let grad = apply_t(&resid)?;
            // Gradient step.
            let mut a_next: Vec<Vec<f64>> = (0..n_leads)
                .map(|l| {
                    z[l].iter()
                        .zip(&grad[l])
                        .map(|(&zi, &gi)| zi - step * gi)
                        .collect()
                })
                .collect();
            // Group soft-threshold across leads.
            for i in 0..n {
                let g = group_norm(&a_next, i);
                let scale = if g > 0.0 {
                    (1.0 - step * lambda / g).max(0.0)
                } else {
                    0.0
                };
                for lead in a_next.iter_mut() {
                    lead[i] *= scale;
                }
            }
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            let mut change = 0.0f64;
            let mut norm = 0.0f64;
            for l in 0..n_leads {
                for i in 0..n {
                    let d = a_next[l][i] - a[l][i];
                    change += d * d;
                    norm += a_next[l][i] * a_next[l][i];
                    z[l][i] = a_next[l][i] + beta * d;
                }
            }
            a = a_next;
            t = t_next;
            if norm > 0.0 && (change / norm).sqrt() < self.cfg.tol {
                break;
            }
        }
        let mut out = Vec::with_capacity(n_leads);
        for al in a.iter().take(n_leads) {
            out.push(waverec(al, w, lv)?);
        }
        Ok(out)
    }
}

fn group_norm(a: &[Vec<f64>], i: usize) -> f64 {
    a.iter().map(|lead| lead[i] * lead[i]).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Fista, FistaConfig};
    use wbsn_sigproc::stats::snr_db;
    use wbsn_sigproc::SparseTernaryMatrix;

    /// Three correlated leads sharing wave timing, different gains,
    /// with independent measurement-level noise.
    fn leads(n: usize) -> Vec<Vec<f64>> {
        let shape = |i: usize| -> f64 {
            let qrs = 900.0 * (-((i as f64 - n as f64 * 0.4) / 6.0).powi(2) / 2.0).exp();
            let t = 250.0 * (-((i as f64 - n as f64 * 0.62) / 20.0).powi(2) / 2.0).exp();
            qrs + t
        };
        vec![
            (0..n).map(shape).collect(),
            (0..n).map(|i| 0.6 * shape(i)).collect(),
            (0..n).map(|i| -0.8 * shape(i)).collect(),
        ]
    }

    #[test]
    fn joint_beats_independent_at_high_cr() {
        let n = 256;
        let m = 56; // CR ≈ 78%
        let xs = leads(n);
        let phis: Vec<SparseTernaryMatrix> = (0..3)
            .map(|l| SparseTernaryMatrix::random(m, n, 4, 100 + l as u64).unwrap())
            .collect();
        let ys: Vec<Vec<f64>> = (0..3).map(|l| phis[l].apply(&xs[l])).collect();

        // Independent recovery.
        let single = Fista::new(FistaConfig::default());
        let mut snr_indep = 0.0;
        for l in 0..3 {
            let xr = single.reconstruct_f64(&phis[l], &ys[l]).unwrap();
            snr_indep += snr_db(&xs[l], &xr);
        }
        snr_indep /= 3.0;

        // Joint recovery.
        let joint = GroupFista::new(GroupFistaConfig::default());
        let phi_refs: Vec<&SparseTernaryMatrix> = phis.iter().collect();
        let xr = joint.reconstruct(&phi_refs, &ys).unwrap();
        let snr_joint: f64 = (0..3).map(|l| snr_db(&xs[l], &xr[l])).sum::<f64>() / 3.0;

        assert!(
            snr_joint > snr_indep,
            "joint {snr_joint:.1} dB must beat independent {snr_indep:.1} dB"
        );
    }

    #[test]
    fn joint_reconstruction_is_accurate_at_moderate_cr() {
        let n = 256;
        let m = 128;
        let xs = leads(n);
        let phis: Vec<SparseTernaryMatrix> = (0..3)
            .map(|l| SparseTernaryMatrix::random(m, n, 4, 200 + l as u64).unwrap())
            .collect();
        let ys: Vec<Vec<f64>> = (0..3).map(|l| phis[l].apply(&xs[l])).collect();
        let joint = GroupFista::new(GroupFistaConfig::default());
        let phi_refs: Vec<&SparseTernaryMatrix> = phis.iter().collect();
        let xr = joint.reconstruct(&phi_refs, &ys).unwrap();
        for l in 0..3 {
            let snr = snr_db(&xs[l], &xr[l]);
            assert!(snr > 18.0, "lead {l}: {snr} dB");
        }
    }

    #[test]
    fn shape_validation() {
        let phi = SparseTernaryMatrix::random(32, 128, 4, 1).unwrap();
        let joint = GroupFista::new(GroupFistaConfig::default());
        // Wrong measurement length.
        assert!(joint.reconstruct(&[&phi], &[vec![0.0; 31]]).is_err());
        // Lead count mismatch.
        assert!(joint
            .reconstruct(&[&phi], &[vec![0.0; 32], vec![0.0; 32]])
            .is_err());
        // Empty.
        let none: Vec<&SparseTernaryMatrix> = Vec::new();
        assert!(joint.reconstruct(&none, &[]).is_err());
    }
}
