//! # wbsn-cs
//!
//! Compressed sensing for ECG on wireless body sensor nodes.
//!
//! Implements the compression path the paper builds on (Section III-A,
//! references \[4\], \[6\], \[16\]):
//!
//! * [`encoder`] — the **node side**: `y = Φx` with a column-sparse
//!   ternary Φ, computed entirely in integer additions. This is the
//!   ultra-low-power part whose cost appears in the Figure 6 energy
//!   breakdown.
//! * [`solver`] — the **base-station side**: single-lead recovery by
//!   FISTA over a Daubechies wavelet synthesis dictionary, with an
//!   optional wavelet-tree model constraint (reference \[17\]).
//! * [`joint`] — joint multi-lead recovery with an ℓ₂,₁ group-sparsity
//!   penalty tying the shared wavelet support across leads
//!   (reference \[6\]) — the "Multi-Lead CS" series of Figure 5.
//! * [`omp`] — orthogonal matching pursuit baseline for ablations.
//! * [`sweep`] — the SNR-vs-CR experiment machinery that regenerates
//!   Figure 5.
//!
//! ## Example
//!
//! ```
//! use wbsn_cs::encoder::CsEncoder;
//! use wbsn_cs::solver::{Fista, FistaConfig};
//!
//! // 50% compression of a 256-sample window.
//! let enc = CsEncoder::new(256, 128, 4, 99).unwrap();
//! let x: Vec<i32> = (0..256)
//!     .map(|i| (300.0 * (-((i as f64 - 128.0) / 9.0).powi(2) / 2.0).exp()) as i32)
//!     .collect();
//! let y = enc.encode(&x).unwrap();
//! let solver = Fista::new(FistaConfig::default());
//! let xr = solver.reconstruct(&enc, &y).unwrap();
//! let snr = wbsn_sigproc::stats::snr_db(
//!     &x.iter().map(|&v| v as f64).collect::<Vec<_>>(),
//!     &xr,
//! );
//! assert!(snr > 15.0, "snr {snr}");
//! ```

// Every public item carries documentation; rustdoc runs with
// `-D warnings` in CI, so a gap fails the build.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoder;
pub mod joint;
pub mod omp;
pub mod solver;
pub mod sweep;

pub use encoder::CsEncoder;
pub use joint::{GroupFista, GroupFistaConfig};
pub use solver::{Fista, FistaConfig, FistaSolve, FistaState};

/// Errors produced by the CS pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CsError {
    /// Constructor argument out of range.
    InvalidParameter {
        /// Name of the parameter.
        what: &'static str,
        /// Explanation.
        detail: String,
    },
    /// Input shape does not match the encoder/solver configuration.
    ShapeMismatch {
        /// What was being checked.
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Observed size.
        got: usize,
    },
    /// An underlying signal-processing primitive rejected its input.
    Sigproc(wbsn_sigproc::SigprocError),
}

impl core::fmt::Display for CsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsError::InvalidParameter { what, detail } => {
                write!(f, "invalid parameter {what}: {detail}")
            }
            CsError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "shape mismatch for {what}: expected {expected}, got {got}"
            ),
            CsError::Sigproc(e) => write!(f, "sigproc error: {e}"),
        }
    }
}

impl std::error::Error for CsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsError::Sigproc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wbsn_sigproc::SigprocError> for CsError {
    fn from(e: wbsn_sigproc::SigprocError) -> Self {
        CsError::Sigproc(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, CsError>;

/// Compression ratio as a percentage: `CR = 100·(n − m)/n`.
pub fn compression_ratio(n: usize, m: usize) -> f64 {
    100.0 * (n.saturating_sub(m)) as f64 / n as f64
}

/// Measurement count for a target compression ratio.
pub fn measurements_for_cr(n: usize, cr_percent: f64) -> usize {
    let m = ((1.0 - cr_percent / 100.0) * n as f64).round() as usize;
    m.clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_round_trip() {
        let n = 512;
        for cr in [0.0, 25.0, 50.0, 65.9, 72.7, 90.0] {
            let m = measurements_for_cr(n, cr);
            let back = compression_ratio(n, m);
            assert!((back - cr).abs() < 0.2, "cr {cr} -> m {m} -> {back}");
        }
    }

    #[test]
    fn cr_extremes_clamped() {
        assert_eq!(measurements_for_cr(512, 100.0), 1);
        assert_eq!(measurements_for_cr(512, 0.0), 512);
        assert_eq!(compression_ratio(512, 512), 0.0);
    }
}
