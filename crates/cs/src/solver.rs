//! Single-lead CS reconstruction: FISTA over a wavelet dictionary.
//!
//! Solves `min_a ½‖y − ΦΨa‖² + λ‖a‖₁` where Ψ is an orthonormal
//! Daubechies synthesis operator, then returns `x̂ = Ψâ`. The fast
//! iterative shrinkage-thresholding algorithm (Beck & Teboulle 2009)
//! is the standard decoder in the ECG-CS literature the paper builds
//! on; an optional wavelet-tree constraint implements the connected
//! tree model of Duarte et al. (reference \[17\]).

use crate::encoder::CsEncoder;
use crate::{CsError, Result};
use wbsn_sigproc::wavelet::{wavedec, waverec, Wavelet};
use wbsn_sigproc::SparseTernaryMatrix;

/// FISTA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FistaConfig {
    /// Sparsifying wavelet.
    pub wavelet: Wavelet,
    /// Decomposition levels (window length must divide by `2^levels`).
    pub levels: usize,
    /// λ as a fraction of `‖Aᵀy‖∞` (adaptive regularization).
    pub lambda_rel: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative-change stopping tolerance.
    pub tol: f64,
    /// Adaptive (gradient) restart, O'Donoghue & Candès 2015: reset
    /// the momentum whenever it points against the descent direction
    /// (`⟨z − a⁺, a⁺ − a⟩ > 0`). Suppresses FISTA's objective ripples,
    /// giving near-monotone, locally linear convergence — which is
    /// what lets the movement tolerance [`FistaConfig::tol`] fire
    /// after a handful of iterations when a solve is warm-started
    /// close to its optimum. `false` preserves the historical
    /// plain-FISTA iterate sequence bit for bit.
    pub restart: bool,
    /// Enforce the parent-child wavelet tree model after shrinkage.
    pub tree_model: bool,
}

impl Default for FistaConfig {
    fn default() -> Self {
        FistaConfig {
            wavelet: Wavelet::Db4,
            levels: 5,
            lambda_rel: 0.005,
            max_iters: 200,
            tol: 1e-5,
            restart: false,
            tree_model: false,
        }
    }
}

/// Reusable per-stream solver state for warm-started solves.
///
/// A gateway decodes one window after another through the *same*
/// sensing matrix, and consecutive ECG windows share most of their
/// wavelet support. The state carries the two quantities that makes
/// the next solve cheap:
///
/// * the **Lipschitz constant** of `A = ΦΨ` — a property of the fixed
///   matrix, so the 12-round power iteration (24 operator
///   applications, ≈12 FISTA iterations' worth of work) runs once per
///   stream instead of once per window;
/// * the **previous window's coefficient solution**, which seeds the
///   next solve far closer to its optimum than the cold all-zeros
///   start, so the early-exit tolerance fires after a fraction of the
///   cold iteration count (pinned ≥2× by `tests/warm_start.rs`).
///
/// The state is only valid for a fixed `(Φ, FistaConfig)` pair —
/// [`FistaState::reset`] it when the sensing matrix changes (the
/// gateway does so on any handshake change). A state whose cached
/// shapes disagree with the solve at hand is ignored and rebuilt, so
/// a stale state can degrade speed, never correctness.
#[derive(Debug, Clone, Default)]
pub struct FistaState {
    /// Cached Lipschitz constant of `AᵀA` (`None` until first solve).
    lip: Option<f64>,
    /// Previous solution in the coefficient domain.
    warm: Vec<f64>,
}

impl FistaState {
    /// Fresh (cold) state.
    pub fn new() -> Self {
        FistaState::default()
    }

    /// Forgets everything — required when the sensing matrix changes.
    pub fn reset(&mut self) {
        self.lip = None;
        self.warm.clear();
    }

    /// True when the next solve will start cold.
    pub fn is_cold(&self) -> bool {
        self.warm.is_empty()
    }
}

/// One reconstruction plus its diagnostics.
#[derive(Debug, Clone)]
pub struct FistaSolve {
    /// Reconstructed window samples (`x̂ = Ψâ`).
    pub x: Vec<f64>,
    /// FISTA iterations actually run (early exit counts fewer than
    /// [`FistaConfig::max_iters`]).
    pub iters: usize,
}

/// Single-lead FISTA solver.
#[derive(Debug, Clone)]
pub struct Fista {
    cfg: FistaConfig,
}

impl Fista {
    /// Creates a solver with the given configuration.
    pub fn new(cfg: FistaConfig) -> Self {
        Fista { cfg }
    }

    /// Configuration in use.
    pub fn config(&self) -> &FistaConfig {
        &self.cfg
    }

    /// Reconstructs a window from its measurements.
    ///
    /// # Errors
    ///
    /// Fails when shapes are inconsistent with the encoder or the
    /// window length is incompatible with the configured levels.
    pub fn reconstruct(&self, encoder: &CsEncoder, y: &[i64]) -> Result<Vec<f64>> {
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        self.reconstruct_f64(encoder.sensing_matrix(), &yf)
    }

    /// Warm-started solve: seeds from `state` (previous window's
    /// solution + cached Lipschitz constant) and updates it for the
    /// next window. The first call on a fresh state is an ordinary
    /// cold solve that additionally fills the state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fista::reconstruct`].
    pub fn reconstruct_warm(
        &self,
        encoder: &CsEncoder,
        y: &[i64],
        state: &mut FistaState,
    ) -> Result<FistaSolve> {
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        self.solve(encoder.sensing_matrix(), &yf, Some(state))
    }

    /// Float-measurement variant (used by the sweep machinery).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fista::reconstruct`].
    pub fn reconstruct_f64(&self, phi: &SparseTernaryMatrix, y: &[f64]) -> Result<Vec<f64>> {
        Ok(self.solve(phi, y, None)?.x)
    }

    /// The solver core: cold when `state` is `None` (or fresh),
    /// warm-started otherwise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fista::reconstruct`].
    pub fn solve(
        &self,
        phi: &SparseTernaryMatrix,
        y: &[f64],
        state: Option<&mut FistaState>,
    ) -> Result<FistaSolve> {
        let n = phi.cols();
        let m = phi.rows();
        if y.len() != m {
            return Err(CsError::ShapeMismatch {
                what: "measurement vector",
                expected: m,
                got: y.len(),
            });
        }
        if n % (1 << self.cfg.levels) != 0 {
            return Err(CsError::InvalidParameter {
                what: "levels",
                detail: format!("window {n} not divisible by 2^{}", self.cfg.levels),
            });
        }
        let w = self.cfg.wavelet;
        let lv = self.cfg.levels;
        // A a  = Φ Ψ a ; Aᵀ r = Ψᵀ Φᵀ r (Ψ orthonormal).
        let apply = |a: &[f64]| -> Result<Vec<f64>> { Ok(phi.apply(&waverec(a, w, lv)?)) };
        let apply_t = |r: &[f64]| -> Result<Vec<f64>> { Ok(wavedec(&phi.apply_t(r), w, lv)?) };

        // Lipschitz constant of ∇f via power iteration on AᵀA — a
        // property of the fixed operator, so a warm state pays it once
        // per stream.
        let cached_lip = state.as_ref().and_then(|s| s.lip);
        let lip = match cached_lip {
            Some(l) => l,
            None => {
                let mut v = vec![1.0; n];
                let mut lam = 1.0f64;
                for _ in 0..12 {
                    let av = apply(&v)?;
                    let atav = apply_t(&av)?;
                    lam = atav.iter().map(|x| x * x).sum::<f64>().sqrt();
                    if lam <= 0.0 {
                        break;
                    }
                    for (vi, &ai) in v.iter_mut().zip(&atav) {
                        *vi = ai / lam;
                    }
                }
                lam.max(1e-12)
            }
        };
        let step = 1.0 / lip;

        let aty = apply_t(y)?;
        let linf = aty.iter().fold(0.0f64, |mx, &v| mx.max(v.abs()));
        let lambda = self.cfg.lambda_rel * linf;

        // Warm start: the previous window's solution, when its shape
        // matches this solve (a mismatched state is stale — ignore it).
        let mut a = match state.as_ref() {
            Some(s) if s.warm.len() == n => s.warm.clone(),
            _ => vec![0.0; n],
        };
        let mut z = a.clone();
        let mut t = 1.0f64;
        let mut prev_norm = 0.0f64;
        let mut iters = 0usize;
        for _ in 0..self.cfg.max_iters {
            iters += 1;
            let az = apply(&z)?;
            let resid: Vec<f64> = az.iter().zip(y).map(|(p, q)| p - q).collect();
            let grad = apply_t(&resid)?;
            let mut a_next: Vec<f64> = z
                .iter()
                .zip(&grad)
                .map(|(&zi, &gi)| soft_threshold(zi - step * gi, step * lambda))
                .collect();
            if self.cfg.tree_model {
                enforce_tree(&mut a_next, n, lv);
            }
            // Gradient restart: when the momentum direction `a⁺ − a`
            // opposes the step the prox-gradient actually took from z,
            // the extrapolation is overshooting — drop it.
            if self.cfg.restart {
                let overshoot: f64 = z
                    .iter()
                    .zip(&a_next)
                    .zip(&a)
                    .map(|((&zi, &an), &ao)| (zi - an) * (an - ao))
                    .sum();
                if overshoot > 0.0 {
                    t = 1.0;
                }
            }
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            z = a_next
                .iter()
                .zip(&a)
                .map(|(&an, &ao)| an + beta * (an - ao))
                .collect();
            let change: f64 = a_next
                .iter()
                .zip(&a)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            let norm: f64 = a_next.iter().map(|x| x * x).sum::<f64>().sqrt();
            a = a_next;
            t = t_next;
            if norm > 0.0 && change / norm.max(prev_norm) < self.cfg.tol {
                break;
            }
            prev_norm = norm;
        }
        let x = waverec(&a, w, lv)?;
        if let Some(s) = state {
            s.lip = Some(lip);
            s.warm = a;
        }
        Ok(FistaSolve { x, iters })
    }
}

/// Soft-thresholding (proximal operator of `λ‖·‖₁`).
pub fn soft_threshold(v: f64, thresh: f64) -> f64 {
    if v > thresh {
        v - thresh
    } else if v < -thresh {
        v + thresh
    } else {
        0.0
    }
}

/// Enforces the wavelet parent-child model: a detail coefficient may
/// survive only if its parent at the next-coarser scale survived.
/// Coefficients are packed `[a_L | d_L | d_{L-1} | … | d_1]`.
fn enforce_tree(a: &mut [f64], n: usize, levels: usize) {
    // Walk from the coarsest detail band to the finest.
    let coarsest = n >> levels;
    let mut parent_start = coarsest; // d_L
    for lev in (1..levels).rev() {
        let child_start = n - (n >> lev); // start of d_lev
        let child_len = n >> lev;
        let parent_len = child_len / 2;
        for c in 0..child_len {
            let p = parent_start + c / 2;
            debug_assert!(p < parent_start + parent_len);
            if a[p] == 0.0 {
                a[child_start + c] = 0.0;
            }
        }
        parent_start = child_start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::CsEncoder;
    use wbsn_sigproc::stats::snr_db;

    /// An ECG-like window: two smooth bumps (QRS + T).
    fn ecg_like(n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| {
                let qrs = 900.0 * (-((i as f64 - n as f64 * 0.4) / 6.0).powi(2) / 2.0).exp();
                let t = 250.0 * (-((i as f64 - n as f64 * 0.62) / 20.0).powi(2) / 2.0).exp();
                (qrs + t) as i32
            })
            .collect()
    }

    #[test]
    fn soft_threshold_laws() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.0, 2.0), 0.0);
        assert_eq!(soft_threshold(0.0, 0.0), 0.0);
    }

    #[test]
    fn reconstructs_sparse_signal_at_moderate_cr() {
        let n = 256;
        let x = ecg_like(n);
        let enc = CsEncoder::new(n, 128, 4, 11).unwrap();
        let y = enc.encode(&x).unwrap();
        let solver = Fista::new(FistaConfig::default());
        let xr = solver.reconstruct(&enc, &y).unwrap();
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let snr = snr_db(&xf, &xr);
        assert!(snr > 18.0, "CR=50% snr {snr}");
    }

    #[test]
    fn quality_degrades_with_cr() {
        let n = 256;
        let x = ecg_like(n);
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let solver = Fista::new(FistaConfig::default());
        let snr_at = |m: usize| {
            let enc = CsEncoder::new(n, m, 4, 13).unwrap();
            let y = enc.encode(&x).unwrap();
            snr_db(&xf, &solver.reconstruct(&enc, &y).unwrap())
        };
        let hi = snr_at(160);
        let lo = snr_at(40);
        assert!(hi > lo + 5.0, "m=160 {hi} dB vs m=40 {lo} dB");
    }

    #[test]
    fn tree_model_runs_and_reconstructs() {
        let n = 256;
        let x = ecg_like(n);
        let enc = CsEncoder::new(n, 110, 4, 17).unwrap();
        let y = enc.encode(&x).unwrap();
        // The tree model pairs with a stronger threshold (it prunes
        // orphan coefficients; a small λ leaves too many parents alive
        // for the constraint to help).
        let solver = Fista::new(FistaConfig {
            tree_model: true,
            lambda_rel: 0.02,
            ..FistaConfig::default()
        });
        let xr = solver.reconstruct(&enc, &y).unwrap();
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        assert!(snr_db(&xf, &xr) > 10.0);
    }

    #[test]
    fn rejects_incompatible_levels() {
        let enc = CsEncoder::new(80, 40, 4, 1).unwrap(); // 80 not divisible by 32
        let y = enc.encode(&vec![0; 80]).unwrap();
        let solver = Fista::new(FistaConfig::default());
        assert!(solver.reconstruct(&enc, &y).is_err());
    }

    #[test]
    fn rejects_wrong_measurement_length() {
        let enc = CsEncoder::new(128, 64, 4, 1).unwrap();
        let solver = Fista::new(FistaConfig::default());
        assert!(solver.reconstruct(&enc, &[0i64; 63]).is_err());
    }

    #[test]
    fn zero_measurements_give_zero_signal() {
        let enc = CsEncoder::new(128, 64, 4, 3).unwrap();
        let solver = Fista::new(FistaConfig::default());
        let xr = solver.reconstruct(&enc, &vec![0i64; 64]).unwrap();
        assert!(xr.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn warm_first_solve_matches_cold_bit_for_bit() {
        // A fresh state changes nothing about the first solve: same
        // power iteration, same zero start, same iterates.
        let n = 256;
        let x = ecg_like(n);
        let enc = CsEncoder::new(n, 128, 4, 11).unwrap();
        let y = enc.encode(&x).unwrap();
        let solver = Fista::new(FistaConfig::default());
        let cold = solver.reconstruct(&enc, &y).unwrap();
        let mut state = FistaState::new();
        assert!(state.is_cold());
        let warm = solver.reconstruct_warm(&enc, &y, &mut state).unwrap();
        assert!(!state.is_cold());
        let cold_bits: Vec<u64> = cold.iter().map(|v| v.to_bits()).collect();
        let warm_bits: Vec<u64> = warm.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(cold_bits, warm_bits);
    }

    #[test]
    fn warm_second_solve_converges_faster_on_a_repeated_window() {
        let n = 256;
        let x = ecg_like(n);
        let enc = CsEncoder::new(n, 128, 4, 11).unwrap();
        let y = enc.encode(&x).unwrap();
        let solver = Fista::new(FistaConfig::default());
        let mut state = FistaState::new();
        let first = solver.reconstruct_warm(&enc, &y, &mut state).unwrap();
        let second = solver.reconstruct_warm(&enc, &y, &mut state).unwrap();
        assert!(
            second.iters * 2 <= first.iters,
            "warm restart on an identical window should converge ≥2× \
             faster: cold {} iters, warm {}",
            first.iters,
            second.iters
        );
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        assert!(snr_db(&xf, &second.x) + 0.5 >= snr_db(&xf, &first.x));
    }

    #[test]
    fn stale_state_shape_is_ignored_not_trusted() {
        // A state warmed on a 256-window must not poison a 128-window
        // solve; the solver falls back to a cold start.
        let solver = Fista::new(FistaConfig::default());
        let big = CsEncoder::new(256, 128, 4, 5).unwrap();
        let mut state = FistaState::new();
        let x = ecg_like(256);
        let y = big.encode(&x).unwrap();
        solver.reconstruct_warm(&big, &y, &mut state).unwrap();
        // Lipschitz constants differ between the operators, so the
        // stale cached value must be dropped along with the warm
        // vector for the result to stay correct — reset does both.
        state.reset();
        assert!(state.is_cold());
        let small = CsEncoder::new(128, 64, 4, 5).unwrap();
        let xs = ecg_like(128);
        let ys = small.encode(&xs).unwrap();
        let warm = solver.reconstruct_warm(&small, &ys, &mut state).unwrap();
        let cold = solver.reconstruct(&small, &ys).unwrap();
        let warm_bits: Vec<u64> = warm.x.iter().map(|v| v.to_bits()).collect();
        let cold_bits: Vec<u64> = cold.iter().map(|v| v.to_bits()).collect();
        assert_eq!(warm_bits, cold_bits);
    }
}
