//! SNR-vs-CR sweep machinery — regenerates Figure 5 of the paper.
//!
//! For each compression ratio, every record is cut into non-overlapping
//! windows, each window is CS-encoded on the (simulated) node and
//! reconstructed, and the output SNR is averaged "over all records"
//! exactly as the figure's y-axis label says.

use crate::encoder::CsEncoder;
use crate::joint::{GroupFista, GroupFistaConfig};
use crate::measurements_for_cr;
use crate::solver::{Fista, FistaConfig};
use crate::Result;
use wbsn_ecg_synth::Record;
use wbsn_sigproc::stats::snr_db;
use wbsn_sigproc::SparseTernaryMatrix;

/// Sweep configuration shared by the single- and multi-lead runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Window length (samples); must divide by `2^levels`.
    pub window: usize,
    /// Sensing-matrix column density.
    pub d_per_col: usize,
    /// Base seed for sensing matrices.
    pub seed: u64,
    /// Single-lead solver settings.
    pub fista: FistaConfig,
    /// Multi-lead solver settings.
    pub group: GroupFistaConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            window: 512,
            d_per_col: 4,
            seed: 0xC5,
            fista: FistaConfig::default(),
            group: GroupFistaConfig::default(),
        }
    }
}

/// One sweep sample: compression ratio and resulting average SNR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Compression ratio in percent.
    pub cr_percent: f64,
    /// Averaged output SNR in dB over all windows/records/leads.
    pub snr_db: f64,
}

/// Averaged single-lead SNR at each CR (the "Single-Lead CS" series).
///
/// # Errors
///
/// Propagates encoder/solver failures (mis-sized windows etc.).
pub fn snr_vs_cr_single(
    records: &[Record],
    crs: &[f64],
    cfg: &SweepConfig,
) -> Result<Vec<SweepPoint>> {
    let solver = Fista::new(cfg.fista);
    let mut out = Vec::with_capacity(crs.len());
    for &cr in crs {
        let m = measurements_for_cr(cfg.window, cr);
        let enc = CsEncoder::new(cfg.window, m, cfg.d_per_col, cfg.seed)?;
        let mut snr_sum = 0.0;
        let mut count = 0usize;
        for rec in records {
            for lead_idx in 0..rec.n_leads() {
                for win in windows(rec.lead(lead_idx), cfg.window) {
                    let y = enc.encode(win)?;
                    let xr = solver.reconstruct(&enc, &y)?;
                    let xf: Vec<f64> = win.iter().map(|&v| v as f64).collect();
                    if xf.iter().all(|&v| v == 0.0) {
                        continue;
                    }
                    snr_sum += snr_db(&xf, &xr);
                    count += 1;
                }
            }
        }
        out.push(SweepPoint {
            cr_percent: enc.cr_percent(),
            snr_db: snr_sum / count.max(1) as f64,
        });
    }
    Ok(out)
}

/// Averaged joint multi-lead SNR at each CR (the "Multi-Lead CS"
/// series). Each lead gets its own sensing matrix (rotated seed).
///
/// # Errors
///
/// Propagates encoder/solver failures.
pub fn snr_vs_cr_joint(
    records: &[Record],
    crs: &[f64],
    cfg: &SweepConfig,
) -> Result<Vec<SweepPoint>> {
    let solver = GroupFista::new(cfg.group);
    let mut out = Vec::with_capacity(crs.len());
    for &cr in crs {
        let m = measurements_for_cr(cfg.window, cr);
        let mut snr_sum = 0.0;
        let mut count = 0usize;
        for rec in records {
            let n_leads = rec.n_leads();
            let phis: Vec<SparseTernaryMatrix> = (0..n_leads)
                .map(|l| {
                    SparseTernaryMatrix::random(
                        m,
                        cfg.window,
                        cfg.d_per_col,
                        cfg.seed.wrapping_add(l as u64),
                    )
                })
                .collect::<core::result::Result<_, _>>()?;
            let phi_refs: Vec<&SparseTernaryMatrix> = phis.iter().collect();
            let n_wins = rec.n_samples() / cfg.window;
            for wi in 0..n_wins {
                let lo = wi * cfg.window;
                let hi = lo + cfg.window;
                let xs: Vec<Vec<f64>> = (0..n_leads)
                    .map(|l| rec.lead(l)[lo..hi].iter().map(|&v| v as f64).collect())
                    .collect();
                let ys: Vec<Vec<f64>> = (0..n_leads).map(|l| phis[l].apply(&xs[l])).collect();
                let xr = solver.reconstruct(&phi_refs, &ys)?;
                for l in 0..n_leads {
                    if xs[l].iter().all(|&v| v == 0.0) {
                        continue;
                    }
                    snr_sum += snr_db(&xs[l], &xr[l]);
                    count += 1;
                }
            }
        }
        out.push(SweepPoint {
            cr_percent: crate::compression_ratio(cfg.window, m),
            snr_db: snr_sum / count.max(1) as f64,
        });
    }
    Ok(out)
}

/// Highest CR (by linear interpolation between sweep points) at which
/// the SNR still reaches `target_db` — the "CR at 20 dB" numbers the
/// paper quotes (65.9% single-lead, 72.7% multi-lead).
pub fn cr_at_snr(points: &[SweepPoint], target_db: f64) -> Option<f64> {
    // Points ordered by ascending CR; SNR decreases with CR.
    let mut best: Option<f64> = None;
    for w in points.windows(2) {
        let (a, b) = (w[0], w[1]);
        let (hi, lo) = (a.snr_db.max(b.snr_db), a.snr_db.min(b.snr_db));
        if target_db <= hi && target_db >= lo && a.snr_db != b.snr_db {
            let frac = (a.snr_db - target_db) / (a.snr_db - b.snr_db);
            let cr = a.cr_percent + frac * (b.cr_percent - a.cr_percent);
            best = Some(best.map_or(cr, |prev: f64| prev.max(cr)));
        } else if b.snr_db >= target_db {
            best = Some(best.map_or(b.cr_percent, |prev: f64| prev.max(b.cr_percent)));
        }
    }
    if best.is_none() && points.iter().all(|p| p.snr_db >= target_db) {
        best = points.last().map(|p| p.cr_percent);
    }
    best
}

fn windows(x: &[i32], w: usize) -> impl Iterator<Item = &[i32]> {
    x.chunks_exact(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_ecg_synth::suite::cs_eval_suite;

    fn tiny_cfg() -> SweepConfig {
        let mut cfg = SweepConfig {
            window: 256,
            ..SweepConfig::default()
        };
        cfg.fista.max_iters = 80;
        cfg.group.max_iters = 80;
        cfg
    }

    #[test]
    fn snr_decreases_with_cr_single() {
        let recs = cs_eval_suite(1, 7);
        let pts = snr_vs_cr_single(&recs[..1], &[40.0, 85.0], &tiny_cfg()).unwrap();
        assert!(
            pts[0].snr_db > pts[1].snr_db + 3.0,
            "CR 40 {} dB vs CR 85 {} dB",
            pts[0].snr_db,
            pts[1].snr_db
        );
    }

    #[test]
    fn joint_at_least_matches_single_at_high_cr() {
        let recs = cs_eval_suite(1, 8);
        let cfg = tiny_cfg();
        let s = snr_vs_cr_single(&recs[..1], &[75.0], &cfg).unwrap();
        let j = snr_vs_cr_joint(&recs[..1], &[75.0], &cfg).unwrap();
        assert!(
            j[0].snr_db > s[0].snr_db - 0.5,
            "joint {} dB vs single {} dB",
            j[0].snr_db,
            s[0].snr_db
        );
    }

    #[test]
    fn cr_at_snr_interpolates() {
        let pts = vec![
            SweepPoint {
                cr_percent: 50.0,
                snr_db: 30.0,
            },
            SweepPoint {
                cr_percent: 70.0,
                snr_db: 20.0,
            },
            SweepPoint {
                cr_percent: 90.0,
                snr_db: 10.0,
            },
        ];
        let cr = cr_at_snr(&pts, 25.0).unwrap();
        assert!((cr - 60.0).abs() < 1e-9, "{cr}");
        let cr20 = cr_at_snr(&pts, 20.0).unwrap();
        assert!((cr20 - 70.0).abs() < 1e-9, "{cr20}");
        assert!(cr_at_snr(&pts, 40.0).is_none());
    }
}
