//! Node-side CS encoder: integer-only `y = Φx`.

use crate::{compression_ratio, CsError, Result};
use wbsn_sigproc::SparseTernaryMatrix;

/// Compressed-sensing encoder for one signal window.
///
/// The sensing matrix is column-sparse ternary with `d_per_col`
/// non-zeros: encoding a window costs exactly `n·d` signed integer
/// additions, no multiplications — the property that makes CS "a very
/// low cost and easy to implement compression technique" on the node
/// (Section III-A). Both ends regenerate Φ from the shared `seed`.
#[derive(Debug, Clone)]
pub struct CsEncoder {
    phi: SparseTernaryMatrix,
    seed: u64,
}

impl CsEncoder {
    /// Creates an encoder mapping `n`-sample windows to `m`
    /// measurements using `d_per_col` non-zeros per column.
    ///
    /// # Errors
    ///
    /// Fails when `m > n`, any dimension is zero, or `d_per_col` is
    /// invalid for the shape.
    pub fn new(n: usize, m: usize, d_per_col: usize, seed: u64) -> Result<Self> {
        if m > n {
            return Err(CsError::InvalidParameter {
                what: "m",
                detail: format!("measurements ({m}) must not exceed window length ({n})"),
            });
        }
        let phi = SparseTernaryMatrix::random(m, n, d_per_col, seed)?;
        Ok(CsEncoder { phi, seed })
    }

    /// Creates the encoder for one lead of a multi-lead session: lead
    /// `l` senses with the matrix seeded `base_seed + l` (wrapping).
    ///
    /// This is *the* seed-derivation rule of the whole system — the
    /// node's `CsStage` builds its per-lead encoders through it, and
    /// the gateway regenerates Φ from the session handshake through
    /// it, so both ends provably agree on the same matrix
    /// (`tests/phi_handshake_identity.rs` pins the bit-identity).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CsEncoder::new`].
    pub fn for_lead(
        n: usize,
        m: usize,
        d_per_col: usize,
        base_seed: u64,
        lead: u8,
    ) -> Result<Self> {
        CsEncoder::new(n, m, d_per_col, base_seed.wrapping_add(u64::from(lead)))
    }

    /// Window length `n`.
    pub fn window_len(&self) -> usize {
        self.phi.cols()
    }

    /// Measurement count `m`.
    pub fn measurements(&self) -> usize {
        self.phi.rows()
    }

    /// Seed shared with the decoder.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sensing matrix (decoder side needs it for reconstruction).
    pub fn sensing_matrix(&self) -> &SparseTernaryMatrix {
        &self.phi
    }

    /// Compression ratio in percent.
    pub fn cr_percent(&self) -> f64 {
        compression_ratio(self.window_len(), self.measurements())
    }

    /// Encodes one window of ADC counts into a caller-owned measurement
    /// buffer (cleared and resized to `m` first) — the zero-allocation
    /// form of [`CsEncoder::encode`].
    ///
    /// # Errors
    ///
    /// Fails when `window.len() != n`.
    pub fn encode_into(&self, window: &[i32], y: &mut Vec<i64>) -> Result<()> {
        if window.len() != self.window_len() {
            return Err(CsError::ShapeMismatch {
                what: "encode window",
                expected: self.window_len(),
                got: window.len(),
            });
        }
        self.phi.apply_i32_into(window, y);
        Ok(())
    }

    /// Encodes a batch of back-to-back windows (`windows.len()` must be
    /// a multiple of `n`) into one measurement buffer: window `k`'s
    /// measurements land at `y[k * m..(k + 1) * m]`. Returns the number
    /// of windows encoded. One buffer, one shape check, no per-window
    /// allocation.
    ///
    /// # Errors
    ///
    /// Fails when `windows.len()` is not a multiple of `n`.
    pub fn encode_batch_into(&self, windows: &[i32], y: &mut Vec<i64>) -> Result<usize> {
        let n = self.window_len();
        if windows.len() % n != 0 {
            return Err(CsError::ShapeMismatch {
                what: "encode batch",
                expected: windows.len().next_multiple_of(n),
                got: windows.len(),
            });
        }
        let n_windows = windows.len() / n;
        let m = self.measurements();
        y.clear();
        y.resize(n_windows * m, 0);
        for (window, out) in windows.chunks_exact(n).zip(y.chunks_exact_mut(m)) {
            self.phi.apply_i32_to_slice(window, out);
        }
        Ok(n_windows)
    }

    /// Encodes one window of ADC counts.
    ///
    /// Allocates the output; hot paths should prefer
    /// [`CsEncoder::encode_into`] or [`CsEncoder::encode_batch_into`].
    ///
    /// # Errors
    ///
    /// Fails when `window.len() != n`.
    pub fn encode(&self, window: &[i32]) -> Result<Vec<i64>> {
        let mut y = Vec::new();
        self.encode_into(window, &mut y)?;
        Ok(y)
    }

    /// Integer additions per encoded window (`n·d`) — the MCU cost the
    /// energy model charges for compression.
    pub fn adds_per_window(&self) -> usize {
        self.phi.encode_add_count()
    }

    /// Bits needed to transmit one encoded window. Measurements are
    /// sums of `d` column entries of up to `sample_bits` each, so each
    /// needs `sample_bits + ceil(log2(d)) + 1` bits.
    pub fn payload_bits(&self, sample_bits: u32) -> usize {
        let growth = usize::BITS - (self.phi.d_per_col()).leading_zeros();
        self.measurements() * (sample_bits + growth + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_matches_matrix_apply() {
        let enc = CsEncoder::new(64, 32, 3, 5).unwrap();
        let x: Vec<i32> = (0..64).map(|i: i32| i * i % 97 - 48).collect();
        let y = enc.encode(&x).unwrap();
        assert_eq!(y, enc.sensing_matrix().apply_i32(&x));
        assert_eq!(y.len(), 32);
    }

    #[test]
    fn cr_reports_reduction() {
        let enc = CsEncoder::new(512, 175, 4, 1).unwrap();
        assert!((enc.cr_percent() - 65.8).abs() < 0.3);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(CsEncoder::new(64, 65, 3, 1).is_err());
        assert!(CsEncoder::new(0, 0, 3, 1).is_err());
        let enc = CsEncoder::new(64, 32, 3, 1).unwrap();
        assert!(enc.encode(&[0; 63]).is_err());
    }

    #[test]
    fn cost_and_payload_accounting() {
        let enc = CsEncoder::new(512, 128, 4, 9).unwrap();
        assert_eq!(enc.adds_per_window(), 512 * 4);
        // 12-bit samples, d=4 -> 12 + 3 + 1 = 16 bits per measurement.
        assert_eq!(enc.payload_bits(12), 128 * 16);
    }

    #[test]
    fn same_seed_same_encoding() {
        let a = CsEncoder::new(128, 64, 4, 77).unwrap();
        let b = CsEncoder::new(128, 64, 4, 77).unwrap();
        let x: Vec<i32> = (0..128).collect();
        assert_eq!(a.encode(&x).unwrap(), b.encode(&x).unwrap());
    }

    #[test]
    fn for_lead_derives_the_seed_by_wrapping_add() {
        let direct = CsEncoder::new(128, 64, 4, 100 + 3).unwrap();
        let derived = CsEncoder::for_lead(128, 64, 4, 100, 3).unwrap();
        assert_eq!(derived.seed(), 103);
        assert_eq!(direct.sensing_matrix(), derived.sensing_matrix());
        // The derivation wraps instead of overflowing.
        let wrapped = CsEncoder::for_lead(128, 64, 4, u64::MAX, 2).unwrap();
        assert_eq!(wrapped.seed(), 1);
    }
}
