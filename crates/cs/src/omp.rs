//! Orthogonal matching pursuit — the greedy baseline.
//!
//! OMP is the classical greedy decoder used as a comparison point in
//! the ECG-CS literature. It is slower per atom than FISTA at ECG
//! sizes but recovers exactly-sparse signals exactly, which makes it
//! a good correctness oracle for the solver stack.

use crate::{CsError, Result};
use wbsn_sigproc::wavelet::{wavedec, waverec, Wavelet};
use wbsn_sigproc::SparseTernaryMatrix;

/// OMP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmpConfig {
    /// Sparsifying wavelet.
    pub wavelet: Wavelet,
    /// Decomposition levels.
    pub levels: usize,
    /// Maximum number of atoms to select.
    pub max_atoms: usize,
    /// Residual norm (relative to ‖y‖) at which to stop.
    pub residual_tol: f64,
}

impl Default for OmpConfig {
    fn default() -> Self {
        OmpConfig {
            wavelet: Wavelet::Db4,
            levels: 5,
            max_atoms: 64,
            residual_tol: 1e-4,
        }
    }
}

/// Greedy solver for `y = ΦΨa` with explicit per-atom least squares.
#[derive(Debug, Clone)]
pub struct Omp {
    cfg: OmpConfig,
}

impl Omp {
    /// Creates a solver.
    pub fn new(cfg: OmpConfig) -> Self {
        Omp { cfg }
    }

    /// Reconstructs the signal window from measurements `y`.
    ///
    /// # Errors
    ///
    /// Fails on shape mismatches or incompatible levels.
    pub fn reconstruct(&self, phi: &SparseTernaryMatrix, y: &[f64]) -> Result<Vec<f64>> {
        let n = phi.cols();
        let m = phi.rows();
        if y.len() != m {
            return Err(CsError::ShapeMismatch {
                what: "measurement vector",
                expected: m,
                got: y.len(),
            });
        }
        if n % (1 << self.cfg.levels) != 0 {
            return Err(CsError::InvalidParameter {
                what: "levels",
                detail: format!("window {n} not divisible by 2^{}", self.cfg.levels),
            });
        }
        let w = self.cfg.wavelet;
        let lv = self.cfg.levels;
        // Column j of A = Φ Ψ e_j, materialized lazily and cached.
        let mut atom_cache: Vec<Option<Vec<f64>>> = vec![None; n];
        let atom = |j: usize, cache: &mut Vec<Option<Vec<f64>>>| -> Result<Vec<f64>> {
            if cache[j].is_none() {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                let col = phi.apply(&waverec(&e, w, lv)?);
                cache[j] = Some(col);
            }
            Ok(cache[j].clone().expect("just inserted"))
        };

        let y_norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if y_norm == 0.0 {
            return Ok(vec![0.0; n]);
        }
        let mut residual = y.to_vec();
        let mut support: Vec<usize> = Vec::new();
        let mut selected: Vec<Vec<f64>> = Vec::new(); // columns on support
        let mut coeffs: Vec<f64> = Vec::new();
        let k_max = self.cfg.max_atoms.min(m);
        for _ in 0..k_max {
            // Correlations via the fast adjoint.
            let corr = wavedec(&phi.apply_t(&residual), w, lv)?;
            let (best, best_val) = corr
                .iter()
                .enumerate()
                .filter(|(j, _)| !support.contains(j))
                .map(|(j, &c)| (j, c.abs()))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
                .unwrap_or((0, 0.0));
            if best_val < 1e-12 {
                break;
            }
            support.push(best);
            selected.push(atom(best, &mut atom_cache)?);
            // Least squares on the support via normal equations +
            // Cholesky (support stays small).
            let k = support.len();
            let mut gram = vec![0.0; k * k];
            let mut rhs = vec![0.0; k];
            for a_i in 0..k {
                for b_i in 0..k {
                    gram[a_i * k + b_i] = dot(&selected[a_i], &selected[b_i]);
                }
                rhs[a_i] = dot(&selected[a_i], y);
            }
            coeffs = cholesky_solve(&gram, &rhs, k).ok_or_else(|| CsError::InvalidParameter {
                what: "gram matrix",
                detail: "singular system in OMP least squares".to_string(),
            })?;
            // Update residual.
            residual = y.to_vec();
            for (ci, col) in coeffs.iter().zip(&selected) {
                for (r, &cv) in residual.iter_mut().zip(col) {
                    *r -= ci * cv;
                }
            }
            let rn = residual.iter().map(|v| v * v).sum::<f64>().sqrt();
            if rn / y_norm < self.cfg.residual_tol {
                break;
            }
        }
        let mut a = vec![0.0; n];
        for (j, &c) in support.iter().zip(&coeffs) {
            a[*j] = c;
        }
        Ok(waverec(&a, w, lv)?)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `G x = b` for symmetric positive-definite `G` (row-major
/// k×k). Returns `None` when the factorization breaks down.
fn cholesky_solve(g: &[f64], b: &[f64], k: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut s = g[i * k + j];
            for p in 0..j {
                s -= l[i * k + p] * l[j * k + p];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[i * k + i] = s.sqrt();
            } else {
                l[i * k + j] = s / l[j * k + j];
            }
        }
    }
    // Forward substitution L z = b.
    let mut z = vec![0.0; k];
    for i in 0..k {
        let mut s = b[i];
        for p in 0..i {
            s -= l[i * k + p] * z[p];
        }
        z[i] = s / l[i * k + i];
    }
    // Back substitution Lᵀ x = z.
    let mut x = vec![0.0; k];
    for i in (0..k).rev() {
        let mut s = z[i];
        for p in i + 1..k {
            s -= l[p * k + i] * x[p];
        }
        x[i] = s / l[i * k + i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_sigproc::stats::snr_db;
    use wbsn_sigproc::wavelet::waverec;

    #[test]
    fn recovers_exactly_sparse_signal() {
        let n = 128;
        let m = 64;
        // Build a signal that is exactly 5-sparse in the dictionary.
        let mut a = vec![0.0; n];
        a[3] = 10.0;
        a[17] = -6.0;
        a[40] = 4.0;
        a[70] = 8.0;
        a[100] = -3.0;
        let x = waverec(&a, Wavelet::Db4, 5).unwrap();
        let phi = SparseTernaryMatrix::random(m, n, 4, 42).unwrap();
        let y = phi.apply(&x);
        let omp = Omp::new(OmpConfig {
            max_atoms: 10,
            ..OmpConfig::default()
        });
        let xr = omp.reconstruct(&phi, &y).unwrap();
        let snr = snr_db(&x, &xr);
        assert!(snr > 60.0, "exact-sparse recovery snr {snr}");
    }

    #[test]
    fn zero_measurements_zero_signal() {
        let phi = SparseTernaryMatrix::random(32, 128, 4, 1).unwrap();
        let omp = Omp::new(OmpConfig::default());
        let xr = omp.reconstruct(&phi, &vec![0.0; 32]).unwrap();
        assert!(xr.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn validates_shapes() {
        let phi = SparseTernaryMatrix::random(32, 128, 4, 1).unwrap();
        let omp = Omp::new(OmpConfig::default());
        assert!(omp.reconstruct(&phi, &vec![0.0; 31]).is_err());
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // G = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
        let g = [4.0, 2.0, 2.0, 3.0];
        let b = [10.0, 8.0];
        let x = cholesky_solve(&g, &b, 2).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
        // Singular matrix returns None.
        let g_sing = [1.0, 1.0, 1.0, 1.0];
        assert!(cholesky_solve(&g_sing, &b, 2).is_none());
    }
}
